//! Seed-randomized churn oracle: random mutation streams applied both
//! **batched** (`StreamCore::apply_batch`) and **per-edge**
//! (`DynamicCore::insert_edge`/`remove_edge`), checked for bit-identity
//! against a fresh Batagelj–Zaveršnik ground-truth pass after *every*
//! batch, across graph families × batch sizes × seeds.
//!
//! The CI determinism matrix re-runs this suite with `DKCORE_TEST_SEED`
//! shifting every stream, so the oracle covers fresh mutation sequences
//! on every run rather than one pinned trace.

use dkcore::dynamic::DynamicCore;
use dkcore::seq::batagelj_zaversnik;
use dkcore::stream::{EdgeBatch, StreamCore};
use dkcore_graph::generators::{barabasi_albert, complete, gnp, path, star, worst_case};
use dkcore_graph::{Graph, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Offset mixed into every stream seed, from `DKCORE_TEST_SEED` (the CI
/// determinism matrix); 0 when unset.
fn seed_offset() -> u64 {
    std::env::var("DKCORE_TEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(0, |s| s.wrapping_mul(0x9E37_79B9))
}

/// The graph families under churn. Sizes are kept modest because the
/// oracle runs a full ground-truth pass after every batch.
fn families(seed: u64) -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp_sparse", gnp(150, 0.02, seed)),
        ("gnp_dense", gnp(90, 0.1, seed ^ 1)),
        ("ba", barabasi_albert(120, 3, seed ^ 2)),
        ("star", star(60)),
        ("path", path(80)),
        ("complete", complete(12)),
        ("worst_case", worst_case(40)),
    ]
}

/// Draws the next valid batch against the current edge state: a random
/// mix of insertions of absent edges and removals of present ones.
fn next_batch(sc: &StreamCore, batch_size: usize, rng: &mut StdRng) -> EdgeBatch {
    let n = sc.node_count() as u32;
    let mut batch = EdgeBatch::new();
    let mut used: Vec<(u32, u32)> = Vec::new();
    let mut tries = 0;
    while batch.len() < batch_size && tries < batch_size * 30 {
        tries += 1;
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if used.contains(&key) {
            continue;
        }
        used.push(key);
        let (u, v) = (NodeId(key.0), NodeId(key.1));
        if sc.has_edge(u, v) {
            batch.remove(u, v);
        } else {
            batch.insert(u, v);
        }
    }
    batch
}

/// The oracle proper: one family, one batch size, one seed.
fn run_oracle(name: &str, g: &Graph, batch_size: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batched = StreamCore::new(g);
    let mut per_edge = DynamicCore::new(g);
    for step in 0..8 {
        let batch = next_batch(&batched, batch_size, &mut rng);
        batched.apply_batch(&batch).unwrap();
        for &(u, v) in batch.removals() {
            per_edge.remove_edge(u, v).unwrap();
        }
        for &(u, v) in batch.insertions() {
            per_edge.insert_edge(u, v).unwrap();
        }
        let truth = batagelj_zaversnik(&batched.to_graph());
        assert_eq!(
            batched.values(),
            truth.as_slice(),
            "{name}: batched repair diverged (batch {batch_size}, seed {seed}, step {step})"
        );
        assert_eq!(
            per_edge.values(),
            truth.as_slice(),
            "{name}: per-edge repair diverged (batch {batch_size}, seed {seed}, step {step})"
        );
        assert_eq!(
            batched.to_graph(),
            per_edge.to_graph(),
            "{name}: adjacency drifted (batch {batch_size}, seed {seed}, step {step})"
        );
    }
}

#[test]
fn batched_and_per_edge_match_bz_across_families_and_batch_sizes() {
    let offset = seed_offset();
    for seed in 0..2u64 {
        for (name, g) in families(seed.wrapping_add(offset)) {
            for batch_size in [1usize, 7, 32] {
                run_oracle(
                    name,
                    &g,
                    batch_size,
                    (seed * 31 + batch_size as u64).wrapping_add(offset),
                );
            }
        }
    }
}

#[test]
fn regionalized_warm_start_bounds_stay_safe_across_families() {
    // The removal slack of `warm_start_estimates_batch` is counted per
    // candidate region (not globally), which tightens the bounds on
    // removal-heavy mixed streams — this oracle pins the tightened bound
    // to its safety contract: after every batch, on every family, every
    // estimate still upper-bounds the true new coreness (and respects
    // the degree cap).
    use dkcore::stream::warm_start_estimates_batch;

    let offset = seed_offset();
    for seed in 0..2u64 {
        for (name, g) in families(seed.wrapping_add(offset)) {
            for batch_size in [7usize, 32] {
                let mut rng =
                    StdRng::seed_from_u64((seed * 131 + batch_size as u64).wrapping_add(offset));
                let mut sc = StreamCore::new(&g);
                for step in 0..6 {
                    let old = sc.values().to_vec();
                    let batch = next_batch(&sc, batch_size, &mut rng);
                    sc.apply_batch(&batch).unwrap();
                    let new_graph = sc.to_graph();
                    let est = warm_start_estimates_batch(
                        &old,
                        &new_graph,
                        batch.insertions(),
                        batch.removals(),
                    );
                    for u in new_graph.nodes() {
                        assert!(
                            est[u.index()] >= sc.coreness(u),
                            "{name}: estimate {} below true coreness {} at {u} \
                             (batch {batch_size}, seed {seed}, step {step})",
                            est[u.index()],
                            sc.coreness(u)
                        );
                        assert!(
                            est[u.index()] <= new_graph.degree(u),
                            "{name}: estimate above degree at {u}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn removal_only_and_insert_only_streams() {
    // Degenerate streams exercise the two phases in isolation: pure
    // insertion batches (region analysis + bumped descent, no removal
    // phase) and pure removal batches (exact descent, no regions).
    let offset = seed_offset();
    let mut rng = StdRng::seed_from_u64(7 ^ offset);
    let g = gnp(120, 0.06, 3 ^ offset);
    let mut sc = StreamCore::new(&g);

    // Insert-only: densify.
    for _ in 0..5 {
        let mut batch = EdgeBatch::new();
        let mut used: Vec<(u32, u32)> = Vec::new();
        while batch.len() < 16 {
            let a = rng.random_range(0..120u32);
            let b = rng.random_range(0..120u32);
            if a == b {
                continue;
            }
            let key = (a.min(b), a.max(b));
            if used.contains(&key) || sc.has_edge(NodeId(key.0), NodeId(key.1)) {
                continue;
            }
            used.push(key);
            batch.insert(NodeId(key.0), NodeId(key.1));
        }
        sc.apply_batch(&batch).unwrap();
        assert_eq!(
            sc.values(),
            batagelj_zaversnik(&sc.to_graph()).as_slice(),
            "insert-only stream diverged"
        );
    }

    // Removal-only: peel back down until the graph is sparse.
    while sc.edge_count() > 100 {
        let snapshot = sc.to_graph();
        let mut batch = EdgeBatch::new();
        for (i, (u, v)) in snapshot.edges().enumerate() {
            if i % 7 == 0 && batch.len() < 16 {
                batch.remove(u, v);
            }
        }
        if batch.is_empty() {
            break;
        }
        sc.apply_batch(&batch).unwrap();
        assert_eq!(
            sc.values(),
            batagelj_zaversnik(&sc.to_graph()).as_slice(),
            "removal-only stream diverged"
        );
    }
}
