//! Differential conformance: the imperative protocol drivers pinned
//! step-for-step, message-for-message, bit-for-bit to the pure transition
//! cores in `dkcore::machine`.
//!
//! The model checker proves properties of the *machines*; these suites
//! prove the machines *are* the shipped protocols: random asynchronous
//! schedules drive a [`NodeProtocol`] and an independently stepped
//! [`NodeMachine`] (resp. [`HostProtocol`] / [`HostMachine`]) in
//! lock-step, comparing states, emitted messages, and accounting after
//! every single event.
//!
//! The CI determinism matrix re-runs this suite with `DKCORE_TEST_SEED`
//! shifting every schedule, so conformance covers fresh interleavings on
//! every run rather than one pinned trace.

use dkcore::machine::{HostMachine, NodeMachine};
use dkcore::one_to_many::{
    Assignment, AssignmentPolicy, DisseminationPolicy, EmulationMode, HostProtocol,
    OneToManyConfig, Outgoing,
};
use dkcore::one_to_one::{NodeProtocol, OneToOneConfig};
use dkcore::seq::batagelj_zaversnik;
use dkcore_graph::generators::{complete, gnp, path, star, worst_case};
use dkcore_graph::{Graph, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Offset mixed into every schedule seed, from `DKCORE_TEST_SEED` (the CI
/// determinism matrix); 0 when unset.
fn seed_offset() -> u64 {
    std::env::var("DKCORE_TEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(0, |s| s.wrapping_mul(0x9E37_79B9))
}

fn families(seed: u64) -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp_sparse", gnp(60, 0.05, seed)),
        ("gnp_dense", gnp(40, 0.15, seed ^ 1)),
        ("star", star(25)),
        ("path", path(30)),
        ("complete", complete(9)),
        ("worst_case", worst_case(16)),
    ]
}

/// Drives every node of `g` through a random asynchronous schedule
/// (per-message delivery in shuffled order, probabilistic flushes),
/// checking driver ≡ machine after **every** event.
fn node_lockstep(g: &Graph, config: OneToOneConfig, rng: &mut StdRng, label: &str) {
    let n = g.node_count();
    let mut drivers: Vec<NodeProtocol> = NodeProtocol::for_graph(g, config);
    let machines: Vec<NodeMachine> = g.nodes().map(|u| NodeMachine::new(g, u, config)).collect();
    let mut states: Vec<_> = machines.iter().map(|m| m.initial_state()).collect();
    let mut machine_msgs = vec![0u64; n];

    // In-flight messages (from, to, k).
    let mut wire: Vec<(u32, u32, u32)> = Vec::new();
    for u in 0..n {
        let mut a = Vec::new();
        let ra = drivers[u].initial_broadcast_with(|v, k| a.push((v, k)));
        let mut b = Vec::new();
        let rb = machines[u].emit_initial(&states[u], |v, k| b.push((v, k)));
        assert_eq!(ra, rb.map(|(c, _)| c), "{label}: initial broadcast value");
        assert_eq!(a, b, "{label}: initial broadcast recipients");
        if let Some((_, count)) = rb {
            machine_msgs[u] += count;
        }
        wire.extend(a.iter().map(|&(v, k)| (u as u32, v.0, k)));
    }

    let mut steps = 0usize;
    while steps < 20_000 {
        steps += 1;
        let deliver = !wire.is_empty() && (rng.random_bool(0.7) || steps.is_multiple_of(7));
        if deliver {
            let i = rng.random_range(0..wire.len());
            let (from, to, k) = wire.swap_remove(i);
            let ra = drivers[to as usize].receive(NodeId(from), k);
            let rb = machines[to as usize].apply_receive(&mut states[to as usize], NodeId(from), k);
            assert_eq!(ra, rb, "{label}: receive return");
        } else {
            let u = rng.random_range(0..n);
            let mut a = Vec::new();
            let ra = drivers[u].round_flush_with(|v, k| a.push((v, k)));
            let mut b = Vec::new();
            let rb = machines[u].apply_flush(&mut states[u], |v, k| b.push((v, k)));
            assert_eq!(ra, rb.map(|(c, _)| c), "{label}: flush value");
            assert_eq!(a, b, "{label}: flush recipients");
            if let Some((_, count)) = rb {
                machine_msgs[u] += count;
            }
            wire.extend(a.iter().map(|&(v, k)| (u as u32, v.0, k)));
            if wire.is_empty() && drivers.iter().all(|d| !d.is_changed()) {
                break;
            }
        }
        // Bit-identical state after every event — estimates, core, index,
        // and flag all at once via the canonical state equality.
        let u_check = rng.random_range(0..n);
        assert_eq!(
            drivers[u_check].state(),
            &states[u_check],
            "{label}: state diverged at node {u_check}"
        );
    }

    let truth = batagelj_zaversnik(g);
    for u in 0..n {
        assert_eq!(drivers[u].state(), &states[u], "{label}: final state {u}");
        assert_eq!(
            drivers[u].messages_sent(),
            machine_msgs[u],
            "{label}: message accounting {u}"
        );
        assert_eq!(drivers[u].core(), truth[u], "{label}: converged value {u}");
    }
}

#[test]
fn node_machine_is_bit_identical_to_node_protocol() {
    let off = seed_offset();
    for seed in 0..3u64 {
        for (name, g) in families(seed ^ off) {
            for send_optimization in [true, false] {
                let mut rng = StdRng::seed_from_u64(seed ^ off ^ 0x0DE5);
                node_lockstep(
                    &g,
                    OneToOneConfig { send_optimization },
                    &mut rng,
                    &format!("{name}/opt={send_optimization}/seed={seed}"),
                );
            }
        }
    }
}

/// Drives every host through random batch schedules, checking the
/// optimized [`HostProtocol`] (both Worklist and the paper's literal
/// Sweep) against the pure [`HostMachine`] after every event: estimates,
/// flags, outgoing batches, and the paper's overhead accounting.
fn host_lockstep(
    g: &Graph,
    hosts: usize,
    policy: DisseminationPolicy,
    emulation: EmulationMode,
    rng: &mut StdRng,
    label: &str,
) {
    let assignment = Assignment::new(g, hosts, &AssignmentPolicy::Modulo);
    let cfg = OneToManyConfig { policy, emulation };
    let mut drivers = HostProtocol::for_assignment(g, &assignment, cfg);
    let machines: Vec<HostMachine> = assignment
        .hosts()
        .map(|h| HostMachine::new(g, &assignment, h, policy))
        .collect();
    let mut states: Vec<_> = machines.iter().map(|m| m.initial_state()).collect();
    let mut machine_sent = vec![(0u64, 0u64); hosts]; // (messages, estimates)

    // In-flight (to, pairs) batches.
    let mut wire: Vec<(usize, Vec<(NodeId, u32)>)> = Vec::new();
    let expand = |from: usize, out: &[Outgoing], wire: &mut Vec<(usize, Vec<(NodeId, u32)>)>| {
        for m in out {
            match m.dest {
                dkcore::one_to_many::Destination::AllHosts => {
                    for h in 0..hosts {
                        if h != from {
                            wire.push((h, m.pairs.clone()));
                        }
                    }
                }
                dkcore::one_to_many::Destination::Host(y) => {
                    wire.push((y.index(), m.pairs.clone()))
                }
            }
        }
    };

    for h in 0..hosts {
        let a = drivers[h].initial_flush();
        let mut b = Vec::new();
        let (msgs, ests) = machines[h].emit_initial(&mut states[h], &mut b);
        assert_eq!(a, b, "{label}: initial flush host {h}");
        machine_sent[h].0 += msgs;
        machine_sent[h].1 += ests;
        expand(h, &a, &mut wire);
    }

    let mut steps = 0usize;
    while steps < 5_000 {
        steps += 1;
        let deliver = !wire.is_empty() && rng.random_bool(0.7);
        if deliver {
            let i = rng.random_range(0..wire.len());
            let (to, pairs) = wire.swap_remove(i);
            drivers[to].receive(&pairs);
            machines[to].apply_receive(&mut states[to], pairs.iter().copied());
        } else {
            let h = rng.random_range(0..hosts);
            let a = drivers[h].round_flush();
            let mut b = Vec::new();
            let (msgs, ests) = machines[h].apply_flush(&mut states[h], &mut b);
            assert_eq!(a, b, "{label}: flush host {h}");
            machine_sent[h].0 += msgs;
            machine_sent[h].1 += ests;
            expand(h, &a, &mut wire);
            if wire.is_empty() && drivers.iter().all(|d| !d.has_pending_changes()) {
                break;
            }
        }
        let h = rng.random_range(0..hosts);
        let da: Vec<(NodeId, u32)> = drivers[h].local_estimates().collect();
        let db: Vec<(NodeId, u32)> = machines[h]
            .local_nodes()
            .iter()
            .enumerate()
            .map(|(i, &u)| (u, states[h].estimates()[i]))
            .collect();
        assert_eq!(da, db, "{label}: estimates diverged at host {h}");
    }

    let truth = batagelj_zaversnik(g);
    for h in 0..hosts {
        for (i, &u) in machines[h].local_nodes().iter().enumerate() {
            assert_eq!(
                states[h].estimates()[i],
                truth[u.index()],
                "{label}: host {h} node {u:?} converged value"
            );
        }
        assert_eq!(
            (drivers[h].messages_sent(), drivers[h].estimates_sent()),
            machine_sent[h],
            "{label}: accounting host {h}"
        );
    }
}

#[test]
fn host_machine_is_bit_identical_to_host_protocol() {
    let off = seed_offset();
    for seed in 0..2u64 {
        for (name, g) in families(seed ^ off) {
            for hosts in [2usize, 3, 5] {
                for policy in [
                    DisseminationPolicy::Broadcast,
                    DisseminationPolicy::PointToPoint,
                ] {
                    // The machine's sweep emulation must match both the
                    // optimized worklist cascade and the paper's literal
                    // sweep, batch for batch.
                    for emulation in [EmulationMode::Worklist, EmulationMode::Sweep] {
                        let mut rng = StdRng::seed_from_u64(seed ^ off ^ ((hosts as u64) << 8));
                        host_lockstep(
                            &g,
                            hosts,
                            policy,
                            emulation,
                            &mut rng,
                            &format!("{name}/h{hosts}/{policy:?}/{emulation:?}/seed={seed}"),
                        );
                    }
                }
            }
        }
    }
}
