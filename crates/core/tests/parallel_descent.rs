//! Bit-identity oracle for the region-parallel descent: random mutation
//! streams applied through a sequential `StreamCore` and a threaded one
//! in lockstep, asserting after every batch that coreness values,
//! `BatchStats`, and the `last_touched` delta *contents* are identical
//! (the delta's order within a batch is the one thing the parallel
//! merge is allowed to change), and that both match a fresh
//! Batagelj–Zaveršnik pass.
//!
//! The CI determinism matrix re-runs this suite with `DKCORE_TEST_SEED`
//! shifting every stream and `DKCORE_TEST_THREADS` pinning one worker
//! count; unset, every thread count in {2, 4, 8} is exercised.

use dkcore::seq::batagelj_zaversnik;
use dkcore::stream::{EdgeBatch, StreamCore};
use dkcore_graph::generators::{barabasi_albert, gnp, path, worst_case};
use dkcore_graph::{Graph, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Offset mixed into every stream seed, from `DKCORE_TEST_SEED` (the CI
/// determinism matrix); 0 when unset.
fn seed_offset() -> u64 {
    std::env::var("DKCORE_TEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(0, |s| s.wrapping_mul(0x9E37_79B9))
}

/// Worker counts under test: the `DKCORE_TEST_THREADS` override (the CI
/// determinism matrix) pins one, otherwise {2, 4, 8}.
fn thread_counts() -> Vec<usize> {
    std::env::var("DKCORE_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&t| t > 0)
        .map_or_else(|| vec![2, 4, 8], |t| vec![t])
}

fn families(seed: u64) -> Vec<(&'static str, Graph)> {
    vec![
        // Sparse G(n,p): many small, well-separated candidate regions —
        // the case the parallel dispatch actually fires on.
        ("gnp_sparse", gnp(220, 0.015, seed)),
        ("gnp_mid", gnp(140, 0.05, seed ^ 1)),
        ("ba", barabasi_albert(160, 3, seed ^ 2)),
        ("path", path(120)),
        ("worst_case", worst_case(40)),
    ]
}

/// Draws the next valid batch against the current edge state.
fn next_batch(sc: &StreamCore, batch_size: usize, rng: &mut StdRng) -> EdgeBatch {
    let n = sc.node_count() as u32;
    let mut batch = EdgeBatch::new();
    let mut used: Vec<(u32, u32)> = Vec::new();
    let mut tries = 0;
    while batch.len() < batch_size && tries < batch_size * 30 {
        tries += 1;
        let a = rng.random_range(0..n);
        let b = rng.random_range(0..n);
        if a == b {
            continue;
        }
        let key = (a.min(b), a.max(b));
        if used.contains(&key) {
            continue;
        }
        used.push(key);
        let (u, v) = (NodeId(key.0), NodeId(key.1));
        if sc.has_edge(u, v) {
            batch.remove(u, v);
        } else {
            batch.insert(u, v);
        }
    }
    batch
}

fn sorted_delta(sc: &StreamCore) -> Vec<(u32, u32)> {
    let mut d = sc.last_touched().to_vec();
    d.sort_unstable();
    d
}

/// Lockstep oracle: one family, one batch size, one seed, one thread
/// count.
fn run_lockstep(name: &str, g: &Graph, batch_size: usize, seed: u64, threads: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seq = StreamCore::new(g);
    let mut par = StreamCore::new(g).with_threads(threads);
    for step in 0..8 {
        let batch = next_batch(&seq, batch_size, &mut rng);
        let ctx =
            format!("{name}: batch {batch_size}, seed {seed}, threads {threads}, step {step}");
        let stats_seq = seq.apply_batch(&batch).unwrap();
        let stats_par = par.apply_batch(&batch).unwrap();
        assert_eq!(stats_seq, stats_par, "{ctx}: BatchStats diverged");
        assert_eq!(
            seq.values(),
            par.values(),
            "{ctx}: coreness values diverged"
        );
        assert_eq!(
            sorted_delta(&seq),
            sorted_delta(&par),
            "{ctx}: touched delta diverged"
        );
        assert_eq!(
            par.values(),
            batagelj_zaversnik(&par.to_graph()).as_slice(),
            "{ctx}: parallel repair diverged from ground truth"
        );
    }
}

#[test]
fn parallel_descent_matches_sequential_across_families() {
    let offset = seed_offset();
    for threads in thread_counts() {
        for seed in 0..2u64 {
            for (name, g) in families(seed.wrapping_add(offset)) {
                for batch_size in [7usize, 32, 96] {
                    run_lockstep(
                        name,
                        &g,
                        batch_size,
                        (seed * 31 + batch_size as u64).wrapping_add(offset),
                        threads,
                    );
                }
            }
        }
    }
}

#[test]
fn parallel_descent_matches_on_removal_heavy_streams() {
    // Pure removal batches drive the region-parallel *removal* phase,
    // which the mixed streams above only hit when a batch happens to
    // carry ≥ 2 removals in separate regions.
    let offset = seed_offset();
    for threads in thread_counts() {
        let g = gnp(260, 0.02, 11 ^ offset);
        let mut seq = StreamCore::new(&g);
        let mut par = StreamCore::new(&g).with_threads(threads);
        let mut step = 0;
        while seq.edge_count() > 120 {
            let snapshot = seq.to_graph();
            let mut batch = EdgeBatch::new();
            for (i, (u, v)) in snapshot.edges().enumerate() {
                if i % 5 == 0 && batch.len() < 48 {
                    batch.remove(u, v);
                }
            }
            if batch.is_empty() {
                break;
            }
            let stats_seq = seq.apply_batch(&batch).unwrap();
            let stats_par = par.apply_batch(&batch).unwrap();
            let ctx = format!("removal-heavy: threads {threads}, step {step}");
            assert_eq!(stats_seq, stats_par, "{ctx}: BatchStats diverged");
            assert_eq!(seq.values(), par.values(), "{ctx}: values diverged");
            assert_eq!(
                sorted_delta(&seq),
                sorted_delta(&par),
                "{ctx}: touched delta diverged"
            );
            step += 1;
        }
        assert!(step > 0, "removal-heavy stream never ran");
    }
}

#[test]
fn single_thread_settings_stay_on_the_sequential_path() {
    // threads 0 and 1 must be the plain sequential engine: identical
    // values *and* identical delta order.
    let g = gnp(150, 0.03, 5);
    let mut a = StreamCore::new(&g);
    let mut b = StreamCore::new(&g).with_threads(1);
    let mut rng = StdRng::seed_from_u64(9);
    for _ in 0..6 {
        let batch = next_batch(&a, 24, &mut rng);
        a.apply_batch(&batch).unwrap();
        b.apply_batch(&batch).unwrap();
        assert_eq!(a.values(), b.values());
        assert_eq!(a.last_touched(), b.last_touched());
    }
}
