//! Event flight recorder: a bounded lock-free ring buffer of structured
//! events with monotonic sequence numbers, drainable without stopping
//! the writers.
//!
//! # Design
//!
//! Writers claim a globally monotonic sequence number with one
//! `fetch_add` and write into slot `(seq - 1) % capacity` under a
//! per-slot seqlock built from plain atomics (the workspace forbids
//! `unsafe`, so there is no UnsafeCell trickery: every field is its own
//! atomic, and the slot version — odd while a write is in progress —
//! makes a torn multi-field read detectable). Readers retry a slot a
//! bounded number of times and skip it if a writer keeps winning;
//! recording never waits on a reader.
//!
//! The buffer keeps the most recent `capacity` events; older ones are
//! overwritten. [`FlightRecorder::events_since`] returns events with
//! `seq > since` in sequence order, so a client can tail the stream by
//! passing the last sequence number it saw (the wire layer's `EVENTS
//! SINCE s` verb is exactly this call).
//!
//! Timestamps are coarse milliseconds since the recorder was created —
//! enough to order and correlate events, cheap enough for hot paths.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// What happened; the discriminant is the wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum EventKind {
    /// A batch was validated and applied (`a` = inserted, `b` = removed).
    BatchApplied = 1,
    /// A new epoch became visible to readers (`a` = exchange rounds).
    EpochPublished = 2,
    /// One border-estimate exchange round ran (`a` = round index,
    /// `b` = wall micros).
    ExchangeRound = 3,
    /// A dropped border message was retransmitted (`a` = send attempt).
    Retransmit = 4,
    /// A primary shard writer died (`a` = 1 when scheduled/killed,
    /// 0 when detected via heartbeat).
    Failover = 5,
    /// A replica was promoted to primary (`a` = batches replayed).
    Promotion = 6,
    /// A partition ran out of writers and was tombstoned; batches are
    /// deferred (`a` = backlog length).
    Degraded = 7,
    /// A tombstoned partition was revived (`a` = backlog drained).
    Revive = 8,
    /// A response-cache entry was evicted under pressure (`a` = entries
    /// evicted).
    CacheEvicted = 9,
    /// A batch was deferred because a partition is down (`a` = backlog
    /// length after the deferral).
    Deferred = 10,
}

impl EventKind {
    /// Stable lowercase name, used by the text exposition.
    pub fn name(self) -> &'static str {
        match self {
            EventKind::BatchApplied => "batch-applied",
            EventKind::EpochPublished => "epoch-published",
            EventKind::ExchangeRound => "exchange-round",
            EventKind::Retransmit => "retransmit",
            EventKind::Failover => "failover",
            EventKind::Promotion => "promotion",
            EventKind::Degraded => "degraded",
            EventKind::Revive => "revive",
            EventKind::CacheEvicted => "cache-evicted",
            EventKind::Deferred => "deferred",
        }
    }

    /// Decodes a wire discriminant.
    pub fn from_u8(v: u8) -> Option<EventKind> {
        Some(match v {
            1 => EventKind::BatchApplied,
            2 => EventKind::EpochPublished,
            3 => EventKind::ExchangeRound,
            4 => EventKind::Retransmit,
            5 => EventKind::Failover,
            6 => EventKind::Promotion,
            7 => EventKind::Degraded,
            8 => EventKind::Revive,
            9 => EventKind::CacheEvicted,
            10 => EventKind::Deferred,
            _ => return None,
        })
    }
}

/// One recorded event. `a` and `b` are kind-specific payload scalars
/// (documented per [`EventKind`] variant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Monotonic sequence number, starting at 1.
    pub seq: u64,
    /// Coarse milliseconds since the recorder was created.
    pub ts_ms: u64,
    /// What happened.
    pub kind: EventKind,
    /// Shard the event concerns (0 for the single-writer service and
    /// service-wide events).
    pub shard: u32,
    /// Epoch the event concerns (0 when not epoch-scoped).
    pub epoch: u64,
    /// First kind-specific scalar.
    pub a: u64,
    /// Second kind-specific scalar.
    pub b: u64,
}

impl EventRecord {
    /// Renders the event as one stable text line — the grammar the
    /// wire `EVENTS` verb and `dkcore query events` emit:
    /// `seq=<n> ts_ms=<t> kind=<name> shard=<s> epoch=<e> a=<a> b=<b>`.
    pub fn render(&self) -> String {
        format!(
            "seq={} ts_ms={} kind={} shard={} epoch={} a={} b={}",
            self.seq,
            self.ts_ms,
            self.kind.name(),
            self.shard,
            self.epoch,
            self.a,
            self.b
        )
    }
}

/// One ring slot: a seqlock version plus the event fields, all plain
/// atomics. Version is even when the slot is consistent, odd while a
/// writer owns it.
#[derive(Debug)]
struct Slot {
    version: AtomicU64,
    seq: AtomicU64,
    ts_ms: AtomicU64,
    kind_shard: AtomicU64, // kind in the high 32 bits, shard in the low
    epoch: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            version: AtomicU64::new(0),
            seq: AtomicU64::new(0),
            ts_ms: AtomicU64::new(0),
            kind_shard: AtomicU64::new(0),
            epoch: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

#[derive(Debug)]
struct RecorderInner {
    slots: Vec<Slot>,
    mask: u64,
    next: AtomicU64,
    start: Instant,
}

/// Bounded lock-free ring buffer of [`EventRecord`]s; clones share the
/// buffer.
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    inner: Arc<RecorderInner>,
}

impl FlightRecorder {
    /// Creates a recorder keeping the most recent `capacity` events
    /// (rounded up to a power of two, minimum 8).
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(8).next_power_of_two();
        FlightRecorder {
            inner: Arc::new(RecorderInner {
                slots: (0..cap).map(|_| Slot::empty()).collect(),
                mask: cap as u64 - 1,
                next: AtomicU64::new(0),
                start: Instant::now(),
            }),
        }
    }

    /// Ring capacity (events retained).
    pub fn capacity(&self) -> usize {
        self.inner.slots.len()
    }

    /// Highest sequence number handed out so far (0 before the first
    /// record).
    pub fn last_seq(&self) -> u64 {
        self.inner.next.load(Ordering::Relaxed)
    }

    /// Records one event and returns its sequence number. Lock-free:
    /// one `fetch_add` for the sequence, then a seqlock write into the
    /// slot (a writer lapping the ring spins briefly only if another
    /// writer is mid-write in the *same* slot).
    pub fn record(&self, kind: EventKind, shard: u32, epoch: u64, a: u64, b: u64) -> u64 {
        let inner = &*self.inner;
        let seq = inner.next.fetch_add(1, Ordering::Relaxed) + 1;
        let slot = &inner.slots[((seq - 1) & inner.mask) as usize];
        // Claim: flip the version even -> odd.
        let mut v = slot.version.load(Ordering::Acquire);
        loop {
            if v % 2 == 1 {
                std::hint::spin_loop();
                v = slot.version.load(Ordering::Acquire);
                continue;
            }
            match slot
                .version
                .compare_exchange_weak(v, v + 1, Ordering::Acquire, Ordering::Acquire)
            {
                Ok(_) => break,
                Err(cur) => v = cur,
            }
        }
        let ts_ms = inner.start.elapsed().as_millis() as u64;
        slot.seq.store(seq, Ordering::Relaxed);
        slot.ts_ms.store(ts_ms, Ordering::Relaxed);
        slot.kind_shard.store(
            (u64::from(kind as u8) << 32) | u64::from(shard),
            Ordering::Relaxed,
        );
        slot.epoch.store(epoch, Ordering::Relaxed);
        slot.a.store(a, Ordering::Relaxed);
        slot.b.store(b, Ordering::Relaxed);
        slot.version.store(v + 2, Ordering::Release);
        seq
    }

    /// Events with `seq > since`, oldest first, at most `limit` — the
    /// paging contract of the wire `EVENTS SINCE s LIMIT n` verb (pass
    /// the last seen seq to tail). Reading never blocks writers; a slot
    /// being rewritten repeatedly under the reader is skipped after a
    /// bounded number of retries (its replacement event will carry a
    /// higher seq and be picked up by the next call).
    pub fn events_since(&self, since: u64, limit: usize) -> Vec<EventRecord> {
        let inner = &*self.inner;
        let mut out = Vec::new();
        for slot in &inner.slots {
            for _ in 0..8 {
                let v1 = slot.version.load(Ordering::Acquire);
                if v1 % 2 == 1 {
                    std::hint::spin_loop();
                    continue;
                }
                let seq = slot.seq.load(Ordering::Relaxed);
                let ts_ms = slot.ts_ms.load(Ordering::Relaxed);
                let kind_shard = slot.kind_shard.load(Ordering::Relaxed);
                let epoch = slot.epoch.load(Ordering::Relaxed);
                let a = slot.a.load(Ordering::Relaxed);
                let b = slot.b.load(Ordering::Relaxed);
                if slot.version.load(Ordering::Acquire) != v1 {
                    continue; // torn read: a writer got in; retry
                }
                let kind = EventKind::from_u8((kind_shard >> 32) as u8);
                if seq > since {
                    if let Some(kind) = kind {
                        out.push(EventRecord {
                            seq,
                            ts_ms,
                            kind,
                            shard: kind_shard as u32,
                            epoch,
                            a,
                            b,
                        });
                    }
                }
                break;
            }
        }
        out.sort_by_key(|e| e.seq);
        out.truncate(limit);
        out
    }

    /// All retained events, oldest first.
    pub fn events(&self) -> Vec<EventRecord> {
        self.events_since(0, usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_sequenced_and_replayed_in_order() {
        let r = FlightRecorder::new(16);
        assert_eq!(r.last_seq(), 0);
        let s1 = r.record(EventKind::Failover, 2, 10, 1, 0);
        let s2 = r.record(EventKind::Promotion, 2, 10, 3, 0);
        let s3 = r.record(EventKind::Revive, 2, 12, 5, 0);
        assert_eq!((s1, s2, s3), (1, 2, 3));
        let events = r.events();
        assert_eq!(
            events.iter().map(|e| e.kind).collect::<Vec<_>>(),
            vec![EventKind::Failover, EventKind::Promotion, EventKind::Revive]
        );
        assert_eq!(events[1].a, 3);
        // Tailing: SINCE the second event yields only the third.
        let tail = r.events_since(s2, usize::MAX);
        assert_eq!(tail.len(), 1);
        assert_eq!(tail[0].seq, s3);
        // LIMIT pages from the front of the remaining stream.
        let page = r.events_since(0, 2);
        assert_eq!(page.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![s1, s2]);
    }

    #[test]
    fn ring_keeps_the_most_recent_capacity_events() {
        let r = FlightRecorder::new(8);
        for i in 0..20u64 {
            r.record(EventKind::EpochPublished, 0, i, 0, 0);
        }
        let events = r.events();
        assert_eq!(events.len(), 8);
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, (13..=20).collect::<Vec<_>>(), "last 8, gapless");
    }

    #[test]
    fn render_grammar_is_stable() {
        let r = FlightRecorder::new(8);
        r.record(EventKind::Degraded, 3, 7, 2, 9);
        let line = r.events()[0].render();
        assert!(line.starts_with("seq=1 ts_ms="));
        assert!(line.ends_with("kind=degraded shard=3 epoch=7 a=2 b=9"));
    }

    #[test]
    fn concurrent_writers_never_produce_torn_or_gapped_reads() {
        // Writers stamp a = seq so a torn read (fields from two
        // different writes) is detectable; a reader drains continuously
        // while they hammer the ring.
        let r = FlightRecorder::new(64);
        let writers = 4;
        let per_writer = 5_000u64;
        std::thread::scope(|s| {
            for _ in 0..writers {
                let r = r.clone();
                s.spawn(move || {
                    for _ in 0..per_writer {
                        let got = r.record(EventKind::ExchangeRound, 1, 0, 0, 0);
                        // Stamp the returned seq into every scalar of a
                        // second event: a reader that observes
                        // epoch != a != b caught a torn write.
                        r.record(EventKind::BatchApplied, 1, got, got, got);
                    }
                });
            }
            let reader = r.clone();
            s.spawn(move || {
                let mut last = 0u64;
                for _ in 0..200 {
                    for e in reader.events_since(last, usize::MAX) {
                        assert!(e.seq > last, "events arrive in order");
                        last = e.seq;
                        if e.kind == EventKind::BatchApplied {
                            assert_eq!(e.a, e.epoch, "torn read: fields from two writes");
                            assert_eq!(e.b, e.epoch, "torn read: fields from two writes");
                        }
                    }
                    std::thread::yield_now();
                }
            });
        });
        // Quiesced: the ring holds exactly the newest `capacity` seqs,
        // gapless, and every slot is consistent.
        let total = writers as u64 * per_writer * 2;
        assert_eq!(r.last_seq(), total);
        let events = r.events();
        assert_eq!(events.len(), r.capacity());
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        let expect: Vec<u64> = (total - r.capacity() as u64 + 1..=total).collect();
        assert_eq!(seqs, expect, "gapless suffix of the sequence space");
        for e in &events {
            if e.kind == EventKind::BatchApplied {
                assert_eq!(e.a, e.epoch);
            }
        }
    }
}
