//! Runtime metrics registry: lock-free counters, gauges and log-scale
//! histograms registered under dotted names with static labels, plus a
//! Prometheus-style text exposition.
//!
//! # Design
//!
//! The serving stack records on hot paths (per publish, per exchange
//! round, per wire request), so recording must never take a lock or
//! allocate:
//!
//! * [`Counter`] — monotonically increasing, striped over a fixed set of
//!   cache-line-padded atomics; each thread picks one stripe once, so
//!   concurrent `inc()` calls from different threads do not bounce one
//!   cache line. `value()` sums the stripes.
//! * [`Gauge`] — a single signed atomic; last write wins.
//! * [`Histogram`] — 256 fixed log-scale buckets (values `0..=15` exact,
//!   then four sub-buckets per power of two, covering all of `u64`),
//!   plus count/sum/min/max atomics. `record()` is a handful of relaxed
//!   atomic ops; quantiles are answered from the bucket upper bound, so
//!   a reported quantile is within 25% above the true value — tight
//!   enough for latency telemetry, and unlike the crate's exact
//!   [`Percentiles`](crate::Percentiles) it needs no `Mutex<Vec>` and no
//!   sorting on the hot path.
//!
//! Handles are cheap `Arc` clones: register once (cold path, behind a
//! `Mutex<BTreeMap>`), then record through the handle forever.
//! [`Registry::snapshot`] and [`Registry::render_prometheus`] read
//! without stopping writers; the snapshot is a point-in-time copy and
//! entries render sorted by name then labels, so exposition output is
//! stable across calls.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Number of counter stripes; a small power of two — enough to keep a
/// few writer + connection threads off each other's cache lines without
/// making `value()` reads expensive.
const STRIPES: usize = 8;

/// One counter stripe on its own cache line (no `crossbeam`
/// `CachePadded` in the offline shim set, so pad via alignment).
#[repr(align(64))]
#[derive(Debug, Default)]
struct Stripe(AtomicU64);

/// Assigns each thread a stripe index once, round-robin.
fn stripe_index() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

/// Monotonically increasing counter; clone handles share the value.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    stripes: Arc<[Stripe; STRIPES]>,
}

impl Counter {
    /// A fresh unregistered counter (registered ones come from
    /// [`Registry::counter`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.stripes[stripe_index()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Current total across all stripes.
    pub fn value(&self) -> u64 {
        self.stripes
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

/// Last-write-wins signed gauge; clone handles share the value.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A fresh unregistered gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta`.
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: 16 exact small-value buckets plus
/// `4 sub-buckets × 60 octaves` covering the rest of `u64`.
pub const HISTOGRAM_BUCKETS: usize = 256;

/// Bucket index for a recorded value. Values `0..=15` get their own
/// bucket; above that, the top two bits below the leading bit select
/// one of four sub-buckets per power of two.
fn bucket_of(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let exp = 63 - v.leading_zeros() as usize; // >= 4
        let sub = ((v >> (exp - 2)) & 3) as usize;
        16 + (exp - 4) * 4 + sub
    }
}

/// Inclusive upper bound of a bucket (the value a quantile reports).
fn bucket_upper(b: usize) -> u64 {
    if b < 16 {
        b as u64
    } else {
        let exp = 4 + (b - 16) / 4;
        let sub = ((b - 16) % 4) as u64;
        // Bucket b holds [ (4+sub) << (exp-2), (5+sub) << (exp-2) - 1 ].
        ((5 + sub) << (exp - 2)).wrapping_sub(1)
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

/// Fixed-bucket log-scale histogram; `record()` is lock-free and
/// allocation-free, quantiles are answered from bucket upper bounds
/// (within 25% above the true value).
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: std::array::from_fn(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                min: AtomicU64::new(u64::MAX),
                max: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// A fresh unregistered histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let h = &*self.inner;
        h.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        h.count.fetch_add(1, Ordering::Relaxed);
        h.sum.fetch_add(v, Ordering::Relaxed);
        h.min.fetch_min(v, Ordering::Relaxed);
        h.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.inner.sum.load(Ordering::Relaxed)
    }

    /// The `q`-quantile (`0.0..=1.0`) as a bucket upper bound, clamped
    /// to the largest observed value; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.snapshot().quantile(q)
    }

    /// Point-in-time copy of the bucket state. Concurrent recording is
    /// fine: each bucket is read once, so the copy is a valid histogram
    /// of *approximately* the moment of the call.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let h = &*self.inner;
        HistogramSnapshot {
            buckets: h
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: h.count.load(Ordering::Relaxed),
            sum: h.sum.load(Ordering::Relaxed),
            min: h.min.load(Ordering::Relaxed),
            max: h.max.load(Ordering::Relaxed),
        }
    }
}

/// Owned point-in-time histogram state, mergeable across instances
/// (e.g. aggregating per-shard round timings into one distribution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts, indexed like the live histogram.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Smallest observation (`u64::MAX` when empty).
    pub min: u64,
    /// Largest observation (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile as a bucket upper bound, clamped to the largest
    /// observed value; 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return bucket_upper(b).min(self.max);
            }
        }
        self.max
    }

    /// Folds `other` into `self` — bucket-wise addition with the usual
    /// min/min, max/max combine. Both sides share the fixed bucket
    /// layout, so merging loses no precision beyond the buckets
    /// themselves.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean observation; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One registered metric handle (any kind).
#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Registration key: dotted name plus sorted static labels.
type MetricKey = (String, Vec<(String, String)>);

/// Point-in-time value of one registered metric, from
/// [`Registry::snapshot`].
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// A counter total.
    Counter(u64),
    /// A gauge value.
    Gauge(i64),
    /// A full histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// One `(name, labels, value)` entry of a registry snapshot.
#[derive(Debug, Clone)]
pub struct MetricEntry {
    /// Dotted metric name as registered (e.g. `serve.exchange.round_us`).
    pub name: String,
    /// Static labels, sorted by key.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: MetricValue,
}

/// Shared metrics registry. Clones are handles onto the same store;
/// registration is the cold path (one mutex-guarded map lookup),
/// recording goes through the returned lock-free handles.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Arc<Mutex<BTreeMap<MetricKey, Metric>>>,
}

impl Registry {
    /// A fresh empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A poisoned registry lock only means a panicking thread died
    /// mid-registration; the map is always structurally valid.
    fn lock(&self) -> MutexGuard<'_, BTreeMap<MetricKey, Metric>> {
        self.metrics.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn key(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|&(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        (name.to_string(), labels)
    }

    /// Gets or registers the counter `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different kind —
    /// always a programming error.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self
            .lock()
            .entry(Self::key(name, labels))
            .or_insert_with(|| Metric::Counter(Counter::new()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("{name} already registered as {other:?}, wanted a counter"),
        }
    }

    /// Gets or registers the gauge `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self
            .lock()
            .entry(Self::key(name, labels))
            .or_insert_with(|| Metric::Gauge(Gauge::new()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("{name} already registered as {other:?}, wanted a gauge"),
        }
    }

    /// Gets or registers the histogram `name{labels}`.
    ///
    /// # Panics
    ///
    /// Panics if the name is already registered as a different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self
            .lock()
            .entry(Self::key(name, labels))
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("{name} already registered as {other:?}, wanted a histogram"),
        }
    }

    /// Point-in-time values of every registered metric, sorted by name
    /// then labels (the map is a `BTreeMap`, so order is stable).
    pub fn snapshot(&self) -> Vec<MetricEntry> {
        self.lock()
            .iter()
            .map(|((name, labels), metric)| MetricEntry {
                name: name.clone(),
                labels: labels.clone(),
                value: match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.value()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.value()),
                    Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Renders every metric as Prometheus-style text: a `# TYPE` line
    /// per metric name, then `name{labels} value` samples. Dotted names
    /// are exported with dots mapped to underscores (Prometheus names
    /// cannot contain `.`); histograms render cumulative
    /// `_bucket{le=...}` samples for non-empty buckets plus `+Inf`,
    /// `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_typed = String::new();
        for e in self.snapshot() {
            let name = expo_name(&e.name);
            let kind = match e.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            if name != last_typed {
                let _ = writeln!(out, "# TYPE {name} {kind}");
                last_typed = name.clone();
            }
            match e.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{name}{} {v}", label_set(&e.labels, None));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{name}{} {v}", label_set(&e.labels, None));
                }
                MetricValue::Histogram(h) => {
                    let mut cum = 0u64;
                    for (b, &c) in h.buckets.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cum += c;
                        let le = bucket_upper(b).to_string();
                        let _ = writeln!(
                            out,
                            "{name}_bucket{} {cum}",
                            label_set(&e.labels, Some(&le))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {cum}",
                        label_set(&e.labels, Some("+Inf"))
                    );
                    let _ = writeln!(out, "{name}_sum{} {}", label_set(&e.labels, None), h.sum);
                    let _ = writeln!(
                        out,
                        "{name}_count{} {}",
                        label_set(&e.labels, None),
                        h.count
                    );
                }
            }
        }
        out
    }
}

/// Maps a dotted registry name to an exposition-safe metric name.
fn expo_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Renders a `{k="v",...}` label set, optionally with a trailing
/// `le="..."` (histogram buckets); empty label sets render as nothing.
fn label_set(labels: &[(String, String)], le: Option<&str>) -> String {
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{v}\"", v = v.replace('"', "\\\"")))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_exact_below_16_and_log_scale_above() {
        // 0..=15 each get their own bucket; the quantile of a
        // single-value histogram below 16 is exact.
        for v in 0..16u64 {
            assert_eq!(bucket_of(v), v as usize);
            assert_eq!(bucket_upper(bucket_of(v)), v);
        }
        // Octave boundaries: 16 starts bucket 16, each power of two
        // starts a fresh group of four sub-buckets.
        assert_eq!(bucket_of(15), 15);
        assert_eq!(bucket_of(16), 16);
        assert_eq!(bucket_of(19), 16);
        assert_eq!(bucket_of(20), 17);
        assert_eq!(bucket_of(31), 19);
        assert_eq!(bucket_of(32), 20);
        assert_eq!(bucket_of(u64::MAX), HISTOGRAM_BUCKETS - 1);
        // Every value maps into range, and its bucket's bounds contain
        // it (upper bound of the previous bucket is strictly below).
        for v in [16u64, 17, 63, 64, 65, 1000, 1 << 20, u64::MAX / 3, u64::MAX] {
            let b = bucket_of(v);
            assert!(b < HISTOGRAM_BUCKETS, "{v} -> {b}");
            assert!(bucket_upper(b) >= v, "{v} above its bucket bound");
            if b > 0 {
                assert!(bucket_upper(b - 1) < v, "{v} fits the previous bucket");
            }
        }
        // Bucket uppers are strictly monotone — no overlap, no gaps.
        for b in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_upper(b) > bucket_upper(b - 1), "bucket {b}");
        }
    }

    #[test]
    fn histogram_quantiles_bound_the_true_value() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 1000);
        assert_eq!(h.sum(), 500_500);
        let p50 = h.quantile(0.5);
        let p99 = h.quantile(0.99);
        // Upper-bound estimate: at or above the true quantile, within
        // the documented 25% relative error.
        assert!((500..=625).contains(&p50), "p50 {p50}");
        assert!((990..=1000).contains(&p99), "p99 {p99}"); // clamped by max
        assert_eq!(h.quantile(1.0), 1000);
        assert_eq!(Histogram::new().quantile(0.5), 0);
    }

    #[test]
    fn histogram_snapshots_merge_like_one_combined_run() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for v in 0..500u64 {
            a.record(v * 3);
            all.record(v * 3);
        }
        for v in 0..300u64 {
            b.record(v * 7 + 1);
            all.record(v * 7 + 1);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, all.snapshot());
        assert_eq!(merged.quantile(0.5), all.snapshot().quantile(0.5));
    }

    #[test]
    fn counters_sum_across_threads_and_stripes() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 40_000);
    }

    #[test]
    fn registry_reuses_handles_and_separates_labels() {
        let r = Registry::new();
        let a = r.counter("wire.requests", &[("verb", "EPOCH")]);
        let b = r.counter("wire.requests", &[("verb", "EPOCH")]);
        let other = r.counter("wire.requests", &[("verb", "HIST")]);
        a.inc();
        b.inc();
        other.add(5);
        assert_eq!(a.value(), 2, "same (name, labels) share state");
        assert_eq!(other.value(), 5);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 2);
        assert!(snap.iter().all(|e| e.name == "wire.requests"));
    }

    #[test]
    fn prometheus_rendering_is_stable_and_typed() {
        let r = Registry::new();
        r.counter("serve.publish.total", &[]).add(3);
        r.gauge("serve.epoch", &[]).set(7);
        let h = r.histogram("serve.publish.latency_us", &[("shard", "0")]);
        h.record(5);
        h.record(100);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE serve_epoch gauge\nserve_epoch 7\n"));
        assert!(text.contains("# TYPE serve_publish_total counter\nserve_publish_total 3\n"));
        assert!(text.contains("# TYPE serve_publish_latency_us histogram"));
        assert!(text.contains("serve_publish_latency_us_bucket{shard=\"0\",le=\"5\"} 1"));
        assert!(text.contains("serve_publish_latency_us_bucket{shard=\"0\",le=\"+Inf\"} 2"));
        assert!(text.contains("serve_publish_latency_us_sum{shard=\"0\"} 105"));
        assert!(text.contains("serve_publish_latency_us_count{shard=\"0\"} 2"));
        assert_eq!(text, r.render_prometheus(), "stable across renders");
    }
}
