//! Experiment metrics toolkit for the k-core reproduction harness.
//!
//! Two families of building blocks:
//!
//! **Experiment statistics**, shared by the simulator observers and the
//! bench binaries that regenerate the paper's tables and figures:
//!
//! * [`Summary`] — streaming summary statistics (count/mean/min/max/std),
//!   used for the `t_avg`/`t_min`/`t_max`/`m_avg`/`m_max` columns of
//!   Table 1;
//! * [`Percentiles`] — exact tail quantiles (p50/p95/p99) over stored
//!   observations, used for the serve-layer latency reports
//!   (`BENCH_PR4.json`);
//! * [`Series`] — labeled `(x, y)` sequences with cross-repetition
//!   aggregation, used for the error-evolution curves of Figure 4 and the
//!   overhead curves of Figure 5;
//! * [`Table`] — plain-text (paper-style) and CSV rendering of result
//!   tables.
//!
//! **Runtime telemetry**, shared by the serving stack (`dkcore-serve`)
//! and exposed over the wire `METRICS`/`EVENTS` verbs:
//!
//! * [`Registry`] with lock-free [`Counter`]/[`Gauge`]/[`Histogram`]
//!   handles and a Prometheus-style text exposition — the hot-path
//!   replacement for ad-hoc `Percentiles` bookkeeping;
//! * [`FlightRecorder`] — a bounded lock-free ring of structured
//!   [`EventRecord`]s (failovers, promotions, degradations, epoch
//!   publishes, retransmits, ...) with monotonic sequence numbers;
//! * [`Telemetry`] — the bundle of both that services thread through
//!   their layers.
//!
//! # Example
//!
//! ```
//! use dkcore_metrics::Summary;
//!
//! let s: Summary = [19.0, 18.0, 21.0].into_iter().collect();
//! assert_eq!(s.count(), 3);
//! assert_eq!(s.min(), 18.0);
//! assert_eq!(s.max(), 21.0);
//! assert!((s.mean() - 19.333).abs() < 1e-3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod events;
mod registry;
mod series;
mod summary;
mod table;
mod telemetry;

pub use events::{EventKind, EventRecord, FlightRecorder};
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricEntry, MetricValue, Registry,
    HISTOGRAM_BUCKETS,
};
pub use series::Series;
pub use summary::{Percentiles, Summary};
pub use table::Table;
pub use telemetry::{Telemetry, DEFAULT_EVENTS_CAPACITY};
