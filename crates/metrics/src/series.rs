use std::fmt;

/// A labeled sequence of `(x, y)` points — one curve of a figure.
///
/// Used for the paper's Figure 4 (error vs. round) and Figure 5 (overhead
/// vs. host count). Provides point-wise aggregation across experiment
/// repetitions, with an explicit fill value for runs that terminate early
/// (a converged run has error 0 from then on, so Figure 4 uses `0.0`).
///
/// # Example
///
/// ```
/// use dkcore_metrics::Series;
///
/// let run1 = Series::from_points("err", [(1.0, 4.0), (2.0, 1.0), (3.0, 0.0)]);
/// let run2 = Series::from_points("err", [(1.0, 2.0), (2.0, 1.0)]);
/// // Average the two runs; the shorter one is padded with 0.0.
/// let avg = Series::mean_across("err", &[run1, run2], 0.0);
/// assert_eq!(avg.points(), &[(1.0, 3.0), (2.0, 1.0), (3.0, 0.0)]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates an empty series with the given label.
    pub fn new(label: impl Into<String>) -> Self {
        Series {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Creates a series from an iterator of points.
    pub fn from_points(
        label: impl Into<String>,
        points: impl IntoIterator<Item = (f64, f64)>,
    ) -> Self {
        Series {
            label: label.into(),
            points: points.into_iter().collect(),
        }
    }

    /// The curve's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The points, in insertion order.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }

    /// Appends a point.
    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push((x, y));
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Largest y value, or `None` when empty.
    pub fn max_y(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, y)| y)
            .fold(None, |acc, y| Some(acc.map_or(y, |a: f64| a.max(y))))
    }

    /// The first x at which y drops to (or below) `threshold`, scanning
    /// left to right; `None` if it never does. Used to answer questions
    /// like "by which round is the maximum error ≤ 1?" (paper §5.1).
    pub fn first_x_below(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|&&(_, y)| y <= threshold)
            .map(|&(x, _)| x)
    }

    /// Point-wise mean of several runs of the same experiment.
    ///
    /// Runs may have different lengths (they converge at different rounds);
    /// shorter runs contribute `fill` beyond their end. The x values are
    /// taken from the longest run.
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty.
    pub fn mean_across(label: impl Into<String>, runs: &[Series], fill: f64) -> Series {
        assert!(!runs.is_empty(), "need at least one run to aggregate");
        let longest = runs.iter().max_by_key(|s| s.len()).expect("non-empty");
        let mut points = Vec::with_capacity(longest.len());
        for (i, &(x, _)) in longest.points.iter().enumerate() {
            let sum: f64 = runs
                .iter()
                .map(|r| r.points.get(i).map_or(fill, |&(_, y)| y))
                .sum();
            points.push((x, sum / runs.len() as f64));
        }
        Series {
            label: label.into(),
            points,
        }
    }

    /// Point-wise maximum of several runs (the right half of Figure 4 uses
    /// the max error "computed over all nodes, and over 50 experiments").
    ///
    /// # Panics
    ///
    /// Panics if `runs` is empty.
    pub fn max_across(label: impl Into<String>, runs: &[Series], fill: f64) -> Series {
        assert!(!runs.is_empty(), "need at least one run to aggregate");
        let longest = runs.iter().max_by_key(|s| s.len()).expect("non-empty");
        let mut points = Vec::with_capacity(longest.len());
        for (i, &(x, _)) in longest.points.iter().enumerate() {
            let max = runs
                .iter()
                .map(|r| r.points.get(i).map_or(fill, |&(_, y)| y))
                .fold(f64::NEG_INFINITY, f64::max);
            points.push((x, max));
        }
        Series {
            label: label.into(),
            points,
        }
    }

    /// Renders the series as `x<TAB>y` lines, gnuplot-style, prefixed by a
    /// `# label` comment.
    pub fn to_tsv(&self) -> String {
        let mut out = format!("# {}\n", self.label);
        for &(x, y) in &self.points {
            out.push_str(&format!("{x}\t{y}\n"));
        }
        out
    }
}

impl fmt::Display for Series {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} points)", self.label, self.points.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_inspect() {
        let mut s = Series::new("curve");
        assert!(s.is_empty());
        s.push(1.0, 10.0);
        s.push(2.0, 5.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.label(), "curve");
        assert_eq!(s.max_y(), Some(10.0));
    }

    #[test]
    fn first_x_below_threshold() {
        let s = Series::from_points("e", [(1.0, 9.0), (2.0, 3.0), (3.0, 0.5)]);
        assert_eq!(s.first_x_below(1.0), Some(3.0));
        assert_eq!(s.first_x_below(3.0), Some(2.0));
        assert_eq!(s.first_x_below(0.1), None);
        assert_eq!(Series::new("x").first_x_below(1.0), None);
    }

    #[test]
    fn mean_across_pads_with_fill() {
        let a = Series::from_points("a", [(1.0, 4.0), (2.0, 2.0), (3.0, 2.0)]);
        let b = Series::from_points("b", [(1.0, 0.0)]);
        let avg = Series::mean_across("avg", &[a, b], 0.0);
        assert_eq!(avg.points(), &[(1.0, 2.0), (2.0, 1.0), (3.0, 1.0)]);
    }

    #[test]
    fn max_across_takes_pointwise_max() {
        let a = Series::from_points("a", [(1.0, 4.0), (2.0, 1.0)]);
        let b = Series::from_points("b", [(1.0, 2.0), (2.0, 5.0), (3.0, 1.0)]);
        let m = Series::max_across("max", &[a, b], 0.0);
        assert_eq!(m.points(), &[(1.0, 4.0), (2.0, 5.0), (3.0, 1.0)]);
    }

    #[test]
    fn single_run_aggregates_to_itself() {
        let a = Series::from_points("a", [(1.0, 4.0), (2.0, 1.0)]);
        let m = Series::mean_across("m", std::slice::from_ref(&a), 0.0);
        assert_eq!(m.points(), a.points());
    }

    #[test]
    #[should_panic(expected = "at least one run")]
    fn mean_across_empty_panics() {
        let _ = Series::mean_across("m", &[], 0.0);
    }

    #[test]
    fn tsv_rendering() {
        let s = Series::from_points("err", [(1.0, 0.5)]);
        let tsv = s.to_tsv();
        assert!(tsv.starts_with("# err\n"));
        assert!(tsv.contains("1\t0.5"));
    }

    #[test]
    fn display_mentions_label_and_size() {
        let s = Series::from_points("curve", [(0.0, 0.0)]);
        assert_eq!(s.to_string(), "curve (1 points)");
    }
}
