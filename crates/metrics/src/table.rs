use std::fmt;

/// A simple result table with aligned plain-text and CSV rendering.
///
/// The bench binaries use this to print the paper's tables in a shape
/// directly comparable with the originals.
///
/// # Example
///
/// ```
/// use dkcore_metrics::Table;
///
/// let mut t = Table::new(["name", "|V|", "t_avg"]);
/// t.row(["CA-AstroPh-like", "18772", "19.55"]);
/// let text = t.to_string();
/// assert!(text.contains("CA-AstroPh-like"));
/// assert!(t.to_csv().starts_with("name,|V|,t_avg\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of headers.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header count"
        );
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (headers first, comma-separated, `\n` line ends).
    /// Cells containing commas or quotes are quoted.
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        out.push_str(
            &self
                .headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(","),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    /// Aligned plain-text rendering with a header separator line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let render = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:>width$}", width = widths[c]));
            }
            writeln!(f, "{}", line.trim_end())
        };
        render(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            render(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_separator() {
        let mut t = Table::new(["name", "n"]);
        t.row(["short", "1"]);
        t.row(["a-much-longer-name", "22"]);
        let text = t.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned: the "1" lines up at the end of the column.
        assert!(lines[2].ends_with(" 1"));
    }

    #[test]
    fn csv_rendering_and_escaping() {
        let mut t = Table::new(["a", "b"]);
        t.row(["plain", "with,comma"]);
        t.row(["has\"quote", "x"]);
        let csv = t.to_csv();
        assert!(csv.contains("plain,\"with,comma\""));
        assert!(csv.contains("\"has\"\"quote\",x"));
    }

    #[test]
    fn empty_table_renders_headers_only() {
        let t = Table::new(["h1", "h2"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.to_csv(), "h1,h2\n");
        assert!(t.to_string().contains("h1"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn row_chaining() {
        let mut t = Table::new(["x"]);
        t.row(["1"]).row(["2"]);
        assert_eq!(t.len(), 2);
    }
}
