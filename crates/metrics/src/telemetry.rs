//! The [`Telemetry`] bundle: one metrics [`Registry`] plus one event
//! [`FlightRecorder`], shared by every layer of a serving stack.
//!
//! Services hold a clone, register their metrics at construction, and
//! record through the cheap handles on hot paths. The `enabled` flag
//! exists for the instrumentation-overhead benchmark (`bench_pr9`): a
//! disabled bundle still hands out working handles, but callers are
//! expected to gate their timing/recording blocks on
//! [`Telemetry::enabled`] so the uninstrumented path pays one branch
//! and nothing else.

use crate::events::{EventKind, EventRecord, FlightRecorder};
use crate::registry::Registry;

/// Default flight-recorder capacity (`serve --events-capacity` override).
pub const DEFAULT_EVENTS_CAPACITY: usize = 1024;

/// Shared telemetry bundle: registry + flight recorder + enabled flag.
/// Clones share state.
#[derive(Debug, Clone)]
pub struct Telemetry {
    registry: Registry,
    recorder: FlightRecorder,
    enabled: bool,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new(DEFAULT_EVENTS_CAPACITY)
    }
}

impl Telemetry {
    /// An enabled bundle retaining the most recent `events_capacity`
    /// events.
    pub fn new(events_capacity: usize) -> Telemetry {
        Telemetry {
            registry: Registry::new(),
            recorder: FlightRecorder::new(events_capacity),
            enabled: true,
        }
    }

    /// A disabled bundle: handles still work, but [`event`](Self::event)
    /// is a no-op and instrumented code is expected to skip its timing
    /// blocks after checking [`enabled`](Self::enabled).
    pub fn disabled() -> Telemetry {
        Telemetry {
            registry: Registry::new(),
            recorder: FlightRecorder::new(8),
            enabled: false,
        }
    }

    /// Whether instrumentation should run (one branch on hot paths).
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The event flight recorder.
    pub fn recorder(&self) -> &FlightRecorder {
        &self.recorder
    }

    /// Records an event unless disabled; returns the sequence number
    /// (0 when disabled).
    pub fn event(&self, kind: EventKind, shard: u32, epoch: u64, a: u64, b: u64) -> u64 {
        if self.enabled {
            self.recorder.record(kind, shard, epoch, a, b)
        } else {
            0
        }
    }

    /// Events after `since`, oldest first, at most `limit` (see
    /// [`FlightRecorder::events_since`]).
    pub fn events_since(&self, since: u64, limit: usize) -> Vec<EventRecord> {
        self.recorder.events_since(since, limit)
    }

    /// Prometheus-style text of every registered metric.
    pub fn render_prometheus(&self) -> String {
        self.registry.render_prometheus()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_bundle_drops_events_but_keeps_handles_working() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        assert_eq!(t.event(EventKind::Failover, 0, 1, 0, 0), 0);
        assert!(t.events_since(0, usize::MAX).is_empty());
        // Registered handles still function (services register
        // unconditionally and only gate the recording).
        let c = t.registry().counter("x", &[]);
        c.inc();
        assert_eq!(c.value(), 1);
    }

    #[test]
    fn enabled_bundle_threads_events_through() {
        let t = Telemetry::new(16);
        assert!(t.enabled());
        let s = t.event(EventKind::Promotion, 1, 2, 3, 4);
        assert_eq!(s, 1);
        let events = t.events_since(0, 10);
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Promotion);
        assert!(t.render_prometheus().is_empty(), "no metrics registered");
    }
}
