use std::fmt;

/// Streaming summary statistics over `f64` observations.
///
/// Tracks count, mean, min, max and variance (Welford's online algorithm),
/// so repeated experiment outcomes can be folded in one at a time — exactly
/// what the paper's "average over 50 experiments" columns need.
///
/// # Example
///
/// ```
/// use dkcore_metrics::Summary;
///
/// let mut s = Summary::new();
/// for rounds in [18.0, 19.0, 21.0, 20.0] {
///     s.record(rounds);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 19.5);
/// assert_eq!(s.min(), 18.0);
/// assert_eq!(s.max(), 21.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice of observations.
    pub fn from_values(values: &[f64]) -> Self {
        values.iter().copied().collect()
    }

    /// Folds one observation into the summary.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population variance; 0.0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another summary into this one (order-independent).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} min={:.2} max={:.2} std={:.2}",
            self.count,
            self.mean(),
            self.min(),
            self.max(),
            self.std_dev()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_values(&[7.0]);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.min(), 7.0);
        assert_eq!(s.max(), 7.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::from_values(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 4.0);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0];
        let ys = [4.0, 4.0, 9.0];
        let mut a = Summary::from_values(&xs);
        let b = Summary::from_values(&ys);
        a.merge(&b);
        let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        let c = Summary::from_values(&all);
        assert_eq!(a.count(), c.count());
        assert!((a.mean() - c.mean()).abs() < 1e-12);
        assert!((a.variance() - c.variance()).abs() < 1e-12);
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::from_values(&[1.0, 2.0]);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn extend_and_collect() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        s.extend([3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
    }

    #[test]
    fn display_is_informative() {
        let s = Summary::from_values(&[1.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=2.00"));
    }
}
