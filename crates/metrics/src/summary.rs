use std::fmt;

/// Streaming summary statistics over `f64` observations.
///
/// Tracks count, mean, min, max and variance (Welford's online algorithm),
/// so repeated experiment outcomes can be folded in one at a time — exactly
/// what the paper's "average over 50 experiments" columns need.
///
/// # Example
///
/// ```
/// use dkcore_metrics::Summary;
///
/// let mut s = Summary::new();
/// for rounds in [18.0, 19.0, 21.0, 20.0] {
///     s.record(rounds);
/// }
/// assert_eq!(s.count(), 4);
/// assert_eq!(s.mean(), 19.5);
/// assert_eq!(s.min(), 18.0);
/// assert_eq!(s.max(), 21.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Summary {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    /// Creates an empty summary.
    pub fn new() -> Self {
        Summary {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds a summary from a slice of observations.
    pub fn from_values(values: &[f64]) -> Self {
        values.iter().copied().collect()
    }

    /// Folds one observation into the summary.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Smallest observation; 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Population variance; 0.0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean() * self.count as f64
    }

    /// Merges another summary into this one (order-independent).
    pub fn merge(&mut self, other: &Summary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = Summary::new();
        for x in iter {
            s.record(x);
        }
        s
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.record(x);
        }
    }
}

/// Exact percentile summary over stored `f64` observations.
///
/// [`Summary`] is streaming (constant memory) but can only answer
/// mean/min/max/std questions; latency reporting needs tail quantiles, so
/// this sibling keeps every observation in a sorted vector (insertion
/// keeps it ordered, so queries are O(1) after an O(n) insert) and
/// answers arbitrary percentiles with linear interpolation between the
/// two closest ranks — the convention used by most load-testing tools.
///
/// Non-finite observations (NaN, ±∞) are ignored: they have no place in
/// a latency distribution and would poison the ordering.
///
/// # Example
///
/// ```
/// use dkcore_metrics::Percentiles;
///
/// let p: Percentiles = (1..=100).map(f64::from).collect();
/// assert_eq!(p.count(), 100);
/// assert_eq!(p.p50(), 50.5);
/// assert!((p.p99() - 99.01).abs() < 1e-9);
/// assert_eq!(p.percentile(100.0), 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Percentiles {
    /// Observations, kept sorted ascending.
    values: Vec<f64>,
}

impl Percentiles {
    /// Creates an empty percentile summary.
    pub fn new() -> Self {
        Percentiles { values: Vec::new() }
    }

    /// Builds a summary from a slice of observations.
    pub fn from_values(values: &[f64]) -> Self {
        values.iter().copied().collect()
    }

    /// Records one observation (ignored when not finite).
    pub fn record(&mut self, x: f64) {
        if !x.is_finite() {
            return;
        }
        let at = self.values.partition_point(|&v| v < x);
        self.values.insert(at, x);
    }

    /// Number of (finite) observations recorded.
    pub fn count(&self) -> u64 {
        self.values.len() as u64
    }

    /// Whether no observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The `p`-th percentile (`0.0..=100.0`, clamped), linearly
    /// interpolated between the two closest ranks; `0.0` when empty.
    pub fn percentile(&self, p: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let rank = (p.clamp(0.0, 100.0) / 100.0) * (self.values.len() - 1) as f64;
        let lo = rank.floor() as usize;
        let hi = rank.ceil() as usize;
        let frac = rank - lo as f64;
        self.values[lo] + (self.values[hi] - self.values[lo]) * frac
    }

    /// The median (50th percentile).
    pub fn p50(&self) -> f64 {
        self.percentile(50.0)
    }

    /// The 95th percentile.
    pub fn p95(&self) -> f64 {
        self.percentile(95.0)
    }

    /// The 99th percentile.
    pub fn p99(&self) -> f64 {
        self.percentile(99.0)
    }

    /// Smallest observation; 0.0 when empty.
    pub fn min(&self) -> f64 {
        self.values.first().copied().unwrap_or(0.0)
    }

    /// Largest observation; 0.0 when empty.
    pub fn max(&self) -> f64 {
        self.values.last().copied().unwrap_or(0.0)
    }

    /// Arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f64>() / self.values.len() as f64
        }
    }

    /// Merges another summary into this one (order-independent).
    pub fn merge(&mut self, other: &Percentiles) {
        let merged = self.values.len() + other.values.len();
        let mut values = Vec::with_capacity(merged);
        let (mut a, mut b) = (
            self.values.iter().peekable(),
            other.values.iter().peekable(),
        );
        while let (Some(&&x), Some(&&y)) = (a.peek(), b.peek()) {
            if x <= y {
                values.push(x);
                a.next();
            } else {
                values.push(y);
                b.next();
            }
        }
        values.extend(a.copied());
        values.extend(b.copied());
        self.values = values;
    }
}

impl FromIterator<f64> for Percentiles {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut values: Vec<f64> = iter.into_iter().filter(|x| x.is_finite()).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite values are ordered"));
        Percentiles { values }
    }
}

impl Extend<f64> for Percentiles {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.merge(&iter.into_iter().collect());
    }
}

impl fmt::Display for Percentiles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} p50={:.2} p95={:.2} p99={:.2} max={:.2}",
            self.count(),
            self.p50(),
            self.p95(),
            self.p99(),
            self.max()
        )
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} min={:.2} max={:.2} std={:.2}",
            self.count,
            self.mean(),
            self.min(),
            self.max(),
            self.std_dev()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_summary_is_zeroed() {
        let s = Summary::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn single_observation() {
        let s = Summary::from_values(&[7.0]);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.min(), 7.0);
        assert_eq!(s.max(), 7.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn known_statistics() {
        let s = Summary::from_values(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.mean(), 5.0);
        assert_eq!(s.variance(), 4.0);
        assert_eq!(s.std_dev(), 2.0);
        assert_eq!(s.sum(), 40.0);
    }

    #[test]
    fn merge_equals_concatenation() {
        let xs = [1.0, 5.0, 2.0, 8.0, 3.0];
        let ys = [4.0, 4.0, 9.0];
        let mut a = Summary::from_values(&xs);
        let b = Summary::from_values(&ys);
        a.merge(&b);
        let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        let c = Summary::from_values(&all);
        assert_eq!(a.count(), c.count());
        assert!((a.mean() - c.mean()).abs() < 1e-12);
        assert!((a.variance() - c.variance()).abs() < 1e-12);
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = Summary::from_values(&[1.0, 2.0]);
        let before = a.clone();
        a.merge(&Summary::new());
        assert_eq!(a, before);
        let mut e = Summary::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn extend_and_collect() {
        let mut s: Summary = [1.0, 2.0].into_iter().collect();
        s.extend([3.0, 4.0]);
        assert_eq!(s.count(), 4);
        assert_eq!(s.mean(), 2.5);
    }

    #[test]
    fn display_is_informative() {
        let s = Summary::from_values(&[1.0, 3.0]);
        let text = s.to_string();
        assert!(text.contains("n=2"));
        assert!(text.contains("mean=2.00"));
    }

    #[test]
    fn percentiles_empty_and_single() {
        let p = Percentiles::new();
        assert!(p.is_empty());
        assert_eq!(p.p50(), 0.0);
        assert_eq!(p.percentile(99.0), 0.0);
        assert_eq!(p.min(), 0.0);
        assert_eq!(p.max(), 0.0);
        assert_eq!(p.mean(), 0.0);
        let p = Percentiles::from_values(&[7.0]);
        assert_eq!(p.p50(), 7.0);
        assert_eq!(p.p99(), 7.0);
        assert_eq!(p.percentile(0.0), 7.0);
    }

    #[test]
    fn percentiles_known_quantiles() {
        // 1..=100: linear interpolation between closest ranks.
        let p: Percentiles = (1..=100).map(f64::from).collect();
        assert_eq!(p.count(), 100);
        assert_eq!(p.p50(), 50.5);
        assert!((p.p95() - 95.05).abs() < 1e-9);
        assert!((p.p99() - 99.01).abs() < 1e-9);
        assert_eq!(p.percentile(0.0), 1.0);
        assert_eq!(p.percentile(100.0), 100.0);
        assert_eq!(p.percentile(250.0), 100.0, "clamped above");
        assert_eq!(p.percentile(-5.0), 1.0, "clamped below");
        assert_eq!(p.min(), 1.0);
        assert_eq!(p.max(), 100.0);
        assert_eq!(p.mean(), 50.5);
    }

    #[test]
    fn percentiles_record_order_does_not_matter() {
        let mut a = Percentiles::new();
        for x in [9.0, 1.0, 5.0, 3.0, 7.0] {
            a.record(x);
        }
        let b = Percentiles::from_values(&[1.0, 3.0, 5.0, 7.0, 9.0]);
        assert_eq!(a, b);
        assert_eq!(a.p50(), 5.0);
    }

    #[test]
    fn percentiles_ignore_non_finite() {
        let mut p = Percentiles::new();
        p.record(f64::NAN);
        p.record(f64::INFINITY);
        p.record(2.0);
        assert_eq!(p.count(), 1);
        let q: Percentiles = [1.0, f64::NAN, 3.0].into_iter().collect();
        assert_eq!(q.count(), 2);
        assert_eq!(q.p50(), 2.0);
    }

    #[test]
    fn percentiles_merge_equals_concatenation() {
        let xs = [4.0, 1.0, 8.0];
        let ys = [2.0, 9.0, 5.0, 3.0];
        let mut a = Percentiles::from_values(&xs);
        a.merge(&Percentiles::from_values(&ys));
        let all: Vec<f64> = xs.iter().chain(ys.iter()).copied().collect();
        assert_eq!(a, Percentiles::from_values(&all));
        let mut e = Percentiles::new();
        e.extend(all.iter().copied());
        assert_eq!(e, a);
    }

    #[test]
    fn percentiles_display_shows_tail() {
        let p: Percentiles = (1..=10).map(f64::from).collect();
        let text = p.to_string();
        assert!(text.contains("n=10"));
        assert!(text.contains("p50=5.50"));
        assert!(text.contains("p99="));
    }
}
