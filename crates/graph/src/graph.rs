use crate::{GraphBuilder, GraphError, NodeId};

/// A simple undirected graph in CSR (compressed sparse row) form.
///
/// The representation is immutable once built: neighbor lists are sorted,
/// deduplicated and free of self-loops. Every undirected edge `{u, v}` is
/// stored twice (as `u → v` and `v → u`), matching the paper's §5 note that
/// "undirected graphs have been transformed in directed graphs by
/// considering both directions for each link".
///
/// Use [`GraphBuilder`] or [`Graph::from_edges`] to construct one.
///
/// # Example
///
/// ```
/// use dkcore_graph::{Graph, NodeId};
///
/// let triangle = Graph::from_edges(3, [(0, 1), (1, 2), (2, 0)])?;
/// assert_eq!(triangle.edge_count(), 3);
/// assert!(triangle.has_edge(NodeId(0), NodeId(2)));
/// assert_eq!(triangle.degree(NodeId(1)), 2);
/// # Ok::<(), dkcore_graph::GraphError>(())
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Graph {
    /// `offsets[u.index()]..offsets[u.index() + 1]` indexes `targets`.
    offsets: Vec<usize>,
    /// Concatenated, per-node sorted adjacency lists.
    targets: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph with `node_count` nodes from an edge iterator.
    ///
    /// Self-loops are dropped and duplicate edges are merged, so the result
    /// is always a simple graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>=
    /// node_count` and [`GraphError::TooManyNodes`] if `node_count` does not
    /// fit in `u32`.
    ///
    /// # Example
    ///
    /// ```
    /// use dkcore_graph::Graph;
    ///
    /// let g = Graph::from_edges(4, [(0, 1), (1, 0), (2, 2), (1, 2)])?;
    /// // (1,0) duplicates (0,1); (2,2) is a self-loop: both are ignored.
    /// assert_eq!(g.edge_count(), 2);
    /// # Ok::<(), dkcore_graph::GraphError>(())
    /// ```
    pub fn from_edges<I>(node_count: usize, edges: I) -> Result<Graph, GraphError>
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut builder = GraphBuilder::new(node_count)?;
        for (u, v) in edges {
            builder.add_edge_checked(u, v)?;
        }
        Ok(builder.build())
    }

    /// Constructs the CSR arrays directly; used by [`GraphBuilder::build`].
    pub(crate) fn from_csr(offsets: Vec<usize>, targets: Vec<NodeId>) -> Graph {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap(), targets.len());
        Graph { offsets, targets }
    }

    /// Number of nodes `N = |V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `M = |E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// Degree of node `u` — the size of `neighborV(u)` in the paper's
    /// notation.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn degree(&self, u: NodeId) -> u32 {
        (self.offsets[u.index() + 1] - self.offsets[u.index()]) as u32
    }

    /// Sorted slice of neighbors of `u` (`neighborV(u)` in the paper).
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    #[inline]
    pub fn neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.targets[self.offsets[u.index()]..self.offsets[u.index() + 1]]
    }

    /// Whether the undirected edge `{u, v}` exists.
    ///
    /// Runs in `O(log degree(u))` thanks to sorted adjacency lists.
    ///
    /// # Panics
    ///
    /// Panics if `u` is out of range.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all node identifiers `0..N`.
    ///
    /// # Example
    ///
    /// ```
    /// use dkcore_graph::Graph;
    ///
    /// let g = Graph::from_edges(3, [(0, 1)])?;
    /// let ids: Vec<u32> = g.nodes().map(|u| u.0).collect();
    /// assert_eq!(ids, vec![0, 1, 2]);
    /// # Ok::<(), dkcore_graph::GraphError>(())
    /// ```
    pub fn nodes(&self) -> impl ExactSizeIterator<Item = NodeId> + use<> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterator over undirected edges, each reported once with `u < v`.
    pub fn edges(&self) -> Edges<'_> {
        Edges {
            graph: self,
            u: 0,
            pos: 0,
        }
    }

    /// Iterator over the neighbors of `u`.
    ///
    /// Equivalent to `self.neighbors(u).iter().copied()` but named per the
    /// paper's `neighborV` function for readability at call sites.
    pub fn neighbors_iter(&self, u: NodeId) -> Neighbors<'_> {
        Neighbors {
            inner: self.neighbors(u).iter(),
        }
    }

    /// Degrees of all nodes, indexed by `NodeId::index`.
    pub fn degrees(&self) -> Vec<u32> {
        self.nodes().map(|u| self.degree(u)).collect()
    }

    /// Largest degree `Δ` in the graph, or 0 for an empty graph.
    pub fn max_degree(&self) -> u32 {
        self.nodes().map(|u| self.degree(u)).max().unwrap_or(0)
    }

    /// Average degree `2M / N`, or 0.0 for an empty graph.
    pub fn avg_degree(&self) -> f64 {
        if self.node_count() == 0 {
            0.0
        } else {
            self.targets.len() as f64 / self.node_count() as f64
        }
    }

    /// Subgraph induced by the nodes for which `keep` is `true`, together
    /// with the mapping from new node ids to original ids.
    ///
    /// # Panics
    ///
    /// Panics if `keep.len() != self.node_count()`.
    ///
    /// # Example
    ///
    /// ```
    /// use dkcore_graph::{Graph, NodeId};
    ///
    /// let g = Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])?;
    /// let keep = vec![true, true, true, false];
    /// let (sub, original) = g.induced_subgraph(&keep);
    /// assert_eq!(sub.node_count(), 3);
    /// assert_eq!(sub.edge_count(), 2); // 0-1 and 1-2 survive
    /// assert_eq!(original, vec![NodeId(0), NodeId(1), NodeId(2)]);
    /// # Ok::<(), dkcore_graph::GraphError>(())
    /// ```
    pub fn induced_subgraph(&self, keep: &[bool]) -> (Graph, Vec<NodeId>) {
        assert_eq!(
            keep.len(),
            self.node_count(),
            "keep mask length must equal node count"
        );
        let mut new_id = vec![u32::MAX; self.node_count()];
        let mut original = Vec::new();
        for u in self.nodes() {
            if keep[u.index()] {
                new_id[u.index()] = original.len() as u32;
                original.push(u);
            }
        }
        let mut builder =
            GraphBuilder::new(original.len()).expect("subgraph cannot exceed u32 nodes");
        for (u, v) in self.edges() {
            if keep[u.index()] && keep[v.index()] {
                builder.add_edge(NodeId(new_id[u.index()]), NodeId(new_id[v.index()]));
            }
        }
        (builder.build(), original)
    }

    /// Total number of directed arcs (`2M`); the length of the CSR target
    /// array. Exposed because the message-complexity bound of the paper's
    /// Corollary 2 is naturally expressed in directed arcs.
    #[inline]
    pub fn arc_count(&self) -> usize {
        self.targets.len()
    }
}

/// Iterator over undirected edges of a [`Graph`], each reported once with
/// `u < v`. Created by [`Graph::edges`].
#[derive(Debug, Clone)]
pub struct Edges<'a> {
    graph: &'a Graph,
    u: u32,
    pos: usize,
}

impl Iterator for Edges<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<Self::Item> {
        let n = self.graph.node_count() as u32;
        while self.u < n {
            let u = NodeId(self.u);
            let nbrs = self.graph.neighbors(u);
            while self.pos < nbrs.len() {
                let v = nbrs[self.pos];
                self.pos += 1;
                if u < v {
                    return Some((u, v));
                }
            }
            self.u += 1;
            self.pos = 0;
        }
        None
    }
}

/// Iterator over the neighbors of one node. Created by
/// [`Graph::neighbors_iter`].
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    inner: std::slice::Iter<'a, NodeId>,
}

impl Iterator for Neighbors<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<Self::Item> {
        self.inner.next().copied()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Graph {
        // Figure 1-like small graph: a triangle 0-1-2 with a pendant 3 on 0.
        Graph::from_edges(4, [(0, 1), (1, 2), (2, 0), (0, 3)]).unwrap()
    }

    #[test]
    fn counts() {
        let g = sample();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.arc_count(), 8);
    }

    #[test]
    fn neighbors_sorted_and_symmetric() {
        let g = sample();
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(3)]);
        for u in g.nodes() {
            for &v in g.neighbors(u) {
                assert!(g.has_edge(v, u), "missing reverse arc {v}->{u}");
            }
        }
    }

    #[test]
    fn degrees_and_extremes() {
        let g = sample();
        assert_eq!(g.degrees(), vec![3, 2, 2, 1]);
        assert_eq!(g.max_degree(), 3);
        assert!((g.avg_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn self_loops_and_duplicates_removed() {
        let g = Graph::from_edges(3, [(0, 0), (0, 1), (1, 0), (0, 1)]).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.degree(NodeId(0)), 1);
    }

    #[test]
    fn out_of_range_edge_rejected() {
        let err = Graph::from_edges(2, [(0, 5)]).unwrap_err();
        assert!(matches!(
            err,
            GraphError::NodeOutOfRange {
                node: 5,
                node_count: 2
            }
        ));
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let g = sample();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(
            edges,
            vec![
                (NodeId(0), NodeId(1)),
                (NodeId(0), NodeId(2)),
                (NodeId(0), NodeId(3)),
                (NodeId(1), NodeId(2)),
            ]
        );
    }

    #[test]
    fn neighbors_iter_matches_slice() {
        let g = sample();
        let via_iter: Vec<_> = g.neighbors_iter(NodeId(0)).collect();
        assert_eq!(via_iter.as_slice(), g.neighbors(NodeId(0)));
        assert_eq!(g.neighbors_iter(NodeId(0)).len(), 3);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, []).unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn isolated_nodes_have_empty_neighborhoods() {
        let g = Graph::from_edges(3, []).unwrap();
        for u in g.nodes() {
            assert!(g.neighbors(u).is_empty());
        }
    }

    #[test]
    fn induced_subgraph_keeps_internal_edges_only() {
        let g = sample();
        let (sub, original) = g.induced_subgraph(&[true, true, true, false]);
        assert_eq!(sub.node_count(), 3);
        assert_eq!(sub.edge_count(), 3); // triangle survives
        assert_eq!(original, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn induced_subgraph_empty_mask() {
        let g = sample();
        let (sub, original) = g.induced_subgraph(&[false; 4]);
        assert_eq!(sub.node_count(), 0);
        assert!(original.is_empty());
    }

    #[test]
    #[should_panic(expected = "keep mask length")]
    fn induced_subgraph_bad_mask_panics() {
        let g = sample();
        let _ = g.induced_subgraph(&[true]);
    }

    #[test]
    fn clone_eq_debug() {
        let g = sample();
        let h = g.clone();
        assert_eq!(g, h);
        assert!(!format!("{g:?}").is_empty());
    }
}
