//! Seeded synthetic graph generators.
//!
//! Two families live here:
//!
//! * **Workload generators** standing in for the SNAP datasets of the
//!   paper's Table 1 — [`gnp`], [`gnm`], [`barabasi_albert`],
//!   [`watts_strogatz`], [`rmat`], [`planted_partition`], [`grid`],
//!   [`with_pendant_chains`];
//! * **Theory fixtures** from §4 of the paper — [`worst_case`] (the
//!   Figure 3 family whose synchronous execution time is exactly `N − 1`
//!   rounds), [`path`] (the `⌈N/2⌉`-round linear chain), [`cycle`],
//!   [`complete`], [`star`], [`random_tree`].
//!
//! All generators take an explicit `seed` where randomness is involved, so
//! every experiment in the workspace is reproducible.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::{Graph, GraphBuilder, NodeId};

fn builder(n: usize) -> GraphBuilder {
    GraphBuilder::new(n).expect("generator node count exceeds u32")
}

/// Erdős–Rényi `G(n, p)` random graph: every pair is an edge independently
/// with probability `p`.
///
/// Uses geometric edge skipping, so generation is `O(n + m)` rather than
/// `O(n²)` for sparse graphs.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]`.
///
/// # Example
///
/// ```
/// use dkcore_graph::generators::gnp;
///
/// let g = gnp(100, 0.05, 42);
/// assert_eq!(g.node_count(), 100);
/// // Expected edge count is C(100,2) * 0.05 ≈ 247; allow generous slack.
/// assert!(g.edge_count() > 120 && g.edge_count() < 400);
/// ```
pub fn gnp(n: usize, p: f64, seed: u64) -> Graph {
    assert!(
        (0.0..=1.0).contains(&p),
        "edge probability must be in [0, 1]"
    );
    let mut b = builder(n);
    if n == 0 || p == 0.0 {
        return b.build();
    }
    if p >= 1.0 {
        return complete(n);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    // Batagelj–Brandes skip sampling over the strictly-lower-triangular
    // pair enumeration.
    let log_1p = (1.0 - p).ln();
    let mut v: i64 = 1;
    let mut w: i64 = -1;
    let n_i = n as i64;
    while v < n_i {
        let r: f64 = rng.random_range(0.0..1.0);
        w += 1 + ((1.0 - r).ln() / log_1p) as i64;
        while w >= v && v < n_i {
            w -= v;
            v += 1;
        }
        if v < n_i {
            b.add_edge(NodeId(w as u32), NodeId(v as u32));
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)` random graph: exactly `m` distinct edges chosen
/// uniformly among all pairs.
///
/// # Panics
///
/// Panics if `m` exceeds the number of distinct pairs `n(n-1)/2`.
///
/// # Example
///
/// ```
/// use dkcore_graph::generators::gnm;
///
/// let g = gnm(50, 100, 7);
/// assert_eq!(g.node_count(), 50);
/// assert_eq!(g.edge_count(), 100);
/// ```
pub fn gnm(n: usize, m: usize, seed: u64) -> Graph {
    let max_edges = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(
        m <= max_edges,
        "requested {m} edges but only {max_edges} pairs exist"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = builder(n);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    while seen.len() < m {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            b.add_edge(NodeId(key.0), NodeId(key.1));
        }
    }
    b.build()
}

/// Barabási–Albert preferential-attachment graph: starts from a clique of
/// `m0 = m` nodes and attaches each new node to `m` existing nodes chosen
/// proportionally to degree.
///
/// Produces the heavy-tailed degree distributions typical of the paper's
/// collaboration and social datasets (CA-AstroPh, soc-Slashdot, …).
///
/// # Panics
///
/// Panics if `m == 0` or `n < m`.
///
/// # Example
///
/// ```
/// use dkcore_graph::generators::barabasi_albert;
///
/// let g = barabasi_albert(500, 3, 1);
/// assert_eq!(g.node_count(), 500);
/// // Hubs emerge: the max degree greatly exceeds the attachment count.
/// assert!(g.max_degree() > 10);
/// ```
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> Graph {
    assert!(m > 0, "attachment count m must be positive");
    assert!(n >= m, "need at least m nodes");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = builder(n);
    // `targets` holds one entry per half-edge endpoint: sampling uniformly
    // from it is sampling proportionally to degree.
    let mut endpoint_pool: Vec<u32> = Vec::with_capacity(4 * n * m.max(1));
    // Seed clique among the first m nodes (a single node when m == 1).
    for u in 0..m as u32 {
        for v in (u + 1)..m as u32 {
            b.add_edge(NodeId(u), NodeId(v));
            endpoint_pool.push(u);
            endpoint_pool.push(v);
        }
    }
    if m == 1 && n > 1 {
        // No seed edges exist yet; bootstrap by linking node 1 to node 0.
        b.add_edge(NodeId(0), NodeId(1));
        endpoint_pool.push(0);
        endpoint_pool.push(1);
    }
    let start = if m == 1 { 2 } else { m };
    for u in start..n {
        // A Vec keeps insertion order deterministic (HashSet iteration
        // order would leak nondeterminism into the endpoint pool and make
        // same-seed runs diverge); m is small, so `contains` is cheap.
        let mut chosen: Vec<u32> = Vec::with_capacity(m);
        let mut guard = 0;
        while chosen.len() < m && guard < 100 * m {
            let v = endpoint_pool[rng.random_range(0..endpoint_pool.len())];
            if v as usize != u && !chosen.contains(&v) {
                chosen.push(v);
            }
            guard += 1;
        }
        // Degenerate fallback (tiny pools): connect to first nodes.
        let mut fill = 0u32;
        while chosen.len() < m {
            if (fill as usize) != u && !chosen.contains(&fill) {
                chosen.push(fill);
            }
            fill += 1;
        }
        for v in chosen {
            b.add_edge(NodeId(u as u32), NodeId(v));
            endpoint_pool.push(u as u32);
            endpoint_pool.push(v);
        }
    }
    b.build()
}

/// Watts–Strogatz small-world graph: a ring lattice where each node links
/// to its `k/2` nearest neighbors on each side, then each edge is rewired
/// with probability `beta`.
///
/// # Panics
///
/// Panics if `k` is odd, `k >= n`, or `beta` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use dkcore_graph::generators::watts_strogatz;
///
/// let g = watts_strogatz(100, 4, 0.1, 3);
/// assert_eq!(g.node_count(), 100);
/// assert!(g.edge_count() <= 200); // rewiring can collide, never add
/// ```
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(k.is_multiple_of(2), "lattice degree k must be even");
    assert!(k < n, "lattice degree k must be smaller than n");
    assert!(
        (0.0..=1.0).contains(&beta),
        "rewiring probability must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = builder(n);
    for u in 0..n {
        for j in 1..=(k / 2) {
            let v = (u + j) % n;
            if rng.random_bool(beta) {
                // Rewire the far endpoint uniformly.
                let w = rng.random_range(0..n as u32);
                b.add_edge(NodeId(u as u32), NodeId(w));
            } else {
                b.add_edge(NodeId(u as u32), NodeId(v as u32));
            }
        }
    }
    b.build()
}

/// R-MAT recursive-matrix graph (Chakrabarti et al.), the standard model
/// for web-crawl-like graphs: `2^scale` nodes, `edge_count` sampled edges,
/// quadrant probabilities `(a, b, c)` with `d = 1 - a - b - c`.
///
/// Used as the structural stand-in for the paper's web-BerkStan dataset
/// (combined with [`with_pendant_chains`] to reproduce its "deep pages").
///
/// # Panics
///
/// Panics if the probabilities are negative or sum above 1.
///
/// # Example
///
/// ```
/// use dkcore_graph::generators::rmat;
///
/// let g = rmat(10, 5_000, (0.57, 0.19, 0.19), 11);
/// assert_eq!(g.node_count(), 1024);
/// assert!(g.edge_count() > 3_000); // some duplicates collapse
/// ```
pub fn rmat(scale: u32, edge_count: usize, (a, b, c): (f64, f64, f64), seed: u64) -> Graph {
    assert!(
        a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c <= 1.0 + 1e-9,
        "rmat probabilities must be non-negative and sum to at most 1"
    );
    let n = 1usize << scale;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = builder(n);
    for _ in 0..edge_count {
        let (mut u, mut v) = (0usize, 0usize);
        let mut span = n / 2;
        while span >= 1 {
            let r: f64 = rng.random_range(0.0..1.0);
            if r < a {
                // top-left: no change
            } else if r < a + b {
                v += span;
            } else if r < a + b + c {
                u += span;
            } else {
                u += span;
                v += span;
            }
            span /= 2;
        }
        if u != v {
            g.add_edge(NodeId(u as u32), NodeId(v as u32));
        }
    }
    g.build()
}

/// Planted-partition (stochastic block) graph: `communities` equal-size
/// groups; intra-community edges with probability `p_in`, inter-community
/// with `p_out`.
///
/// Stand-in for the paper's Amazon co-purchase graph, whose community
/// structure drives its moderate coreness values.
///
/// # Panics
///
/// Panics if `communities == 0` or a probability is outside `[0, 1]`.
pub fn planted_partition(n: usize, communities: usize, p_in: f64, p_out: f64, seed: u64) -> Graph {
    assert!(communities > 0, "need at least one community");
    assert!(
        (0.0..=1.0).contains(&p_in) && (0.0..=1.0).contains(&p_out),
        "probabilities must be in [0, 1]"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = builder(n);
    // Sparse sampling: expected intra edges per community pair are small, so
    // use G(n,p)-style skip sampling per block would be ideal; given the
    // moderate sizes used in the harness, Bernoulli per candidate pair within
    // a community and skip sampling across communities keeps this fast
    // enough while staying simple.
    let community_of = |u: usize| u % communities;
    // Intra-community pairs.
    for c in 0..communities {
        let members: Vec<usize> = (0..n).filter(|&u| community_of(u) == c).collect();
        for i in 0..members.len() {
            for j in (i + 1)..members.len() {
                if rng.random_bool(p_in) {
                    b.add_edge(NodeId(members[i] as u32), NodeId(members[j] as u32));
                }
            }
        }
    }
    // Inter-community pairs via skip sampling over all pairs, filtered.
    if p_out > 0.0 {
        let log_1p = (1.0 - p_out).ln();
        let mut v: i64 = 1;
        let mut w: i64 = -1;
        let n_i = n as i64;
        while v < n_i {
            let r: f64 = rng.random_range(0.0..1.0);
            w += 1 + ((1.0 - r).ln() / log_1p) as i64;
            while w >= v && v < n_i {
                w -= v;
                v += 1;
            }
            if v < n_i && community_of(w as usize) != community_of(v as usize) {
                b.add_edge(NodeId(w as u32), NodeId(v as u32));
            }
        }
    }
    b.build()
}

/// Two-dimensional grid graph with `rows × cols` nodes, each connected to
/// its horizontal and vertical neighbors.
///
/// The high-diameter, low-degree stand-in for the paper's roadNet-TX
/// dataset (coreness ≤ 2 in a pure grid, ≤ 3 in the SNAP original).
///
/// # Example
///
/// ```
/// use dkcore_graph::generators::grid;
///
/// let g = grid(3, 4);
/// assert_eq!(g.node_count(), 12);
/// assert_eq!(g.edge_count(), 3 * 3 + 2 * 4); // 17
/// ```
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut b = builder(rows * cols);
    let id = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                b.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                b.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    b.build()
}

/// Grid with a fraction of extra random "shortcut" edges, making the
/// coreness landscape less uniform than a pure grid while keeping the
/// large diameter (closer to a real road network with loops).
pub fn grid_perturbed(rows: usize, cols: usize, extra_edges: usize, seed: u64) -> Graph {
    let n = rows * cols;
    let mut rng = StdRng::seed_from_u64(seed);
    let base = grid(rows, cols);
    let mut b = builder(n);
    for (u, v) in base.edges() {
        b.add_edge(u, v);
    }
    let mut added = 0;
    while added < extra_edges {
        let u = rng.random_range(0..n as u32);
        let v = rng.random_range(0..n as u32);
        if u != v {
            b.add_edge(NodeId(u), NodeId(v));
            added += 1;
        }
    }
    b.build()
}

/// Attaches `chains` pendant paths of length `chain_len` to random nodes of
/// `base`; returns the combined graph.
///
/// Models the "deep pages very far away from the highest cores" that the
/// paper blames for web-BerkStan's slow 1-core convergence (§5.1, Table 2
/// discussion).
pub fn with_pendant_chains(base: &Graph, chains: usize, chain_len: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n0 = base.node_count();
    let n = n0 + chains * chain_len;
    let mut b = builder(n);
    for (u, v) in base.edges() {
        b.add_edge(u, v);
    }
    let mut next = n0 as u32;
    for _ in 0..chains {
        let mut anchor = NodeId(rng.random_range(0..n0 as u32));
        for _ in 0..chain_len {
            let fresh = NodeId(next);
            next += 1;
            b.add_edge(anchor, fresh);
            anchor = fresh;
        }
    }
    b.build()
}

/// Path graph `0 — 1 — … — n-1`.
///
/// The paper notes (§4.2) that the linear chain of size `N` converges in
/// `⌈N/2⌉` synchronous rounds.
pub fn path(n: usize) -> Graph {
    let mut b = builder(n);
    for u in 1..n {
        b.add_edge(NodeId((u - 1) as u32), NodeId(u as u32));
    }
    b.build()
}

/// Cycle graph on `n` nodes.
///
/// # Panics
///
/// Panics if `n` is 1 or 2 (a simple cycle needs at least 3 nodes);
/// `n == 0` yields the empty graph.
pub fn cycle(n: usize) -> Graph {
    if n == 0 {
        return builder(0).build();
    }
    assert!(n >= 3, "a simple cycle needs at least 3 nodes");
    let mut b = builder(n);
    for u in 0..n {
        b.add_edge(NodeId(u as u32), NodeId(((u + 1) % n) as u32));
    }
    b.build()
}

/// Complete graph `K_n`: every node has coreness `n − 1`.
pub fn complete(n: usize) -> Graph {
    let mut b = builder(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            b.add_edge(NodeId(u), NodeId(v));
        }
    }
    b.build()
}

/// Star graph: node 0 is the hub, nodes `1..n` are leaves.
pub fn star(n: usize) -> Graph {
    let mut b = builder(n);
    for u in 1..n as u32 {
        b.add_edge(NodeId(0), NodeId(u));
    }
    b.build()
}

/// Uniform random recursive tree: node `u` attaches to a uniformly random
/// earlier node. All coreness values are 1.
pub fn random_tree(n: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = builder(n);
    for u in 1..n {
        let parent = rng.random_range(0..u as u32);
        b.add_edge(NodeId(u as u32), NodeId(parent));
    }
    b.build()
}

/// The worst-case family of the paper's Figure 3, on which the synchronous
/// execution time is exactly `N − 1` rounds (for `N ≥ 5`).
///
/// Construction rules (§4.2, nodes numbered `1..=N` in the paper, shifted
/// to `0..N` here):
///
/// * node `N` is connected to all nodes except node `N − 3`;
/// * each node `i = 1 … N−2` is connected to its successor `i + 1`;
/// * node `N − 3` is also connected to node `N − 1`.
///
/// Every node has degree 3, except the hub (`N`, degree `N − 2`) and the
/// trigger node 1 (degree 2). All coreness values are 2, yet convergence
/// takes `N − 1` rounds while the diameter stays 3 — the paper's example
/// showing execution time is not governed by diameter.
///
/// # Panics
///
/// Panics if `n < 5`.
///
/// # Example
///
/// ```
/// use dkcore_graph::generators::worst_case;
///
/// let g = worst_case(12); // the exact graph drawn in the paper's Figure 3
/// assert_eq!(g.node_count(), 12);
/// assert_eq!(g.degree(dkcore_graph::NodeId(11)), 10); // hub: N - 2
/// assert_eq!(g.degree(dkcore_graph::NodeId(0)), 2);   // trigger node
/// ```
pub fn worst_case(n: usize) -> Graph {
    assert!(n >= 5, "the worst-case family is defined for N >= 5");
    let mut b = builder(n);
    // Paper node j (1-based) is NodeId(j - 1).
    let id = |j: usize| NodeId((j - 1) as u32);
    let hub = n;
    for j in 1..n {
        if j != n - 3 {
            b.add_edge(id(hub), id(j));
        }
    }
    for j in 1..=(n - 2) {
        b.add_edge(id(j), id(j + 1));
    }
    b.add_edge(id(n - 3), id(n - 1));
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnp_determinism_and_bounds() {
        let a = gnp(200, 0.02, 9);
        let b = gnp(200, 0.02, 9);
        assert_eq!(a, b, "same seed must give the same graph");
        let c = gnp(200, 0.02, 10);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 1).edge_count(), 0);
        assert_eq!(gnp(10, 1.0, 1).edge_count(), 45);
        assert_eq!(gnp(0, 0.5, 1).node_count(), 0);
    }

    #[test]
    fn gnp_density_close_to_expectation() {
        let n = 1000;
        let p = 0.01;
        let g = gnp(n, p, 123);
        let expected = (n * (n - 1) / 2) as f64 * p;
        let actual = g.edge_count() as f64;
        assert!(
            (actual - expected).abs() < 0.15 * expected,
            "edge count {actual} too far from expectation {expected}"
        );
    }

    #[test]
    fn gnm_exact_edge_count() {
        for (n, m) in [(10, 0), (10, 45), (100, 500)] {
            assert_eq!(gnm(n, m, 5).edge_count(), m);
        }
    }

    #[test]
    #[should_panic(expected = "pairs exist")]
    fn gnm_too_many_edges_panics() {
        let _ = gnm(4, 7, 0);
    }

    #[test]
    fn ba_node_and_hub_structure() {
        let g = barabasi_albert(300, 2, 77);
        assert_eq!(g.node_count(), 300);
        // Every non-seed node contributes >= m edges (dedup can only merge
        // the seed clique); allow slack for collisions.
        assert!(g.edge_count() >= 2 * (300 - 2) - 10);
        assert!(g.max_degree() >= 10, "BA should grow hubs");
    }

    #[test]
    fn ba_m1_is_tree_like() {
        let g = barabasi_albert(50, 1, 3);
        assert_eq!(g.node_count(), 50);
        assert_eq!(g.edge_count(), 49);
    }

    #[test]
    fn ws_ring_structure_no_rewiring() {
        let g = watts_strogatz(20, 4, 0.0, 0);
        assert_eq!(g.edge_count(), 40);
        // Pure lattice: node 0 is adjacent to 1, 2, 18, 19.
        let nbrs = g.neighbors(NodeId(0));
        assert_eq!(nbrs, &[NodeId(1), NodeId(2), NodeId(18), NodeId(19)]);
    }

    #[test]
    fn rmat_is_seed_deterministic() {
        assert_eq!(
            rmat(8, 1000, (0.57, 0.19, 0.19), 4),
            rmat(8, 1000, (0.57, 0.19, 0.19), 4)
        );
    }

    #[test]
    fn planted_partition_intra_denser_than_inter() {
        let g = planted_partition(200, 4, 0.2, 0.005, 8);
        let mut intra = 0usize;
        let mut inter = 0usize;
        for (u, v) in g.edges() {
            if u.index() % 4 == v.index() % 4 {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > inter, "intra {intra} should dominate inter {inter}");
    }

    #[test]
    fn grid_edge_count_formula() {
        for (r, c) in [(1, 1), (1, 5), (4, 4), (3, 7)] {
            let g = grid(r, c);
            assert_eq!(g.node_count(), r * c);
            assert_eq!(
                g.edge_count(),
                r * (c.saturating_sub(1)) + c * (r.saturating_sub(1))
            );
        }
    }

    #[test]
    fn grid_perturbed_has_extra_edges() {
        let g = grid_perturbed(10, 10, 30, 2);
        assert!(g.edge_count() > grid(10, 10).edge_count());
        assert!(g.edge_count() <= grid(10, 10).edge_count() + 30);
    }

    #[test]
    fn pendant_chains_extend_graph() {
        let base = complete(5);
        let g = with_pendant_chains(&base, 3, 4, 1);
        assert_eq!(g.node_count(), 5 + 12);
        assert_eq!(g.edge_count(), base.edge_count() + 12);
    }

    #[test]
    fn path_cycle_star_complete_shapes() {
        assert_eq!(path(6).edge_count(), 5);
        assert_eq!(cycle(6).edge_count(), 6);
        assert_eq!(star(6).edge_count(), 5);
        assert_eq!(complete(6).edge_count(), 15);
        assert_eq!(path(0).node_count(), 0);
        assert_eq!(cycle(0).node_count(), 0);
    }

    #[test]
    fn random_tree_is_tree() {
        let g = random_tree(100, 5);
        assert_eq!(g.edge_count(), 99);
    }

    #[test]
    fn worst_case_matches_paper_figure3() {
        // N = 12, as drawn in the paper.
        let g = worst_case(12);
        assert_eq!(g.node_count(), 12);
        // Degrees: hub N-2 = 10; node 1 has 2; everyone else 3.
        let mut degs = g.degrees();
        assert_eq!(degs[11], 10, "hub degree must be N - 2");
        assert_eq!(degs[0], 2, "trigger node degree must be 2");
        degs.sort_unstable();
        assert_eq!(&degs[1..11], &[3; 10], "all other nodes have degree 3");
        // Hub is NOT connected to node N-3 (paper numbering) = NodeId(8).
        assert!(!g.has_edge(NodeId(11), NodeId(8)));
        // Extra edge (N-3, N-1) = (9, 11) paper = (8, 10) zero-based.
        assert!(g.has_edge(NodeId(8), NodeId(10)));
    }

    #[test]
    fn worst_case_various_sizes() {
        for n in [5, 6, 9, 20, 33] {
            let g = worst_case(n);
            assert_eq!(g.node_count(), n);
            assert_eq!(g.degree(NodeId((n - 1) as u32)), (n - 2) as u32);
        }
    }

    #[test]
    #[should_panic(expected = "N >= 5")]
    fn worst_case_too_small_panics() {
        let _ = worst_case(4);
    }
}
