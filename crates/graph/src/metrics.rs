//! Structural graph metrics: connected components, BFS distances,
//! eccentricities, exact and approximate diameters, degree histograms.
//!
//! These produce the left half of the paper's Table 1 (`|V|`, `|E|`,
//! diameter, `d_max`) for the dataset analogs.

use std::collections::VecDeque;

use crate::{Graph, NodeId};

/// Distance value for unreachable nodes in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Breadth-first distances from `src` to every node.
///
/// Unreachable nodes get [`UNREACHABLE`].
///
/// # Panics
///
/// Panics if `src` is out of range.
///
/// # Example
///
/// ```
/// use dkcore_graph::{generators::path, metrics::bfs_distances, NodeId};
///
/// let g = path(4);
/// assert_eq!(bfs_distances(&g, NodeId(0)), vec![0, 1, 2, 3]);
/// ```
pub fn bfs_distances(g: &Graph, src: NodeId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.node_count()];
    let mut queue = VecDeque::new();
    dist[src.index()] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.index()];
        for &v in g.neighbors(u) {
            if dist[v.index()] == UNREACHABLE {
                dist[v.index()] = du + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}

/// Connected components: returns `(component_count, labels)` where
/// `labels[u]` is the 0-based component index of node `u`.
///
/// # Example
///
/// ```
/// use dkcore_graph::{Graph, metrics::connected_components};
///
/// let g = Graph::from_edges(5, [(0, 1), (2, 3)])?;
/// let (count, labels) = connected_components(&g);
/// assert_eq!(count, 3); // {0,1}, {2,3}, {4}
/// assert_eq!(labels[0], labels[1]);
/// assert_ne!(labels[0], labels[2]);
/// # Ok::<(), dkcore_graph::GraphError>(())
/// ```
pub fn connected_components(g: &Graph) -> (usize, Vec<u32>) {
    let n = g.node_count();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in g.nodes() {
        if labels[start.index()] != u32::MAX {
            continue;
        }
        labels[start.index()] = count;
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for &v in g.neighbors(u) {
                if labels[v.index()] == u32::MAX {
                    labels[v.index()] = count;
                    queue.push_back(v);
                }
            }
        }
        count += 1;
    }
    (count as usize, labels)
}

/// Largest connected component as an induced subgraph, with the mapping
/// back to original node ids. Returns the empty graph for an empty input.
pub fn largest_component(g: &Graph) -> (Graph, Vec<NodeId>) {
    let (count, labels) = connected_components(g);
    if count == 0 {
        return (Graph::from_edges(0, []).expect("empty graph"), Vec::new());
    }
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let biggest = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, _)| i as u32)
        .expect("at least one component");
    let keep: Vec<bool> = labels.iter().map(|&l| l == biggest).collect();
    g.induced_subgraph(&keep)
}

/// Eccentricity of `src` within its connected component: the greatest BFS
/// distance to any reachable node.
pub fn eccentricity(g: &Graph, src: NodeId) -> u32 {
    bfs_distances(g, src)
        .into_iter()
        .filter(|&d| d != UNREACHABLE)
        .max()
        .unwrap_or(0)
}

/// Exact diameter of the largest connected component, by running a BFS from
/// every node of that component. `O(N·M)` — use only on small graphs; the
/// harness uses [`approx_diameter`] for dataset-scale graphs.
pub fn exact_diameter(g: &Graph) -> u32 {
    let (lcc, _) = largest_component(g);
    lcc.nodes()
        .map(|u| eccentricity(&lcc, u))
        .max()
        .unwrap_or(0)
}

/// Double-sweep lower bound on the diameter of the largest component:
/// repeatedly BFS from the farthest node found so far. With `sweeps` ≥ 2
/// this matches the exact diameter on most real-world graphs and is the
/// standard technique for Table-1-style diameter columns.
///
/// # Example
///
/// ```
/// use dkcore_graph::{generators::path, metrics::approx_diameter};
///
/// assert_eq!(approx_diameter(&path(100), 2), 99);
/// ```
pub fn approx_diameter(g: &Graph, sweeps: usize) -> u32 {
    let (lcc, _) = largest_component(g);
    if lcc.node_count() == 0 {
        return 0;
    }
    // Start from a max-degree node: a good heuristic seed.
    let mut src = lcc
        .nodes()
        .max_by_key(|&u| lcc.degree(u))
        .expect("non-empty component");
    let mut best = 0u32;
    for _ in 0..sweeps.max(1) {
        let dist = bfs_distances(&lcc, src);
        let (far, d) = dist
            .iter()
            .enumerate()
            .filter(|&(_, &d)| d != UNREACHABLE)
            .max_by_key(|&(_, &d)| d)
            .map(|(i, &d)| (NodeId::from_index(i), d))
            .expect("component is non-empty");
        if d <= best {
            break;
        }
        best = d;
        src = far;
    }
    best
}

/// Histogram of node degrees: `hist[d]` is the number of nodes with degree
/// `d`. The vector has length `max_degree + 1` (or 0 for an empty graph).
pub fn degree_histogram(g: &Graph) -> Vec<usize> {
    if g.node_count() == 0 {
        return Vec::new();
    }
    let mut hist = vec![0usize; g.max_degree() as usize + 1];
    for u in g.nodes() {
        hist[g.degree(u) as usize] += 1;
    }
    hist
}

/// Number of nodes having the minimal degree of the graph — the `K` of the
/// paper's Corollary 1 (execution time ≤ `N − K + 1`).
pub fn min_degree_count(g: &Graph) -> usize {
    let degs = g.degrees();
    match degs.iter().min() {
        None => 0,
        Some(&min) => degs.iter().filter(|&&d| d == min).count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, cycle, gnp, grid, path, star, worst_case};

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        assert_eq!(bfs_distances(&g, NodeId(2)), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn bfs_unreachable() {
        let g = Graph::from_edges(4, [(0, 1)]).unwrap();
        let d = bfs_distances(&g, NodeId(0));
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn components_of_disconnected_graph() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]).unwrap();
        let (count, labels) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[2]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[5]);
    }

    #[test]
    fn components_empty_and_connected() {
        assert_eq!(
            connected_components(&Graph::from_edges(0, []).unwrap()).0,
            0
        );
        assert_eq!(connected_components(&complete(5)).0, 1);
    }

    #[test]
    fn largest_component_picks_biggest() {
        let g = Graph::from_edges(7, [(0, 1), (1, 2), (2, 0), (3, 4)]).unwrap();
        let (lcc, original) = largest_component(&g);
        assert_eq!(lcc.node_count(), 3);
        assert_eq!(original, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn diameters_of_known_shapes() {
        assert_eq!(exact_diameter(&path(10)), 9);
        assert_eq!(exact_diameter(&cycle(10)), 5);
        assert_eq!(exact_diameter(&complete(10)), 1);
        assert_eq!(exact_diameter(&star(10)), 2);
        assert_eq!(exact_diameter(&grid(3, 3)), 4);
    }

    #[test]
    fn worst_case_diameter_is_three() {
        // The paper: "the diameter is 3, i.e., a constant regardless of N".
        for n in [8, 12, 30] {
            assert_eq!(exact_diameter(&worst_case(n)), 3, "N = {n}");
        }
    }

    #[test]
    fn approx_diameter_lower_bounds_exact() {
        for seed in 0..5 {
            let g = gnp(150, 0.03, seed);
            let approx = approx_diameter(&g, 4);
            let exact = exact_diameter(&g);
            assert!(approx <= exact);
            // Double sweep is usually exact on these; at minimum sanity-close.
            assert!(approx + 2 >= exact, "approx {approx} vs exact {exact}");
        }
    }

    #[test]
    fn approx_diameter_on_path_exact() {
        assert_eq!(approx_diameter(&path(57), 2), 56);
    }

    #[test]
    fn degree_histogram_star() {
        let h = degree_histogram(&star(5));
        assert_eq!(h[1], 4); // leaves
        assert_eq!(h[4], 1); // hub
        assert_eq!(h.iter().sum::<usize>(), 5);
    }

    #[test]
    fn degree_histogram_empty() {
        assert!(degree_histogram(&Graph::from_edges(0, []).unwrap()).is_empty());
    }

    #[test]
    fn min_degree_count_examples() {
        assert_eq!(min_degree_count(&path(5)), 2); // two endpoints of degree 1
        assert_eq!(min_degree_count(&complete(4)), 4); // all equal
        assert_eq!(min_degree_count(&worst_case(12)), 1); // the trigger node
        assert_eq!(min_degree_count(&Graph::from_edges(0, []).unwrap()), 0);
    }

    #[test]
    fn eccentricity_of_center_and_leaf() {
        let g = path(9);
        assert_eq!(eccentricity(&g, NodeId(4)), 4);
        assert_eq!(eccentricity(&g, NodeId(0)), 8);
    }
}
