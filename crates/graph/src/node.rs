use std::fmt;

/// Identifier of a graph node.
///
/// Node identifiers are dense integers in `0..Graph::node_count()`, matching
/// the paper's §3.2.2 assumption that "node identifiers are integers in the
/// range `[0 .. n-1]`". The newtype keeps node indices from being confused
/// with host indices, coreness values or round numbers in protocol code.
///
/// # Example
///
/// ```
/// use dkcore_graph::NodeId;
///
/// let u = NodeId(3);
/// assert_eq!(u.index(), 3);
/// assert_eq!(format!("{u}"), "3");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the identifier as a `usize`, for indexing per-node arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a [`NodeId`] from an array index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds `u32::MAX`; graphs in this workspace are
    /// bounded by `u32` node identifiers (4.2 billion nodes).
    #[inline]
    pub fn from_index(index: usize) -> Self {
        NodeId(u32::try_from(index).expect("node index exceeds u32::MAX"))
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NodeId({})", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(id: u32) -> Self {
        NodeId(id)
    }
}

impl From<NodeId> for u32 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for i in [0usize, 1, 7, 1024, u32::MAX as usize] {
            assert_eq!(NodeId::from_index(i).index(), i);
        }
    }

    #[test]
    fn display_is_bare_integer() {
        assert_eq!(NodeId(17).to_string(), "17");
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", NodeId(2)), "NodeId(2)");
    }

    #[test]
    fn conversions() {
        let u: NodeId = 5u32.into();
        assert_eq!(u, NodeId(5));
        let raw: u32 = u.into();
        assert_eq!(raw, 5);
    }

    #[test]
    fn ordering_follows_ids() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(NodeId::default(), NodeId(0));
    }

    #[test]
    #[should_panic(expected = "node index exceeds u32::MAX")]
    fn from_index_overflow_panics() {
        let _ = NodeId::from_index(u32::MAX as usize + 1);
    }
}
