use std::error::Error;
use std::fmt;
use std::io;

/// Error produced while constructing or parsing a graph.
///
/// # Example
///
/// ```
/// use dkcore_graph::{Graph, GraphError};
///
/// // Node 9 is out of range for a 3-node graph.
/// let err = Graph::from_edges(3, [(0, 9)]).unwrap_err();
/// assert!(matches!(err, GraphError::NodeOutOfRange { node: 9, node_count: 3 }));
/// ```
#[derive(Debug)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge endpoint does not fit in `0..node_count`.
    NodeOutOfRange {
        /// The offending node identifier.
        node: u32,
        /// The number of nodes declared for the graph.
        node_count: usize,
    },
    /// The declared node count exceeds the `u32` identifier space.
    TooManyNodes {
        /// The declared node count.
        node_count: usize,
    },
    /// An underlying I/O operation failed while reading or writing a graph.
    Io(io::Error),
    /// An edge-list line could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Description of what went wrong on that line.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, node_count } => {
                write!(
                    f,
                    "node {node} out of range for graph with {node_count} nodes"
                )
            }
            GraphError::TooManyNodes { node_count } => {
                write!(f, "node count {node_count} exceeds u32 identifier space")
            }
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl Error for GraphError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = GraphError::NodeOutOfRange {
            node: 4,
            node_count: 2,
        };
        assert_eq!(e.to_string(), "node 4 out of range for graph with 2 nodes");
        let e = GraphError::Parse {
            line: 3,
            message: "expected two fields".into(),
        };
        assert_eq!(e.to_string(), "parse error at line 3: expected two fields");
        let e = GraphError::TooManyNodes {
            node_count: usize::MAX,
        };
        assert!(e.to_string().contains("exceeds u32"));
    }

    #[test]
    fn io_error_source_is_preserved() {
        let inner = io::Error::new(io::ErrorKind::NotFound, "gone");
        let e = GraphError::from(inner);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("gone"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<GraphError>();
    }
}
