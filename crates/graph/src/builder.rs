use crate::{Graph, GraphError, NodeId};

/// Incremental builder for [`Graph`].
///
/// Edges may be added in any order; self-loops are silently dropped and
/// duplicate edges are merged at [`build`](GraphBuilder::build) time, so the
/// resulting graph is always simple. The builder is the right entry point
/// for generators and parsers; for literal edge lists prefer
/// [`Graph::from_edges`].
///
/// # Example
///
/// ```
/// use dkcore_graph::{GraphBuilder, NodeId};
///
/// let mut b = GraphBuilder::new(3)?;
/// b.add_edge(NodeId(0), NodeId(1));
/// b.add_edge(NodeId(1), NodeId(2));
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// # Ok::<(), dkcore_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    node_count: usize,
    /// Directed arc list; both directions are pushed per undirected edge.
    arcs: Vec<(u32, u32)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with exactly `node_count` nodes.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::TooManyNodes`] if `node_count` exceeds the
    /// `u32` identifier space.
    pub fn new(node_count: usize) -> Result<GraphBuilder, GraphError> {
        if node_count > u32::MAX as usize {
            return Err(GraphError::TooManyNodes { node_count });
        }
        Ok(GraphBuilder {
            node_count,
            arcs: Vec::new(),
        })
    }

    /// Number of nodes the built graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// Self-loops (`u == v`) are ignored.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range; use
    /// [`add_edge_checked`](GraphBuilder::add_edge_checked) for fallible
    /// insertion of untrusted input.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.add_edge_checked(u.0, v.0)
            .expect("edge endpoint out of range");
        self
    }

    /// Adds the undirected edge `{u, v}`, validating both endpoints.
    ///
    /// Self-loops (`u == v`) are ignored.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is
    /// `>= node_count`.
    pub fn add_edge_checked(&mut self, u: u32, v: u32) -> Result<&mut Self, GraphError> {
        let n = self.node_count;
        if (u as usize) >= n {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                node_count: n,
            });
        }
        if (v as usize) >= n {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                node_count: n,
            });
        }
        if u != v {
            self.arcs.push((u, v));
            self.arcs.push((v, u));
        }
        Ok(self)
    }

    /// Number of undirected edges added so far (before deduplication).
    pub fn pending_edges(&self) -> usize {
        self.arcs.len() / 2
    }

    /// Finalizes the CSR representation: counting sort of arcs by source,
    /// then per-node sort and deduplication of targets.
    pub fn build(self) -> Graph {
        let n = self.node_count;
        // Counting sort by source node.
        let mut counts = vec![0usize; n + 1];
        for &(u, _) in &self.arcs {
            counts[u as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let mut slots = counts.clone();
        let mut targets = vec![NodeId(0); self.arcs.len()];
        for &(u, v) in &self.arcs {
            targets[slots[u as usize]] = NodeId(v);
            slots[u as usize] += 1;
        }
        // Per-node sort + dedup, compacting in place.
        let mut offsets = vec![0usize; n + 1];
        let mut write = 0usize;
        for u in 0..n {
            let (start, end) = (counts[u], counts[u + 1]);
            let mut list: Vec<NodeId> = targets[start..end].to_vec();
            list.sort_unstable();
            list.dedup();
            offsets[u] = write;
            for v in list {
                targets[write] = v;
                write += 1;
            }
        }
        offsets[n] = write;
        targets.truncate(write);
        Graph::from_csr(offsets, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_roundtrip() {
        let mut b = GraphBuilder::new(5).unwrap();
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(3), NodeId(2));
        b.add_edge(NodeId(4), NodeId(0));
        assert_eq!(b.pending_edges(), 3);
        assert_eq!(b.node_count(), 5);
        let g = b.build();
        assert_eq!(g.edge_count(), 3);
        assert!(g.has_edge(NodeId(2), NodeId(3)));
    }

    #[test]
    fn duplicate_edges_merged_on_build() {
        let mut b = GraphBuilder::new(2).unwrap();
        for _ in 0..10 {
            b.add_edge(NodeId(0), NodeId(1));
        }
        assert_eq!(b.pending_edges(), 10);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_ignored() {
        let mut b = GraphBuilder::new(2).unwrap();
        b.add_edge(NodeId(1), NodeId(1));
        assert_eq!(b.pending_edges(), 0);
        assert_eq!(b.build().edge_count(), 0);
    }

    #[test]
    fn checked_rejects_out_of_range() {
        let mut b = GraphBuilder::new(2).unwrap();
        assert!(b.add_edge_checked(0, 2).is_err());
        assert!(b.add_edge_checked(7, 0).is_err());
        assert!(b.add_edge_checked(0, 1).is_ok());
    }

    #[test]
    #[should_panic(expected = "edge endpoint out of range")]
    fn unchecked_panics_out_of_range() {
        let mut b = GraphBuilder::new(1).unwrap();
        b.add_edge(NodeId(0), NodeId(1));
    }

    #[test]
    fn zero_node_builder() {
        let g = GraphBuilder::new(0).unwrap().build();
        assert_eq!(g.node_count(), 0);
    }

    #[test]
    fn too_many_nodes_rejected() {
        assert!(matches!(
            GraphBuilder::new(u32::MAX as usize + 1),
            Err(GraphError::TooManyNodes { .. })
        ));
    }

    #[test]
    fn adjacency_sorted_after_build() {
        let mut b = GraphBuilder::new(4).unwrap();
        b.add_edge(NodeId(0), NodeId(3));
        b.add_edge(NodeId(0), NodeId(1));
        b.add_edge(NodeId(0), NodeId(2));
        let g = b.build();
        assert_eq!(g.neighbors(NodeId(0)), &[NodeId(1), NodeId(2), NodeId(3)]);
    }
}
