//! Undirected graph substrate for the distributed k-core decomposition
//! reproduction (Montresor, De Pellegrini, Miorandi — PODC 2011).
//!
//! This crate provides everything the protocols and the evaluation harness
//! need from a graph library:
//!
//! * [`Graph`] — a compact, immutable CSR (compressed sparse row)
//!   representation of a simple undirected graph, built through
//!   [`GraphBuilder`];
//! * [`generators`] — seeded synthetic graph generators covering every
//!   workload class used in the paper's evaluation (random, scale-free,
//!   small-world, web-like, road-like, community graphs) plus the theory
//!   fixtures of §4 (the worst-case family of Figure 3, paths, cycles, …);
//! * [`io`] — reading and writing SNAP-style edge lists, the format of the
//!   Stanford Large Network Dataset collection used in the paper's §5;
//! * [`metrics`] — degrees, connected components, BFS, exact and
//!   double-sweep approximate diameters (the left half of the paper's
//!   Table 1).
//!
//! # Example
//!
//! ```
//! use dkcore_graph::{Graph, NodeId};
//!
//! // The 6-node path graph of the paper's Figure 2: 1-2-3-4-5-6
//! // (zero-based here).
//! let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)])?;
//! assert_eq!(g.node_count(), 6);
//! assert_eq!(g.edge_count(), 5);
//! assert_eq!(g.degree(NodeId(0)), 1);
//! assert_eq!(g.neighbors(NodeId(1)), &[NodeId(0), NodeId(2)]);
//! # Ok::<(), dkcore_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod graph;
mod node;

pub mod generators;
pub mod io;
pub mod metrics;

pub use builder::GraphBuilder;
pub use error::GraphError;
pub use graph::{Edges, Graph, Neighbors};
pub use node::NodeId;
