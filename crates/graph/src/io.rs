//! Reading and writing SNAP-style edge lists.
//!
//! The Stanford Large Network Dataset collection (the source of every graph
//! in the paper's Table 1) distributes graphs as plain-text edge lists:
//! `#`-prefixed comment lines followed by one `u<TAB>v` (or
//! whitespace-separated) pair per line. [`read_edge_list`] accepts exactly
//! that format, so the original SNAP files can be dropped into the harness
//! unchanged; node identifiers are compacted to a dense `0..N` range.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{Graph, GraphBuilder, GraphError, NodeId};

/// Parses a SNAP-style edge list from any reader.
///
/// * Lines starting with `#` or `%` and blank lines are skipped.
/// * Each remaining line must contain two whitespace-separated integers.
/// * Raw identifiers may be arbitrary `u64`s (SNAP files are sparse); they
///   are re-mapped to dense ids in first-appearance order. The mapping is
///   returned alongside the graph.
/// * Duplicate edges (including the reverse-direction duplicates produced
///   by SNAP's directed listings) and self-loops are dropped, matching the
///   paper's §5 preprocessing.
///
/// Pass a `&mut` reference if you need the reader back afterwards.
///
/// # Errors
///
/// Returns [`GraphError::Io`] on read failures and [`GraphError::Parse`]
/// for malformed lines.
///
/// # Example
///
/// ```
/// use dkcore_graph::io::read_edge_list;
///
/// let text = "# sample graph\n10 20\n20 30\n10 20\n";
/// let (g, raw_ids) = read_edge_list(text.as_bytes())?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(raw_ids, vec![10, 20, 30]);
/// # Ok::<(), dkcore_graph::GraphError>(())
/// ```
pub fn read_edge_list<R: Read>(reader: R) -> Result<(Graph, Vec<u64>), GraphError> {
    let reader = BufReader::new(reader);
    let mut dense_of: HashMap<u64, u32> = HashMap::new();
    let mut raw_ids: Vec<u64> = Vec::new();
    let mut arcs: Vec<(u32, u32)> = Vec::new();
    let intern = |raw: u64, raw_ids: &mut Vec<u64>, dense_of: &mut HashMap<u64, u32>| {
        *dense_of.entry(raw).or_insert_with(|| {
            let id = raw_ids.len() as u32;
            raw_ids.push(raw);
            id
        })
    };
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let parse = |s: Option<&str>, lineno: usize| -> Result<u64, GraphError> {
            let s = s.ok_or_else(|| GraphError::Parse {
                line: lineno + 1,
                message: "expected two whitespace-separated node ids".into(),
            })?;
            s.parse::<u64>().map_err(|_| GraphError::Parse {
                line: lineno + 1,
                message: format!("invalid node id {s:?}"),
            })
        };
        let u = parse(fields.next(), lineno)?;
        let v = parse(fields.next(), lineno)?;
        if fields.next().is_some() {
            return Err(GraphError::Parse {
                line: lineno + 1,
                message: "expected exactly two fields".into(),
            });
        }
        let du = intern(u, &mut raw_ids, &mut dense_of);
        let dv = intern(v, &mut raw_ids, &mut dense_of);
        arcs.push((du, dv));
    }
    let mut builder = GraphBuilder::new(raw_ids.len())?;
    for (u, v) in arcs {
        builder.add_edge(NodeId(u), NodeId(v));
    }
    Ok((builder.build(), raw_ids))
}

/// Reads an edge list from a file path. See [`read_edge_list`].
///
/// # Errors
///
/// Returns [`GraphError::Io`] if the file cannot be opened or read, and
/// [`GraphError::Parse`] for malformed content.
pub fn read_edge_list_file<P: AsRef<Path>>(path: P) -> Result<(Graph, Vec<u64>), GraphError> {
    read_edge_list(File::open(path)?)
}

/// Writes a graph as a SNAP-style edge list (one `u\tv` line per undirected
/// edge, smaller endpoint first), preceded by a comment header.
///
/// Pass a `&mut` reference if you need the writer back afterwards.
///
/// # Errors
///
/// Returns [`GraphError::Io`] if writing fails.
///
/// # Example
///
/// ```
/// use dkcore_graph::{Graph, io::{read_edge_list, write_edge_list}};
///
/// let g = Graph::from_edges(3, [(0, 1), (1, 2)])?;
/// let mut buf = Vec::new();
/// write_edge_list(&g, &mut buf)?;
/// let (back, _) = read_edge_list(&buf[..])?;
/// assert_eq!(back.edge_count(), g.edge_count());
/// # Ok::<(), dkcore_graph::GraphError>(())
/// ```
pub fn write_edge_list<W: Write>(g: &Graph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# Undirected graph: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    )?;
    writeln!(w, "# FromNodeId\tToNodeId")?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes a graph to a file path. See [`write_edge_list`].
///
/// # Errors
///
/// Returns [`GraphError::Io`] if the file cannot be created or written.
pub fn write_edge_list_file<P: AsRef<Path>>(g: &Graph, path: P) -> Result<(), GraphError> {
    write_edge_list(g, File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::gnp;

    #[test]
    fn parses_comments_blanks_and_tabs() {
        let text = "# comment\n% also comment\n\n1\t2\n2 3\n  3   4  \n";
        let (g, raw) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(raw, vec![1, 2, 3, 4]);
    }

    #[test]
    fn directed_duplicates_collapse() {
        // SNAP lists both directions for undirected graphs.
        let text = "0 1\n1 0\n";
        let (g, _) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_dropped() {
        let (g, _) = read_edge_list("5 5\n5 6\n".as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn sparse_ids_are_compacted() {
        let (g, raw) = read_edge_list("1000000 2\n2 999\n".as_bytes()).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(raw, vec![1_000_000, 2, 999]);
    }

    #[test]
    fn malformed_lines_error_with_line_numbers() {
        let err = read_edge_list("0 1\nxyz 3\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 2);
                assert!(message.contains("xyz"));
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_field_errors() {
        let err = read_edge_list("42\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn extra_field_errors() {
        let err = read_edge_list("1 2 3\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let (g, raw) = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.node_count(), 0);
        assert!(raw.is_empty());
    }

    #[test]
    fn write_read_roundtrip_preserves_structure() {
        let g = gnp(80, 0.06, 33);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (back, _) = read_edge_list(&buf[..]).unwrap();
        assert_eq!(back.edge_count(), g.edge_count());
        // Node count can differ only if g had isolated nodes (not written);
        // compare the non-isolated count.
        let non_isolated = g.nodes().filter(|&u| g.degree(u) > 0).count();
        assert_eq!(back.node_count(), non_isolated);
    }

    #[test]
    fn file_roundtrip() {
        let g = gnp(30, 0.2, 9);
        let dir = std::env::temp_dir();
        let path = dir.join("dkcore_io_test_edge_list.txt");
        write_edge_list_file(&g, &path).unwrap();
        let (back, _) = read_edge_list_file(&path).unwrap();
        assert_eq!(back.edge_count(), g.edge_count());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_edge_list_file("/nonexistent/definitely/missing.txt").unwrap_err();
        assert!(matches!(err, GraphError::Io(_)));
    }
}
