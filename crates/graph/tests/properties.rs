//! Property-based tests for the graph substrate.

use dkcore_graph::{generators, metrics, Graph, NodeId};
use proptest::prelude::*;

/// Strategy: a random simple graph given as (node_count, edge endpoints).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..60).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..200);
        edges.prop_map(move |es| Graph::from_edges(n, es).expect("endpoints in range"))
    })
}

proptest! {
    /// CSR invariant: adjacency is symmetric, sorted, deduplicated, and
    /// free of self-loops.
    #[test]
    fn csr_invariants(g in arb_graph()) {
        for u in g.nodes() {
            let nbrs = g.neighbors(u);
            prop_assert!(nbrs.windows(2).all(|w| w[0] < w[1]), "sorted+dedup");
            prop_assert!(!nbrs.contains(&u), "no self-loop");
            for &v in nbrs {
                prop_assert!(g.has_edge(v, u), "symmetry");
            }
        }
    }

    /// Handshake lemma: sum of degrees equals twice the edge count.
    #[test]
    fn handshake_lemma(g in arb_graph()) {
        let total: u64 = g.degrees().iter().map(|&d| d as u64).sum();
        prop_assert_eq!(total, 2 * g.edge_count() as u64);
        prop_assert_eq!(g.arc_count(), 2 * g.edge_count());
    }

    /// The edges iterator reports each undirected edge exactly once.
    #[test]
    fn edges_iterator_consistent(g in arb_graph()) {
        let listed: Vec<_> = g.edges().collect();
        prop_assert_eq!(listed.len(), g.edge_count());
        for &(u, v) in &listed {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v));
        }
        let mut dedup = listed.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), listed.len());
    }

    /// Writing then reading an edge list preserves the edge set on the
    /// non-isolated nodes.
    #[test]
    fn io_roundtrip(g in arb_graph()) {
        let mut buf = Vec::new();
        dkcore_graph::io::write_edge_list(&g, &mut buf).unwrap();
        let (back, raw) = dkcore_graph::io::read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(back.edge_count(), g.edge_count());
        // Every original edge must exist in the reloaded graph, modulo the
        // id compaction recorded in `raw`.
        let dense_of: std::collections::HashMap<u64, u32> = raw
            .iter()
            .enumerate()
            .map(|(i, &r)| (r, i as u32))
            .collect();
        for (u, v) in g.edges() {
            let du = NodeId(dense_of[&(u.0 as u64)]);
            let dv = NodeId(dense_of[&(v.0 as u64)]);
            prop_assert!(back.has_edge(du, dv));
        }
    }

    /// Induced subgraph never invents edges and preserves kept ones.
    #[test]
    fn induced_subgraph_correct(g in arb_graph(), mask_seed in any::<u64>()) {
        let n = g.node_count();
        let keep: Vec<bool> = (0..n).map(|i| (mask_seed >> (i % 64)) & 1 == 1).collect();
        let (sub, original) = g.induced_subgraph(&keep);
        prop_assert_eq!(sub.node_count(), keep.iter().filter(|&&k| k).count());
        for (a, b) in sub.edges() {
            prop_assert!(g.has_edge(original[a.index()], original[b.index()]));
        }
        let expected = g
            .edges()
            .filter(|&(u, v)| keep[u.index()] && keep[v.index()])
            .count();
        prop_assert_eq!(sub.edge_count(), expected);
    }

    /// Connected components partition the node set and BFS stays within a
    /// component.
    #[test]
    fn components_partition(g in arb_graph()) {
        let (count, labels) = metrics::connected_components(&g);
        prop_assert!(labels.iter().all(|&l| (l as usize) < count));
        for u in g.nodes() {
            let dist = metrics::bfs_distances(&g, u);
            for v in g.nodes() {
                let same = labels[u.index()] == labels[v.index()];
                let reachable = dist[v.index()] != metrics::UNREACHABLE;
                prop_assert_eq!(same, reachable);
            }
        }
    }

    /// Double-sweep approximation never exceeds the exact diameter.
    #[test]
    fn approx_diameter_is_lower_bound(g in arb_graph()) {
        prop_assert!(metrics::approx_diameter(&g, 3) <= metrics::exact_diameter(&g));
    }

    /// Generators honor their size contracts for arbitrary parameters.
    #[test]
    fn generator_size_contracts(n in 5usize..80, seed in any::<u64>()) {
        prop_assert_eq!(generators::gnp(n, 0.1, seed).node_count(), n);
        prop_assert_eq!(generators::random_tree(n, seed).edge_count(), n - 1);
        prop_assert_eq!(generators::worst_case(n).node_count(), n);
        let g = generators::barabasi_albert(n, 2, seed);
        prop_assert_eq!(g.node_count(), n);
        // Trees and the worst-case family are connected.
        prop_assert_eq!(metrics::connected_components(&generators::random_tree(n, seed)).0, 1);
        prop_assert_eq!(metrics::connected_components(&generators::worst_case(n)).0, 1);
    }
}
