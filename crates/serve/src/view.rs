//! The query interface shared by the single-writer and sharded serving
//! layers, so the wire front end (and any embedding application) can
//! serve either backend through one code path.

use std::sync::Arc;

use dkcore_graph::{Graph, NodeId};

use crate::health::HealthReport;
use crate::service::ServiceHandle;
use crate::sharded::{ShardedHandle, StitchedSnapshot};
use crate::snapshot::CoreSnapshot;

/// One pinned, immutable epoch answering every query family of the
/// serving layer. Implemented by [`CoreSnapshot`] (single writer) and
/// [`StitchedSnapshot`] (sharded); all answers are internally consistent
/// because the view never changes after publication.
pub trait EpochView: Send + Sync {
    /// The epoch this view was published as.
    fn epoch(&self) -> u64;
    /// Number of nodes.
    fn node_count(&self) -> usize;
    /// Number of edges.
    fn edge_count(&self) -> usize;
    /// The largest coreness.
    fn max_coreness(&self) -> u32;
    /// Coreness of `v`, or `None` when out of range.
    fn coreness(&self, v: NodeId) -> Option<u32>;
    /// Degree of `v`, or `None` when out of range.
    fn degree(&self, v: NodeId) -> Option<u32>;
    /// Sorted neighbors of `v` (global node ids), or `None` when out of
    /// range.
    fn neighbors(&self, v: NodeId) -> Option<&[u32]>;
    /// Shell-size histogram (`max_coreness() + 1` entries).
    fn histogram(&self) -> Vec<usize>;
    /// Members of the k-core in ascending id order.
    fn kcore_members(&self, k: u32) -> Vec<NodeId>;
    /// Induced k-core subgraph plus the compact-id → original-id map.
    fn kcore_subgraph(&self, k: u32) -> (Graph, Vec<NodeId>);
    /// The `n` nodes of largest coreness (coreness desc, id asc).
    fn top_k(&self, n: usize) -> Vec<(NodeId, u32)>;
}

/// Extracts the k-core subgraph of any epoch view: the graph induced on
/// the nodes with coreness ≥ `k`, plus the compact-id → original-id map
/// (position `i` is the original id of new node `i`, ascending). The one
/// implementation behind both `CoreSnapshot::kcore_subgraph` and
/// `StitchedSnapshot::kcore_subgraph`.
pub(crate) fn kcore_subgraph_of<V: EpochView + ?Sized>(view: &V, k: u32) -> (Graph, Vec<NodeId>) {
    let n = view.node_count();
    let mut new_id = vec![u32::MAX; n];
    let mut back: Vec<NodeId> = Vec::new();
    for u in 0..n as u32 {
        if view.coreness(NodeId(u)).expect("in range") >= k {
            new_id[u as usize] = back.len() as u32;
            back.push(NodeId(u));
        }
    }
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for &u in &back {
        for &v in view.neighbors(u).expect("member in range") {
            if u.0 < v && new_id[v as usize] != u32::MAX {
                edges.push((new_id[u.index()], new_id[v as usize]));
            }
        }
    }
    let sub = Graph::from_edges(back.len(), edges).expect("induced subgraph is valid");
    (sub, back)
}

/// The `n` nodes of largest coreness in any epoch view, ordered by
/// descending coreness then ascending id, in `O(N)` (the histogram
/// locates the threshold shell, one scan collects the members). The one
/// implementation behind both snapshots' `top_k`.
pub(crate) fn top_k_of<V: EpochView + ?Sized>(view: &V, n: usize) -> Vec<(NodeId, u32)> {
    let total = view.node_count();
    let n = n.min(total);
    if n == 0 {
        return Vec::new();
    }
    // Find the smallest threshold t such that |{v : core(v) ≥ t}| ≥ n.
    let hist = view.histogram();
    let mut t = hist.len(); // exclusive upper bound
    let mut above = 0usize; // |{v : core(v) ≥ t}|
    while t > 0 && above < n {
        t -= 1;
        above += hist[t];
    }
    let t = t as u32;
    // One scan: everything strictly above t is in; nodes at exactly t
    // fill the remainder in id order.
    let mut strict: Vec<(NodeId, u32)> = Vec::new();
    let mut at: Vec<(NodeId, u32)> = Vec::new();
    for u in 0..total as u32 {
        let c = view.coreness(NodeId(u)).expect("in range");
        if c > t {
            strict.push((NodeId(u), c));
        } else if c == t {
            at.push((NodeId(u), c));
        }
    }
    strict.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let fill = n - strict.len();
    strict.extend(at.into_iter().take(fill));
    strict
}

impl EpochView for CoreSnapshot {
    fn epoch(&self) -> u64 {
        CoreSnapshot::epoch(self)
    }
    fn node_count(&self) -> usize {
        CoreSnapshot::node_count(self)
    }
    fn edge_count(&self) -> usize {
        CoreSnapshot::edge_count(self)
    }
    fn max_coreness(&self) -> u32 {
        CoreSnapshot::max_coreness(self)
    }
    fn coreness(&self, v: NodeId) -> Option<u32> {
        CoreSnapshot::coreness(self, v)
    }
    fn degree(&self, v: NodeId) -> Option<u32> {
        CoreSnapshot::degree(self, v)
    }
    fn neighbors(&self, v: NodeId) -> Option<&[u32]> {
        CoreSnapshot::neighbors(self, v)
    }
    fn histogram(&self) -> Vec<usize> {
        CoreSnapshot::histogram(self).to_vec()
    }
    fn kcore_members(&self, k: u32) -> Vec<NodeId> {
        CoreSnapshot::kcore_members(self, k)
    }
    fn kcore_subgraph(&self, k: u32) -> (Graph, Vec<NodeId>) {
        CoreSnapshot::kcore_subgraph(self, k)
    }
    fn top_k(&self, n: usize) -> Vec<(NodeId, u32)> {
        CoreSnapshot::top_k(self, n)
    }
}

impl EpochView for StitchedSnapshot {
    fn epoch(&self) -> u64 {
        StitchedSnapshot::epoch(self)
    }
    fn node_count(&self) -> usize {
        StitchedSnapshot::node_count(self)
    }
    fn edge_count(&self) -> usize {
        StitchedSnapshot::edge_count(self)
    }
    fn max_coreness(&self) -> u32 {
        StitchedSnapshot::max_coreness(self)
    }
    fn coreness(&self, v: NodeId) -> Option<u32> {
        StitchedSnapshot::coreness(self, v)
    }
    fn degree(&self, v: NodeId) -> Option<u32> {
        StitchedSnapshot::degree(self, v)
    }
    fn neighbors(&self, v: NodeId) -> Option<&[u32]> {
        StitchedSnapshot::neighbors(self, v)
    }
    fn histogram(&self) -> Vec<usize> {
        StitchedSnapshot::histogram(self).to_vec()
    }
    fn kcore_members(&self, k: u32) -> Vec<NodeId> {
        StitchedSnapshot::kcore_members(self, k)
    }
    fn kcore_subgraph(&self, k: u32) -> (Graph, Vec<NodeId>) {
        StitchedSnapshot::kcore_subgraph(self, k)
    }
    fn top_k(&self, n: usize) -> Vec<(NodeId, u32)> {
        StitchedSnapshot::top_k(self, n)
    }
}

/// A cloneable reader handle yielding pinned [`EpochView`]s — what the
/// wire server is generic over. Implemented by [`ServiceHandle`] and
/// [`ShardedHandle`].
pub trait SnapshotSource: Clone + Send + 'static {
    /// The pinned epoch type this source yields.
    type View: EpochView;
    /// The latest published epoch, pinned.
    fn snapshot(&self) -> Arc<Self::View>;
    /// The latest published epoch number, without pinning a view.
    fn epoch(&self) -> u64;
    /// The writer's latest health report (feeds the wire `HEALTH`
    /// verb): whether the writer is alive and, for the sharded backend,
    /// per-partition liveness and deferred-batch lag.
    fn health(&self) -> HealthReport;
}

impl SnapshotSource for ServiceHandle {
    type View = CoreSnapshot;
    fn snapshot(&self) -> Arc<CoreSnapshot> {
        ServiceHandle::snapshot(self)
    }
    fn epoch(&self) -> u64 {
        ServiceHandle::epoch(self)
    }
    fn health(&self) -> HealthReport {
        ServiceHandle::health(self)
    }
}

impl SnapshotSource for ShardedHandle {
    type View = StitchedSnapshot;
    fn snapshot(&self) -> Arc<StitchedSnapshot> {
        ShardedHandle::snapshot(self)
    }
    fn epoch(&self) -> u64 {
        ShardedHandle::epoch(self)
    }
    fn health(&self) -> HealthReport {
        ShardedHandle::health(self)
    }
}
