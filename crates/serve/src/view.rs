//! The query interface shared by the single-writer and sharded serving
//! layers, so the wire front end (and any embedding application) can
//! serve either backend through one code path.
//!
//! # The v2 split: [`CoreQuery`] + [`CoreScan`]
//!
//! The original [`EpochView`] trait mixed O(1) point lookups with
//! allocating `Vec`-returning bulk reads (`histogram()`, `kcore_members`,
//! `top_k`), which forced the wire layer to materialize whole answers
//! and hid the O(N) scans behind innocent-looking calls. v2 splits it:
//!
//! * [`CoreQuery`] — point lookups only (`coreness`, `degree`,
//!   `neighbors`, sizes). Everything here is O(1)/O(shells) per call.
//! * [`CoreScan`] — bulk reads as **iterators with pagination**
//!   (`members(k, offset, limit)`, `top(offset, limit)`,
//!   `shell_sizes()`) plus the memoized [`kcore_subgraph_cached`]. On
//!   indexed snapshots these emit in O(answer), flat in N.
//!
//! [`EpochView`] survives as a deprecated facade: a blanket impl gives
//! it to every [`CoreScan`] type, so downstream code migrates without a
//! flag day — old call sites keep compiling (with a deprecation
//! warning), new code takes `CoreQuery`/`CoreScan` bounds.
//!
//! [`kcore_subgraph_cached`]: CoreScan::kcore_subgraph_cached

use std::collections::HashMap;
use std::sync::Arc;

use dkcore_graph::{Graph, NodeId};

use crate::health::HealthReport;
use crate::service::ServiceHandle;
use crate::sharded::{ShardedHandle, StitchedSnapshot};
use crate::snapshot::CoreSnapshot;

/// Per-snapshot memo of extracted k-core subgraphs, keyed by `k`.
pub(crate) type SubgraphMemo = HashMap<u32, Arc<(Graph, Vec<NodeId>)>>;

/// Point lookups against one pinned, immutable epoch. Implemented by
/// [`CoreSnapshot`] (single writer) and [`StitchedSnapshot`] (sharded);
/// all answers are internally consistent because the view never changes
/// after publication.
pub trait CoreQuery: Send + Sync {
    /// The epoch this view was published as.
    fn epoch(&self) -> u64;
    /// Number of nodes.
    fn node_count(&self) -> usize;
    /// Number of edges.
    fn edge_count(&self) -> usize;
    /// The largest coreness.
    fn max_coreness(&self) -> u32;
    /// Coreness of `v`, or `None` when out of range.
    fn coreness(&self, v: NodeId) -> Option<u32>;
    /// Degree of `v`, or `None` when out of range.
    fn degree(&self, v: NodeId) -> Option<u32>;
    /// Sorted neighbors of `v` (global node ids), or `None` when out of
    /// range.
    fn neighbors(&self, v: NodeId) -> Option<&[u32]>;
    /// Number of nodes with coreness exactly `k` (0 past the top shell).
    fn shell_size(&self, k: u32) -> usize;
    /// Number of nodes with coreness ≥ `k` — the k-core's size, without
    /// materializing the member list. O(shells).
    fn kcore_size(&self, k: u32) -> usize {
        if k > self.max_coreness() {
            return 0;
        }
        (k..=self.max_coreness()).map(|j| self.shell_size(j)).sum()
    }
}

/// Paginated / iterator bulk reads over one pinned epoch — the scan
/// half of the v2 query API. On indexed snapshots every method emits in
/// O(answer) (flat in N for a fixed answer size); implementations
/// without an index fall back to O(N) scans with identical results.
pub trait CoreScan: CoreQuery {
    /// The shell-size histogram as an iterator: entry `k` counts the
    /// nodes with coreness exactly `k`, `max_coreness() + 1` entries.
    fn shell_sizes(&self) -> impl Iterator<Item = usize> + '_ {
        (0..=self.max_coreness()).map(|k| self.shell_size(k))
    }
    /// One page of the k-core members: positions `offset .. offset +
    /// limit` of the ascending-id sequence of nodes with coreness ≥ `k`.
    /// Pages concatenate to exactly the full member list; `(0,
    /// usize::MAX)` streams it whole.
    fn members(&self, k: u32, offset: usize, limit: usize) -> impl Iterator<Item = NodeId> + '_;
    /// One page of the full coreness ranking: positions `offset ..
    /// offset + limit` of the (coreness desc, id asc) sequence over all
    /// nodes. Pages concatenate to the whole ranking.
    fn top(&self, offset: usize, limit: usize) -> impl Iterator<Item = (NodeId, u32)> + '_;
    /// The memoized k-core subgraph: the graph induced on the nodes
    /// with coreness ≥ `k` plus the compact-id → original-id map
    /// (position `i` is the original id of new node `i`, ascending).
    /// First call per `k` extracts and caches in the snapshot; epochs
    /// are immutable, so the cache is invalidated for free at the flip.
    fn kcore_subgraph_cached(&self, k: u32) -> Arc<(Graph, Vec<NodeId>)>;
}

/// The original monolithic query trait, superseded by the
/// [`CoreQuery`] + [`CoreScan`] split (see the [module docs](self)).
/// A blanket impl derives it for every [`CoreScan`] type, so existing
/// call sites keep working while they migrate.
#[deprecated(
    since = "0.7.0",
    note = "take `CoreQuery` (point lookups) and/or `CoreScan` (paginated bulk reads) bounds instead"
)]
pub trait EpochView: Send + Sync {
    /// The epoch this view was published as.
    fn epoch(&self) -> u64;
    /// Number of nodes.
    fn node_count(&self) -> usize;
    /// Number of edges.
    fn edge_count(&self) -> usize;
    /// The largest coreness.
    fn max_coreness(&self) -> u32;
    /// Coreness of `v`, or `None` when out of range.
    fn coreness(&self, v: NodeId) -> Option<u32>;
    /// Degree of `v`, or `None` when out of range.
    fn degree(&self, v: NodeId) -> Option<u32>;
    /// Sorted neighbors of `v` (global node ids), or `None` when out of
    /// range.
    fn neighbors(&self, v: NodeId) -> Option<&[u32]>;
    /// Shell-size histogram (`max_coreness() + 1` entries).
    fn histogram(&self) -> Vec<usize>;
    /// Members of the k-core in ascending id order.
    fn kcore_members(&self, k: u32) -> Vec<NodeId>;
    /// Induced k-core subgraph plus the compact-id → original-id map.
    fn kcore_subgraph(&self, k: u32) -> (Graph, Vec<NodeId>);
    /// The `n` nodes of largest coreness (coreness desc, id asc).
    fn top_k(&self, n: usize) -> Vec<(NodeId, u32)>;
}

// Implementing the deprecated trait is the whole point of the blanket
// impl: every CoreScan type keeps satisfying pre-PR-7 EpochView bounds.
#[allow(deprecated)]
impl<T: CoreScan> EpochView for T {
    fn epoch(&self) -> u64 {
        CoreQuery::epoch(self)
    }
    fn node_count(&self) -> usize {
        CoreQuery::node_count(self)
    }
    fn edge_count(&self) -> usize {
        CoreQuery::edge_count(self)
    }
    fn max_coreness(&self) -> u32 {
        CoreQuery::max_coreness(self)
    }
    fn coreness(&self, v: NodeId) -> Option<u32> {
        CoreQuery::coreness(self, v)
    }
    fn degree(&self, v: NodeId) -> Option<u32> {
        CoreQuery::degree(self, v)
    }
    fn neighbors(&self, v: NodeId) -> Option<&[u32]> {
        CoreQuery::neighbors(self, v)
    }
    fn histogram(&self) -> Vec<usize> {
        CoreScan::shell_sizes(self).collect()
    }
    fn kcore_members(&self, k: u32) -> Vec<NodeId> {
        CoreScan::members(self, k, 0, usize::MAX).collect()
    }
    fn kcore_subgraph(&self, k: u32) -> (Graph, Vec<NodeId>) {
        (*CoreScan::kcore_subgraph_cached(self, k)).clone()
    }
    fn top_k(&self, n: usize) -> Vec<(NodeId, u32)> {
        CoreScan::top(self, 0, n).collect()
    }
}

/// The O(N) scan over all node ids behind the pre-index `MEMBERS` path.
/// Retained as the fallback for unindexed (benchmark-baseline) snapshots
/// and as the reference the indexed path is benchmarked against
/// (`bench_pr7`); production queries go through [`CoreScan::members`].
#[doc(hidden)]
pub fn kcore_members_scan<V: CoreQuery + ?Sized>(
    view: &V,
    k: u32,
) -> impl Iterator<Item = NodeId> + '_ {
    (0..view.node_count() as u32)
        .filter(move |&u| view.coreness(NodeId(u)).expect("in range") >= k)
        .map(NodeId)
}

/// The O(N) scan-and-partial-sort behind the pre-index `TOPK` path (the
/// histogram locates the threshold shell, one scan collects members).
/// Retained as the unindexed fallback and the `bench_pr7` baseline; the
/// indexed path ([`CoreScan::top`]) is a slice of the shell index.
#[doc(hidden)]
pub fn top_k_scan<V: CoreQuery + ?Sized>(view: &V, n: usize) -> Vec<(NodeId, u32)> {
    let total = view.node_count();
    let n = n.min(total);
    if n == 0 {
        return Vec::new();
    }
    // Find the smallest threshold t such that |{v : core(v) ≥ t}| ≥ n.
    let hist: Vec<usize> = (0..=view.max_coreness())
        .map(|k| view.shell_size(k))
        .collect();
    let mut t = hist.len(); // exclusive upper bound
    let mut above = 0usize; // |{v : core(v) ≥ t}|
    while t > 0 && above < n {
        t -= 1;
        above += hist[t];
    }
    let t = t as u32;
    // One scan: everything strictly above t is in; nodes at exactly t
    // fill the remainder in id order.
    let mut strict: Vec<(NodeId, u32)> = Vec::new();
    let mut at: Vec<(NodeId, u32)> = Vec::new();
    for u in 0..total as u32 {
        let c = view.coreness(NodeId(u)).expect("in range");
        if c > t {
            strict.push((NodeId(u), c));
        } else if c == t {
            at.push((NodeId(u), c));
        }
    }
    strict.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let fill = n - strict.len();
    strict.extend(at.into_iter().take(fill));
    strict
}

/// The O(N)-membership subgraph extraction (scan every id, dense remap
/// table). Retained as the `bench_pr7` baseline; production extraction
/// is [`kcore_subgraph_from_members`] fed by the shell index.
#[doc(hidden)]
pub fn kcore_subgraph_scan<V: CoreQuery + ?Sized>(view: &V, k: u32) -> (Graph, Vec<NodeId>) {
    let n = view.node_count();
    let mut new_id = vec![u32::MAX; n];
    let mut back: Vec<NodeId> = Vec::new();
    for u in 0..n as u32 {
        if view.coreness(NodeId(u)).expect("in range") >= k {
            new_id[u as usize] = back.len() as u32;
            back.push(NodeId(u));
        }
    }
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for &u in &back {
        for &v in view.neighbors(u).expect("member in range") {
            if u.0 < v && new_id[v as usize] != u32::MAX {
                edges.push((new_id[u.index()], new_id[v as usize]));
            }
        }
    }
    let sub = Graph::from_edges(back.len(), edges).expect("induced subgraph is valid");
    (sub, back)
}

/// Extracts the k-core subgraph from an already-enumerated member list
/// (ascending ids, straight off the shell index): O(answer) membership +
/// remap instead of the O(N) scan of [`kcore_subgraph_scan`]. The one
/// implementation behind both snapshots' memoized extraction.
pub(crate) fn kcore_subgraph_from_members<V: CoreQuery + ?Sized>(
    view: &V,
    members: impl Iterator<Item = NodeId>,
) -> (Graph, Vec<NodeId>) {
    let back: Vec<NodeId> = members.collect();
    let new_id: HashMap<u32, u32> = back
        .iter()
        .enumerate()
        .map(|(i, v)| (v.0, i as u32))
        .collect();
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for (i, &u) in back.iter().enumerate() {
        for &v in view.neighbors(u).expect("member in range") {
            if u.0 < v {
                if let Some(&nv) = new_id.get(&v) {
                    edges.push((i as u32, nv));
                }
            }
        }
    }
    let sub = Graph::from_edges(back.len(), edges).expect("induced subgraph is valid");
    (sub, back)
}

impl CoreQuery for CoreSnapshot {
    fn epoch(&self) -> u64 {
        CoreSnapshot::epoch(self)
    }
    fn node_count(&self) -> usize {
        CoreSnapshot::node_count(self)
    }
    fn edge_count(&self) -> usize {
        CoreSnapshot::edge_count(self)
    }
    fn max_coreness(&self) -> u32 {
        CoreSnapshot::max_coreness(self)
    }
    fn coreness(&self, v: NodeId) -> Option<u32> {
        CoreSnapshot::coreness(self, v)
    }
    fn degree(&self, v: NodeId) -> Option<u32> {
        CoreSnapshot::degree(self, v)
    }
    fn neighbors(&self, v: NodeId) -> Option<&[u32]> {
        CoreSnapshot::neighbors(self, v)
    }
    fn shell_size(&self, k: u32) -> usize {
        CoreSnapshot::histogram(self)
            .get(k as usize)
            .copied()
            .unwrap_or(0)
    }
    fn kcore_size(&self, k: u32) -> usize {
        CoreSnapshot::kcore_size(self, k)
    }
}

impl CoreScan for CoreSnapshot {
    fn shell_sizes(&self) -> impl Iterator<Item = usize> + '_ {
        CoreSnapshot::histogram(self).iter().copied()
    }
    fn members(&self, k: u32, offset: usize, limit: usize) -> impl Iterator<Item = NodeId> + '_ {
        CoreSnapshot::kcore_members_page(self, k, offset, limit)
    }
    fn top(&self, offset: usize, limit: usize) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        CoreSnapshot::top_page(self, offset, limit)
    }
    fn kcore_subgraph_cached(&self, k: u32) -> Arc<(Graph, Vec<NodeId>)> {
        CoreSnapshot::kcore_subgraph_cached(self, k)
    }
}

impl CoreQuery for StitchedSnapshot {
    fn epoch(&self) -> u64 {
        StitchedSnapshot::epoch(self)
    }
    fn node_count(&self) -> usize {
        StitchedSnapshot::node_count(self)
    }
    fn edge_count(&self) -> usize {
        StitchedSnapshot::edge_count(self)
    }
    fn max_coreness(&self) -> u32 {
        StitchedSnapshot::max_coreness(self)
    }
    fn coreness(&self, v: NodeId) -> Option<u32> {
        StitchedSnapshot::coreness(self, v)
    }
    fn degree(&self, v: NodeId) -> Option<u32> {
        StitchedSnapshot::degree(self, v)
    }
    fn neighbors(&self, v: NodeId) -> Option<&[u32]> {
        StitchedSnapshot::neighbors(self, v)
    }
    fn shell_size(&self, k: u32) -> usize {
        StitchedSnapshot::histogram(self)
            .get(k as usize)
            .copied()
            .unwrap_or(0)
    }
    fn kcore_size(&self, k: u32) -> usize {
        StitchedSnapshot::kcore_size(self, k)
    }
}

impl CoreScan for StitchedSnapshot {
    fn shell_sizes(&self) -> impl Iterator<Item = usize> + '_ {
        StitchedSnapshot::histogram(self).iter().copied()
    }
    fn members(&self, k: u32, offset: usize, limit: usize) -> impl Iterator<Item = NodeId> + '_ {
        StitchedSnapshot::kcore_members_page(self, k, offset, limit)
    }
    fn top(&self, offset: usize, limit: usize) -> impl Iterator<Item = (NodeId, u32)> + '_ {
        StitchedSnapshot::top_page(self, offset, limit)
    }
    fn kcore_subgraph_cached(&self, k: u32) -> Arc<(Graph, Vec<NodeId>)> {
        StitchedSnapshot::kcore_subgraph_cached(self, k)
    }
}

/// A cloneable reader handle yielding pinned [`CoreScan`] views — what
/// the wire server is generic over. Implemented by [`ServiceHandle`] and
/// [`ShardedHandle`].
pub trait SnapshotSource: Clone + Send + 'static {
    /// The pinned epoch type this source yields.
    type View: CoreScan;
    /// The latest published epoch, pinned.
    fn snapshot(&self) -> Arc<Self::View>;
    /// The latest published epoch number, without pinning a view.
    fn epoch(&self) -> u64;
    /// The writer's latest health report (feeds the wire `HEALTH`
    /// verb): whether the writer is alive and, for the sharded backend,
    /// per-partition liveness and deferred-batch lag.
    fn health(&self) -> HealthReport;
    /// The writer's telemetry bundle (feeds the wire `METRICS` and
    /// `EVENTS` verbs). The default is a disabled bundle so bare
    /// sources still serve; both service handles override it with the
    /// writer's live bundle.
    fn telemetry(&self) -> dkcore_metrics::Telemetry {
        dkcore_metrics::Telemetry::disabled()
    }
}

impl SnapshotSource for ServiceHandle {
    type View = CoreSnapshot;
    fn snapshot(&self) -> Arc<CoreSnapshot> {
        ServiceHandle::snapshot(self)
    }
    fn epoch(&self) -> u64 {
        ServiceHandle::epoch(self)
    }
    fn health(&self) -> HealthReport {
        ServiceHandle::health(self)
    }
    fn telemetry(&self) -> dkcore_metrics::Telemetry {
        ServiceHandle::telemetry(self).clone()
    }
}

impl SnapshotSource for ShardedHandle {
    type View = StitchedSnapshot;
    fn snapshot(&self) -> Arc<StitchedSnapshot> {
        ShardedHandle::snapshot(self)
    }
    fn epoch(&self) -> u64 {
        ShardedHandle::epoch(self)
    }
    fn health(&self) -> HealthReport {
        ShardedHandle::health(self)
    }
    fn telemetry(&self) -> dkcore_metrics::Telemetry {
        ShardedHandle::telemetry(self).clone()
    }
}
