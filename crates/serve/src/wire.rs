//! Std-only TCP front end behind `dkcore serve` / `dkcore query`: a
//! backward-compatible line protocol (the default) plus a negotiated
//! **binary pipelined mode**, both answering every query from one pinned
//! epoch snapshot per request.
//!
//! # Text protocol (default)
//!
//! One UTF-8 command per line; every response starts with `OK` or `ERR`.
//! All answers are served from the latest published epoch, and every
//! `OK` response carries `epoch=<e>` so a client can correlate answers:
//!
//! | request | response |
//! |---------|----------|
//! | `HELLO` | `OK proto=2 epoch=<e> modes=text,binary` |
//! | `HELLO TEXT` | `OK proto=2 mode=text` (connection stays in line mode) |
//! | `HELLO BINARY` | `OK proto=2 mode=binary`, then the connection switches to binary framing |
//! | `EPOCH` | `OK epoch=<e> nodes=<n> edges=<m> kmax=<k>` |
//! | `CORENESS <v>` | `OK epoch=<e> coreness=<c> degree=<d>` |
//! | `MEMBERS <k>` | `OK epoch=<e> count=<c> members=<v1,v2,...>` |
//! | `MEMBERS <k> OFFSET <o> LIMIT <l>` | `OK epoch=<e> total=<t> offset=<o> count=<c> members=<...>` |
//! | `SUBGRAPH <k>` | `OK epoch=<e> nodes=<n> edges=<m>`, then `m` lines `u v` (original ids) |
//! | `HIST` | `OK epoch=<e> hist=<k:count,...>` (non-empty shells) |
//! | `TOPK <n>` | `OK epoch=<e> top=<v:c,...>` |
//! | `TOPK <n> OFFSET <o>` | `OK epoch=<e> offset=<o> top=<v:c,...>` (ranks `o..o+n`) |
//! | `HEALTH` | `OK epoch=<e> status=healthy` \| `status=degraded down=<shard>:<lag>,...` \| `status=writer-dead`, plus `exchange=rounds:<n>,p50us:<a>,p99us:<b>,util:<c>%` on the sharded backend |
//! | `METRICS` | `OK epoch=<e> lines=<n>`, then `n` Prometheus-style lines from the backend's metrics registry |
//! | `EVENTS [SINCE <s>] [LIMIT <n>]` | `OK epoch=<e> count=<c> last=<seq>`, then `c` flight-recorder event lines (`seq=.. ts_ms=.. kind=.. shard=.. epoch=.. a=.. b=..`), oldest first |
//! | `QUIT` | `OK bye`, connection closes |
//! | `SHUTDOWN` | `OK shutting-down`, server stops accepting |
//!
//! `OFFSET`/`LIMIT` are optional and may appear independently; either
//! one switches `MEMBERS` to the paginated response shape (`total=` is
//! the full k-core size, `count=` the page size). Pages concatenate to
//! exactly the unpaginated answer — a property pinned by the serve
//! oracle at every epoch under churn.
//!
//! `HEALTH` is answered from the live writer-health slot rather than a
//! pinned snapshot: queries keep succeeding against the last published
//! epoch even when the writer is dead or a partition has failed over,
//! so health is the one piece of state a client cannot infer from query
//! responses alone.
//!
//! Malformed input earns `ERR <reason>` and the connection stays open.
//!
//! # Binary framed mode
//!
//! Negotiated per connection with `HELLO BINARY`; after the `OK` ack
//! both directions speak length-prefixed frames (all integers
//! little-endian). Multiple requests may be in flight on one connection
//! — the server answers strictly in request order and echoes each
//! request's `req_id`, so a client can pipeline without ambiguity.
//! This framing is the intended seam for cross-process shard transport.
//!
//! Request frame: `u32 len`, then `len` bytes of payload:
//! `u32 req_id`, `u8 opcode`, opcode-specific args.
//!
//! | opcode | args |
//! |--------|------|
//! | 1 `EPOCH` | — |
//! | 2 `CORENESS` | `u32 v` |
//! | 3 `MEMBERS` | `u32 k`, `u64 offset`, `u64 limit` |
//! | 4 `SUBGRAPH` | `u32 k` |
//! | 5 `HIST` | — |
//! | 6 `TOPK` | `u64 n`, `u64 offset` |
//! | 7 `HEALTH` | — |
//! | 8 `QUIT` | — |
//! | 9 `METRICS` | — |
//! | 10 `EVENTS` | `u64 since`, `u64 limit` |
//!
//! Response frame: `u32 len`, then `u32 req_id`, `u8 status` (0 = OK,
//! 1 = ERR), `u64 epoch`, payload:
//!
//! | request | OK payload |
//! |---------|------------|
//! | `EPOCH` | `u64 nodes`, `u64 edges`, `u32 kmax` |
//! | `CORENESS` | `u32 coreness`, `u32 degree` |
//! | `MEMBERS` | `u64 total`, `u64 offset`, `u32 count`, `count × u32` ids |
//! | `SUBGRAPH` | `u64 nodes`, `u64 edges`, `edges × (u32, u32)` original-id endpoints |
//! | `HIST` | `u32 entries`, `entries × (u32 k, u64 count)` for all shells `0..=kmax` |
//! | `TOPK` | `u32 count`, `count × (u32 id, u32 coreness)` |
//! | `HEALTH` | UTF-8 status line (epoch field is the live writer epoch) |
//! | `METRICS` | UTF-8 Prometheus-style exposition text |
//! | `EVENTS` | UTF-8 text, one rendered event line per retained event after `since` |
//! | `QUIT` | empty, then the connection closes |
//!
//! An `ERR` payload is a UTF-8 message. Unknown opcodes earn `ERR` and
//! the connection stays open.
//!
//! # Response cache
//!
//! The server keeps a small cache keyed on `(epoch, query)` shared by
//! all connections and both modes. Because the epoch is part of the
//! key and every request pins one snapshot, a cached response can never
//! be served across an epoch flip — invalidation is free: entries for
//! dead epochs simply stop being hit and are evicted first when the
//! cache is full. Only `OK` responses to read-only bulk queries
//! (`EPOCH`, `MEMBERS`, `SUBGRAPH`, `HIST`, `TOPK`) are cached;
//! `CORENESS` point lookups are already O(1) and `HEALTH`, `METRICS`
//! and `EVENTS` reflect live, non-epoch state. [`WireServer::cache_stats`]
//! exposes hit/miss counters; the same numbers (plus evictions) appear
//! on the registry as `serve.wire.cache.*`.
//!
//! # Telemetry
//!
//! The server registers per-verb request counters and latency
//! histograms (`serve.wire.requests{verb=...}`,
//! `serve.wire.latency_us{verb=...}`) on the backend's
//! [`Telemetry`](dkcore_metrics::Telemetry) bundle, obtained through
//! [`SnapshotSource::telemetry`]. `METRICS` therefore exposes the whole
//! stack — publish/repair phases, exchange rounds, pool utilization,
//! wire traffic, cache behavior — from one registry, and `EVENTS`
//! replays the shared flight recorder (batch/publish/failover/
//! promotion/degraded/revive/eviction history). A backend whose bundle
//! is [`Telemetry::disabled`](dkcore_metrics::Telemetry::disabled)
//! skips request counting and timing entirely (one branch per request);
//! cache hit/miss counters remain live because `cache_stats()` predates
//! the registry.
//!
//! Each accepted connection is served by its own thread; queries pin one
//! snapshot per request, so a multi-line `SUBGRAPH` answer is internally
//! consistent even while the writer publishes new epochs mid-response.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dkcore_graph::NodeId;
use dkcore_metrics::{Counter, EventKind, Histogram, Telemetry};

use crate::view::{CoreQuery, CoreScan, SnapshotSource};

const OP_EPOCH: u8 = 1;
const OP_CORENESS: u8 = 2;
const OP_MEMBERS: u8 = 3;
const OP_SUBGRAPH: u8 = 4;
const OP_HIST: u8 = 5;
const OP_TOPK: u8 = 6;
const OP_HEALTH: u8 = 7;
const OP_QUIT: u8 = 8;
const OP_METRICS: u8 = 9;
const OP_EVENTS: u8 = 10;

/// Upper bound on a single frame, request or response. Far above any
/// legitimate answer; a length past this is a corrupt or hostile stream
/// and the connection is dropped rather than the allocation attempted.
const MAX_FRAME: usize = 64 << 20;

/// Point-in-time statistics for a server's `(epoch, query)` response
/// cache, from [`WireServer::cache_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Responses served from the cache without touching a snapshot.
    pub hits: u64,
    /// Responses computed against a snapshot (and, if eligible, cached).
    pub misses: u64,
    /// Entries currently resident.
    pub entries: usize,
}

/// The cache table: `(epoch, canonical query key) -> encoded response`.
type CacheMap = HashMap<(u64, Vec<u8>), Arc<Vec<u8>>>;

/// Shared `(epoch, query-key) -> encoded response` cache. Staleness is
/// impossible by construction — the epoch is in the key and each lookup
/// uses the epoch of the snapshot pinned for that request.
///
/// Hit/miss/eviction counters live on the backend's metrics registry
/// (`serve.wire.cache.*`), so `METRICS` and [`WireServer::cache_stats`]
/// read the same numbers; evictions additionally leave a
/// `cache-evicted` event in the flight recorder.
#[derive(Debug)]
struct ResponseCache {
    entries: Mutex<CacheMap>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    tel: Telemetry,
}

impl ResponseCache {
    /// Entry bound: bulk-query working sets are a handful of hot
    /// queries per epoch, so a small table suffices.
    const CAPACITY: usize = 128;
    /// Bodies past this are streamed but not retained — one giant
    /// `SUBGRAPH` answer must not pin megabytes in the cache.
    const MAX_BODY: usize = 256 << 10;

    /// Registers the cache counters on `tel`'s registry. Hit/miss
    /// accounting is unconditional (not gated on `tel.enabled()`): the
    /// counters replace the cache's old private atomics, and
    /// `cache_stats()` must keep working even against an
    /// uninstrumented backend.
    fn new(tel: &Telemetry) -> Self {
        let r = tel.registry();
        ResponseCache {
            entries: Mutex::new(CacheMap::default()),
            hits: r.counter("serve.wire.cache.hits", &[]),
            misses: r.counter("serve.wire.cache.misses", &[]),
            evictions: r.counter("serve.wire.cache.evictions", &[]),
            tel: tel.clone(),
        }
    }

    /// A poisoned lock only means another connection thread panicked
    /// mid-insert; the map is always structurally valid, so recover it.
    fn lock(&self) -> MutexGuard<'_, CacheMap> {
        self.entries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the cached body for `(epoch, key)`, or builds one.
    /// `build` returns the encoded body plus whether it is eligible for
    /// caching (error responses are cheap to recompute and never
    /// cached). The build runs outside the lock; a racing duplicate
    /// build is harmless.
    fn get_or_build(
        &self,
        epoch: u64,
        key: Vec<u8>,
        build: impl FnOnce() -> (Vec<u8>, bool),
    ) -> Arc<Vec<u8>> {
        if let Some(hit) = self.lock().get(&(epoch, key.clone())).cloned() {
            self.hits.inc();
            return hit;
        }
        self.misses.inc();
        let (body, cacheable) = build();
        let body = Arc::new(body);
        if cacheable && body.len() <= Self::MAX_BODY {
            let mut entries = self.lock();
            let before = entries.len();
            if entries.len() >= Self::CAPACITY {
                // Dead-epoch entries can never be hit again: evict them
                // first, then fall back to dropping an arbitrary entry.
                entries.retain(|&(e, _), _| e == epoch);
            }
            if entries.len() >= Self::CAPACITY {
                if let Some(victim) = entries.keys().next().cloned() {
                    entries.remove(&victim);
                }
            }
            let evicted = (before - entries.len()) as u64;
            if evicted > 0 {
                self.evictions.add(evicted);
                self.tel
                    .event(EventKind::CacheEvicted, 0, epoch, evicted, 0);
            }
            entries.insert((epoch, key), body.clone());
        }
        body
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.value(),
            misses: self.misses.value(),
            entries: self.lock().len(),
        }
    }
}

/// Per-verb request counters and latency histograms, registered once at
/// [`serve`] from the backend's [`Telemetry`] and shared by every
/// connection in both modes. Counting and timing are gated on
/// [`Telemetry::enabled`], so an uninstrumented backend pays one branch
/// per request.
#[derive(Debug)]
struct WireMetrics {
    tel: Telemetry,
    /// `(requests, latency_us)` handles, indexed parallel to [`VERBS`].
    verbs: Vec<(Counter, Histogram)>,
}

/// Verbs with dedicated wire metrics; the trailing `other` slot absorbs
/// unknown commands and unknown opcodes. Labels are lowercase to match
/// exposition convention.
const VERBS: [&str; 13] = [
    "epoch", "coreness", "members", "subgraph", "hist", "topk", "health", "hello", "metrics",
    "events", "quit", "shutdown", "other",
];

impl WireMetrics {
    fn register(tel: &Telemetry) -> Self {
        let r = tel.registry();
        let verbs = VERBS
            .iter()
            .map(|v| {
                (
                    r.counter("serve.wire.requests", &[("verb", v)]),
                    r.histogram("serve.wire.latency_us", &[("verb", v)]),
                )
            })
            .collect();
        WireMetrics {
            tel: tel.clone(),
            verbs,
        }
    }

    /// Index of an uppercased text verb (`other` slot when unknown).
    fn verb_index(verb: &str) -> usize {
        VERBS
            .iter()
            .position(|v| verb.eq_ignore_ascii_case(v))
            .unwrap_or(VERBS.len() - 1)
    }

    /// Index of a binary opcode (`other` slot when unknown).
    fn opcode_index(opcode: u8) -> usize {
        match opcode {
            OP_EPOCH => 0,
            OP_CORENESS => 1,
            OP_MEMBERS => 2,
            OP_SUBGRAPH => 3,
            OP_HIST => 4,
            OP_TOPK => 5,
            OP_HEALTH => 6,
            OP_QUIT => 10,
            OP_METRICS => 8,
            OP_EVENTS => 9,
            _ => VERBS.len() - 1,
        }
    }

    /// Counts one request and starts its latency clock. `None` (skip
    /// timing) when the backend is uninstrumented.
    fn start(&self, idx: usize) -> Option<(usize, Instant)> {
        if !self.tel.enabled() {
            return None;
        }
        self.verbs[idx].0.inc();
        Some((idx, Instant::now()))
    }

    /// Records the latency for a request started with
    /// [`start`](Self::start). Early-returning verbs (`QUIT`,
    /// `SHUTDOWN`, the `HELLO BINARY` upgrade) skip this — their
    /// request counter already ticked and their latency is not
    /// meaningful.
    fn finish(&self, timer: Option<(usize, Instant)>) {
        if let Some((idx, t0)) = timer {
            self.verbs[idx].1.record(t0.elapsed().as_micros() as u64);
        }
    }
}

/// A running wire server: accept loop plus per-connection threads.
///
/// Stops when [`shutdown`](Self::shutdown) is called or a client sends
/// `SHUTDOWN`. Dropping the server also shuts it down.
#[derive(Debug)]
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    cache: Arc<ResponseCache>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
/// serving `handle`'s snapshots — either a single-writer
/// [`ServiceHandle`](crate::ServiceHandle) or a sharded
/// [`ShardedHandle`](crate::ShardedHandle); the protocol is identical.
///
/// Robustness contract (regression-tested by
/// `killing_a_client_mid_subgraph_leaves_the_listener_healthy`): no
/// client behavior can wedge the listener. An abrupt disconnect
/// mid-response surfaces as a write-side `BrokenPipe`/`ConnectionReset`
/// `io::Error` that ends only that connection; a panic inside a
/// connection thread is caught at the thread boundary (no shared state
/// is held across request handling, so nothing can be poisoned); and a
/// connection-thread *spawn* failure under resource exhaustion drops
/// that one connection instead of unwinding the accept loop.
///
/// # Errors
///
/// Returns the I/O error from binding the listener.
pub fn serve<S: SnapshotSource, A: ToSocketAddrs>(handle: S, addr: A) -> io::Result<WireServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let tel = handle.telemetry();
    let cache = Arc::new(ResponseCache::new(&tel));
    let wire_metrics = Arc::new(WireMetrics::register(&tel));
    let accept_stop = stop.clone();
    let accept_cache = cache.clone();
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let handle = handle.clone();
            let stop = accept_stop.clone();
            let cache = accept_cache.clone();
            let wire_metrics = wire_metrics.clone();
            // Builder::spawn (not thread::spawn): a spawn failure under
            // fd/thread exhaustion must drop this connection, not panic
            // the accept loop and silently wedge the listener.
            let spawned = std::thread::Builder::new()
                .name("dkcore-wire-conn".into())
                .spawn(move || {
                    // Connection I/O errors end that connection; a panic
                    // (always a bug, but contained) must not take anything
                    // else with it — there is nothing to poison because
                    // each request pins its own immutable snapshot. The
                    // payload is logged so the bug is debuggable.
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let _ = serve_connection(stream, &handle, &stop, &cache, &wire_metrics);
                    }));
                    if let Err(payload) = result {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        eprintln!("dkcore-wire: connection thread panicked (contained): {msg}");
                    }
                });
            drop(spawned); // Err(_) = connection dropped, listener lives on.
        }
    });
    Ok(WireServer {
        addr,
        stop,
        cache,
        accept_thread: Some(accept_thread),
    })
}

impl WireServer {
    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Whether the server has been asked to stop.
    pub fn is_shutdown(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Hit/miss/occupancy counters for the `(epoch, query)` response
    /// cache shared by all of this server's connections.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Blocks until the server is asked to stop (via
    /// [`shutdown`](Self::shutdown) from another thread or a client's
    /// `SHUTDOWN` command).
    pub fn wait(&self) {
        while !self.is_shutdown() {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Stops accepting connections and joins the accept loop. Idempotent.
    /// In-flight connections finish their current request and then see
    /// the stop flag at the next one.
    pub fn shutdown(&mut self) {
        request_stop(&self.stop, self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Sets the stop flag and nudges the accept loop out of `accept()` with
/// a throwaway connection.
fn request_stop(stop: &AtomicBool, addr: SocketAddr) {
    if !stop.swap(true, Ordering::AcqRel) {
        let _ = TcpStream::connect(addr);
    }
}

/// Serves one client connection until `QUIT`, EOF, shutdown, or an I/O
/// error. Starts in text (line) mode; `HELLO BINARY` hands the
/// connection over to [`serve_binary`].
///
/// Every fully-received request is answered — even one that races with
/// shutdown — so a client never loses a response it was owed. The stop
/// flag is observed between requests via a read timeout, which also
/// lets *idle* connections wind down shortly after shutdown instead of
/// blocking in `read_line` forever.
fn serve_connection<S: SnapshotSource>(
    stream: TcpStream,
    handle: &S,
    stop: &Arc<AtomicBool>,
    cache: &ResponseCache,
    wire: &WireMetrics,
) -> io::Result<()> {
    let peer_addr = stream.local_addr()?;
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()), // EOF
                Ok(_) => break,         // full line: always answer it
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // Idle tick: partial bytes (if any) stay in `line`.
                    if stop.load(Ordering::Acquire) {
                        return Ok(());
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        let mut parts = request.split_ascii_whitespace();
        let verb = parts.next().unwrap_or("").to_ascii_uppercase();
        let args: Vec<&str> = parts.collect();
        let timer = wire.start(WireMetrics::verb_index(&verb));
        match verb.as_str() {
            "QUIT" => {
                writeln!(writer, "OK bye")?;
                writer.flush()?;
                return Ok(());
            }
            "SHUTDOWN" => {
                writeln!(writer, "OK shutting-down")?;
                writer.flush()?;
                request_stop(stop, peer_addr);
                return Ok(());
            }
            // Health comes from the live writer-health slot, not a
            // pinned snapshot — it describes the writer, not an epoch's
            // query surface, so it is handled alongside the other
            // connection-level verbs.
            "HEALTH" => {
                let h = handle.health();
                // The sharded backend appends its exchange counters
                // after the (format-stable) status line.
                match &h.exchange {
                    Some(x) => writeln!(
                        writer,
                        "OK epoch={} {} {}",
                        h.epoch,
                        h.status_line(),
                        x.summary()
                    )?,
                    None => writeln!(writer, "OK epoch={} {}", h.epoch, h.status_line())?,
                }
            }
            // Exposition verbs read live telemetry state, not a pinned
            // snapshot, so — like HEALTH — they bypass the response
            // cache (caching them would also freeze the very counters
            // they report).
            "METRICS" => {
                let text = wire.tel.render_prometheus();
                writeln!(
                    writer,
                    "OK epoch={} lines={}",
                    handle.epoch(),
                    text.lines().count()
                )?;
                writer.write_all(text.as_bytes())?;
            }
            "EVENTS" => match parse_events_args(&args) {
                Ok((since, limit)) => {
                    let events = wire.tel.events_since(since, limit);
                    let last = events.last().map_or(since, |e| e.seq);
                    writeln!(
                        writer,
                        "OK epoch={} count={} last={last}",
                        handle.epoch(),
                        events.len()
                    )?;
                    for e in &events {
                        writeln!(writer, "{}", e.render())?;
                    }
                }
                Err(e) => writeln!(writer, "ERR {e}")?,
            },
            // Mode negotiation is connection-level state, not a query.
            "HELLO" => match args.first().map(|m| m.to_ascii_uppercase()).as_deref() {
                None => writeln!(
                    writer,
                    "OK proto=2 epoch={} modes=text,binary",
                    handle.epoch()
                )?,
                Some("TEXT") => writeln!(writer, "OK proto=2 mode=text")?,
                Some("BINARY") => {
                    writeln!(writer, "OK proto=2 mode=binary")?;
                    writer.flush()?;
                    return serve_binary(&mut reader, &mut writer, handle, stop, cache, wire);
                }
                Some(other) => {
                    writeln!(
                        writer,
                        "ERR HELLO: unknown mode {other:?}; modes: text,binary"
                    )?;
                }
            },
            _ => {
                let snap = handle.snapshot();
                let body = if matches!(
                    verb.as_str(),
                    "EPOCH" | "MEMBERS" | "SUBGRAPH" | "HIST" | "TOPK"
                ) {
                    let epoch = CoreQuery::epoch(&*snap);
                    cache.get_or_build(epoch, text_cache_key(&verb, &args), || {
                        let resp = answer_text(&verb, &args, &*snap);
                        let cacheable = resp.starts_with("OK");
                        (resp.into_bytes(), cacheable)
                    })
                } else {
                    Arc::new(answer_text(&verb, &args, &*snap).into_bytes())
                };
                writer.write_all(&body)?;
            }
        }
        wire.finish(timer);
        writer.flush()?;
    }
}

/// Canonical cache key for a text request: the uppercased verb and
/// uppercased argument tokens, space-joined — so `members 2 offset 0`
/// and `MEMBERS 2 OFFSET 0` share an entry.
fn text_cache_key(verb: &str, args: &[&str]) -> Vec<u8> {
    let mut key = String::from(verb);
    for a in args {
        key.push(' ');
        key.push_str(&a.to_ascii_uppercase());
    }
    key.into_bytes()
}

/// Answers one text query against a pinned snapshot (either backend),
/// returning the full newline-terminated response (header plus body
/// lines for `SUBGRAPH`). Writing to a `String` cannot fail, so the
/// result is infallible and cacheable as-is.
fn answer_text<V: CoreScan + ?Sized>(verb: &str, args: &[&str], snap: &V) -> String {
    let epoch = CoreQuery::epoch(snap);
    let mut out = String::new();
    match verb {
        "EPOCH" => {
            let _ = writeln!(
                out,
                "OK epoch={epoch} nodes={} edges={} kmax={}",
                snap.node_count(),
                snap.edge_count(),
                snap.max_coreness()
            );
        }
        "CORENESS" => match parse_u32_arg("CORENESS", args.first()) {
            Ok(v) => match snap.coreness(NodeId(v)) {
                Some(c) => {
                    let _ = writeln!(
                        out,
                        "OK epoch={epoch} coreness={c} degree={}",
                        snap.degree(NodeId(v)).expect("in range with coreness")
                    );
                }
                None => {
                    let _ = writeln!(out, "ERR node {v} out of range");
                }
            },
            Err(e) => {
                let _ = writeln!(out, "ERR {e}");
            }
        },
        "MEMBERS" => match parse_members_args(args) {
            Ok((k, None)) => {
                let ids: Vec<String> = CoreScan::members(snap, k, 0, usize::MAX)
                    .map(|v| v.0.to_string())
                    .collect();
                let _ = writeln!(
                    out,
                    "OK epoch={epoch} count={} members={}",
                    ids.len(),
                    ids.join(",")
                );
            }
            Ok((k, Some((offset, limit)))) => {
                let ids: Vec<String> = CoreScan::members(snap, k, offset, limit)
                    .map(|v| v.0.to_string())
                    .collect();
                let _ = writeln!(
                    out,
                    "OK epoch={epoch} total={} offset={offset} count={} members={}",
                    snap.kcore_size(k),
                    ids.len(),
                    ids.join(",")
                );
            }
            Err(e) => {
                let _ = writeln!(out, "ERR {e}");
            }
        },
        "SUBGRAPH" => match parse_u32_arg("SUBGRAPH", args.first()) {
            Ok(k) => {
                let cached = snap.kcore_subgraph_cached(k);
                let (sub, back) = &*cached;
                let _ = writeln!(
                    out,
                    "OK epoch={epoch} nodes={} edges={}",
                    sub.node_count(),
                    sub.edge_count()
                );
                for (u, v) in sub.edges() {
                    let _ = writeln!(out, "{} {}", back[u.index()], back[v.index()]);
                }
            }
            Err(e) => {
                let _ = writeln!(out, "ERR {e}");
            }
        },
        "HIST" => {
            let shells: Vec<String> = CoreScan::shell_sizes(snap)
                .enumerate()
                .filter(|&(_, c)| c > 0)
                .map(|(k, c)| format!("{k}:{c}"))
                .collect();
            let _ = writeln!(out, "OK epoch={epoch} hist={}", shells.join(","));
        }
        "TOPK" => match parse_topk_args(args) {
            Ok((n, None)) => {
                let pairs: Vec<String> = CoreScan::top(snap, 0, n as usize)
                    .map(|(v, c)| format!("{}:{c}", v.0))
                    .collect();
                let _ = writeln!(out, "OK epoch={epoch} top={}", pairs.join(","));
            }
            Ok((n, Some(offset))) => {
                let pairs: Vec<String> = CoreScan::top(snap, offset, n as usize)
                    .map(|(v, c)| format!("{}:{c}", v.0))
                    .collect();
                let _ = writeln!(
                    out,
                    "OK epoch={epoch} offset={offset} top={}",
                    pairs.join(",")
                );
            }
            Err(e) => {
                let _ = writeln!(out, "ERR {e}");
            }
        },
        other => {
            let _ = writeln!(
                out,
                "ERR unknown command {other:?}; known: HELLO EPOCH CORENESS MEMBERS SUBGRAPH HIST TOPK HEALTH METRICS EVENTS QUIT SHUTDOWN"
            );
        }
    }
    out
}

/// Parses a required leading `u32` argument with the legacy error
/// wording (`<verb> requires an argument` / `not a number`).
fn parse_u32_arg(name: &str, token: Option<&&str>) -> Result<u32, String> {
    let token = token.ok_or_else(|| format!("{name} requires an argument"))?;
    token
        .parse::<u32>()
        .map_err(|_| format!("{name}: {token:?} is not a number"))
}

/// Parses `MEMBERS <k> [OFFSET <o>] [LIMIT <l>]`. Returns the page
/// bounds only when at least one pagination keyword appeared, so the
/// caller can keep the legacy response shape for plain `MEMBERS <k>`.
fn parse_members_args(args: &[&str]) -> Result<(u32, Option<(usize, usize)>), String> {
    let k = parse_u32_arg("MEMBERS", args.first())?;
    let mut offset: Option<usize> = None;
    let mut limit: Option<usize> = None;
    let mut rest = args[1..].iter();
    while let Some(tok) = rest.next() {
        let slot = if tok.eq_ignore_ascii_case("OFFSET") {
            &mut offset
        } else if tok.eq_ignore_ascii_case("LIMIT") {
            &mut limit
        } else {
            return Err(format!("MEMBERS: unexpected argument {tok:?}"));
        };
        let val = rest
            .next()
            .ok_or_else(|| format!("{} requires an argument", tok.to_ascii_uppercase()))?;
        *slot = Some(
            val.parse::<usize>()
                .map_err(|_| format!("{}: {val:?} is not a number", tok.to_ascii_uppercase()))?,
        );
    }
    if offset.is_none() && limit.is_none() {
        return Ok((k, None));
    }
    Ok((k, Some((offset.unwrap_or(0), limit.unwrap_or(usize::MAX)))))
}

/// Parses `EVENTS [SINCE <s>] [LIMIT <n>]`. Defaults replay the whole
/// retained window: everything after seq 0, no count bound.
fn parse_events_args(args: &[&str]) -> Result<(u64, usize), String> {
    let mut since = 0u64;
    let mut limit = usize::MAX;
    let mut rest = args.iter();
    while let Some(tok) = rest.next() {
        if !tok.eq_ignore_ascii_case("SINCE") && !tok.eq_ignore_ascii_case("LIMIT") {
            return Err(format!("EVENTS: unexpected argument {tok:?}"));
        }
        let val = rest
            .next()
            .ok_or_else(|| format!("{} requires an argument", tok.to_ascii_uppercase()))?;
        if tok.eq_ignore_ascii_case("SINCE") {
            since = val
                .parse::<u64>()
                .map_err(|_| format!("SINCE: {val:?} is not a number"))?;
        } else {
            limit = val
                .parse::<usize>()
                .map_err(|_| format!("LIMIT: {val:?} is not a number"))?;
        }
    }
    Ok((since, limit))
}

/// Parses `TOPK <n> [OFFSET <o>]`; like `MEMBERS`, the offset's
/// presence selects the paginated response shape.
fn parse_topk_args(args: &[&str]) -> Result<(u32, Option<usize>), String> {
    let n = parse_u32_arg("TOPK", args.first())?;
    match args[1..] {
        [] => Ok((n, None)),
        [kw, val] if kw.eq_ignore_ascii_case("OFFSET") => {
            let offset = val
                .parse::<usize>()
                .map_err(|_| format!("OFFSET: {val:?} is not a number"))?;
            Ok((n, Some(offset)))
        }
        [kw] if kw.eq_ignore_ascii_case("OFFSET") => Err("OFFSET requires an argument".into()),
        [tok, ..] => Err(format!("TOPK: unexpected argument {tok:?}")),
    }
}

// ---------------------------------------------------------------------
// Binary framed mode: server side
// ---------------------------------------------------------------------

/// Reads exactly `buf.len()` bytes, riding out the 200ms read-timeout
/// ticks the connection uses to observe the stop flag. Returns
/// `Ok(false)` on a clean end of stream — EOF at a frame boundary, or
/// the stop flag raised mid-wait (a torn frame at shutdown is dropped;
/// fully-buffered frames were already processed). EOF *inside* a frame
/// is an `UnexpectedEof` error: the peer violated the framing.
fn read_full<R: Read>(reader: &mut R, buf: &mut [u8], stop: &AtomicBool) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::Acquire) {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Encodes a response body: `u8 status`, `u64 epoch`, payload. The
/// `req_id` is *not* part of the body so cached bodies can be replayed
/// under any request id.
fn encode_body(status: u8, epoch: u64, payload: &[u8]) -> Vec<u8> {
    let mut body = Vec::with_capacity(9 + payload.len());
    body.push(status);
    put_u64(&mut body, epoch);
    body.extend_from_slice(payload);
    body
}

/// Writes one response frame: `u32 len`, `u32 req_id`, body.
fn write_frame<W: Write>(w: &mut W, req_id: u32, body: &[u8]) -> io::Result<()> {
    let len = 4 + body.len();
    w.write_all(&u32::try_from(len).expect("frame under 4 GiB").to_le_bytes())?;
    w.write_all(&req_id.to_le_bytes())?;
    w.write_all(body)
}

/// Serves the binary framed mode after `HELLO BINARY`. Frames are
/// answered strictly in arrival order (responses carry the request's
/// `req_id`), each from its own pinned snapshot; a client may keep any
/// number of requests in flight.
fn serve_binary<S: SnapshotSource>(
    reader: &mut BufReader<TcpStream>,
    writer: &mut BufWriter<TcpStream>,
    handle: &S,
    stop: &AtomicBool,
    cache: &ResponseCache,
    wire: &WireMetrics,
) -> io::Result<()> {
    let mut len_buf = [0u8; 4];
    let mut frame = Vec::new();
    loop {
        if !read_full(reader, &mut len_buf, stop)? {
            return Ok(());
        }
        let len = u32::from_le_bytes(len_buf) as usize;
        if !(5..=MAX_FRAME).contains(&len) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad frame length {len}"),
            ));
        }
        frame.resize(len, 0);
        if !read_full(reader, &mut frame, stop)? {
            return Ok(()); // torn frame at shutdown: drop it
        }
        let req_id = u32::from_le_bytes(frame[0..4].try_into().expect("sliced 4 bytes"));
        let opcode = frame[4];
        let args = &frame[5..];
        let timer = wire.start(WireMetrics::opcode_index(opcode));
        match opcode {
            OP_QUIT => {
                let body = encode_body(0, handle.epoch(), &[]);
                write_frame(writer, req_id, &body)?;
                writer.flush()?;
                return Ok(());
            }
            OP_HEALTH => {
                let h = handle.health();
                let line = match &h.exchange {
                    Some(x) => format!("{} {}", h.status_line(), x.summary()),
                    None => h.status_line(),
                };
                let body = encode_body(0, h.epoch, line.as_bytes());
                write_frame(writer, req_id, &body)?;
            }
            // Exposition opcodes mirror the text verbs: live telemetry
            // state as a UTF-8 payload, uncached.
            OP_METRICS => {
                let body = if args.is_empty() {
                    let text = wire.tel.render_prometheus();
                    encode_body(0, handle.epoch(), text.as_bytes())
                } else {
                    let msg = format!("{} trailing bytes after arguments", args.len());
                    encode_body(1, handle.epoch(), msg.as_bytes())
                };
                write_frame(writer, req_id, &body)?;
            }
            OP_EVENTS => {
                let mut cur = Decoder { buf: args, at: 0 };
                let parsed = cur.u64().and_then(|since| {
                    let limit = cur.u64()?;
                    cur.finish()?;
                    Ok((since, limit))
                });
                let body = match parsed {
                    Ok((since, limit)) => {
                        let limit = usize::try_from(limit).unwrap_or(usize::MAX);
                        let events = wire.tel.events_since(since, limit);
                        let mut text = String::new();
                        for e in &events {
                            let _ = writeln!(text, "{}", e.render());
                        }
                        encode_body(0, handle.epoch(), text.as_bytes())
                    }
                    Err(msg) => encode_body(1, handle.epoch(), msg.as_bytes()),
                };
                write_frame(writer, req_id, &body)?;
            }
            _ => {
                let snap = handle.snapshot();
                let body = if matches!(
                    opcode,
                    OP_EPOCH | OP_MEMBERS | OP_SUBGRAPH | OP_HIST | OP_TOPK
                ) {
                    let epoch = CoreQuery::epoch(&*snap);
                    let mut key = Vec::with_capacity(1 + args.len());
                    key.push(opcode);
                    key.extend_from_slice(args);
                    cache.get_or_build(epoch, key, || {
                        let (status, epoch, payload) = answer_binary(opcode, args, &*snap);
                        (encode_body(status, epoch, &payload), status == 0)
                    })
                } else {
                    let (status, epoch, payload) = answer_binary(opcode, args, &*snap);
                    Arc::new(encode_body(status, epoch, &payload))
                };
                write_frame(writer, req_id, &body)?;
            }
        }
        wire.finish(timer);
        writer.flush()?;
    }
}

/// Answers one binary query against a pinned snapshot: returns
/// `(status, epoch, payload)` per the response table in the module
/// docs. Malformed args and unknown opcodes become `ERR` frames, never
/// connection errors — the framing itself was valid.
fn answer_binary<V: CoreScan + ?Sized>(opcode: u8, args: &[u8], snap: &V) -> (u8, u64, Vec<u8>) {
    let epoch = CoreQuery::epoch(snap);
    match answer_binary_ok(opcode, args, snap) {
        Ok(payload) => (0, epoch, payload),
        Err(msg) => (1, epoch, msg.into_bytes()),
    }
}

fn answer_binary_ok<V: CoreScan + ?Sized>(
    opcode: u8,
    args: &[u8],
    snap: &V,
) -> Result<Vec<u8>, String> {
    let mut cur = Decoder { buf: args, at: 0 };
    let mut payload = Vec::new();
    match opcode {
        OP_EPOCH => {
            cur.finish()?;
            put_u64(&mut payload, snap.node_count() as u64);
            put_u64(&mut payload, snap.edge_count() as u64);
            put_u32(&mut payload, snap.max_coreness());
        }
        OP_CORENESS => {
            let v = cur.u32()?;
            cur.finish()?;
            let c = snap
                .coreness(NodeId(v))
                .ok_or_else(|| format!("node {v} out of range"))?;
            put_u32(&mut payload, c);
            put_u32(
                &mut payload,
                snap.degree(NodeId(v)).expect("in range with coreness"),
            );
        }
        OP_MEMBERS => {
            let k = cur.u32()?;
            let offset = cur.u64()?;
            let limit = cur.u64()?;
            cur.finish()?;
            let offset_us = usize::try_from(offset).unwrap_or(usize::MAX);
            let limit_us = usize::try_from(limit).unwrap_or(usize::MAX);
            let ids: Vec<u32> = CoreScan::members(snap, k, offset_us, limit_us)
                .map(|v| v.0)
                .collect();
            put_u64(&mut payload, snap.kcore_size(k) as u64);
            put_u64(&mut payload, offset);
            put_u32(&mut payload, ids.len() as u32);
            for id in ids {
                put_u32(&mut payload, id);
            }
        }
        OP_SUBGRAPH => {
            let k = cur.u32()?;
            cur.finish()?;
            let cached = snap.kcore_subgraph_cached(k);
            let (sub, back) = &*cached;
            put_u64(&mut payload, sub.node_count() as u64);
            put_u64(&mut payload, sub.edge_count() as u64);
            for (u, v) in sub.edges() {
                put_u32(&mut payload, back[u.index()].0);
                put_u32(&mut payload, back[v.index()].0);
            }
        }
        OP_HIST => {
            cur.finish()?;
            let shells: Vec<usize> = CoreScan::shell_sizes(snap).collect();
            put_u32(&mut payload, shells.len() as u32);
            for (k, c) in shells.into_iter().enumerate() {
                put_u32(&mut payload, k as u32);
                put_u64(&mut payload, c as u64);
            }
        }
        OP_TOPK => {
            let n = cur.u64()?;
            let offset = cur.u64()?;
            cur.finish()?;
            let n_us = usize::try_from(n).unwrap_or(usize::MAX);
            let offset_us = usize::try_from(offset).unwrap_or(usize::MAX);
            let pairs: Vec<(u32, u32)> = CoreScan::top(snap, offset_us, n_us)
                .map(|(v, c)| (v.0, c))
                .collect();
            put_u32(&mut payload, pairs.len() as u32);
            for (id, c) in pairs {
                put_u32(&mut payload, id);
                put_u32(&mut payload, c);
            }
        }
        other => return Err(format!("unknown opcode {other}")),
    }
    Ok(payload)
}

/// Little-endian append helpers for frame payloads.
fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Little-endian cursor over a frame's argument/payload bytes.
struct Decoder<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Decoder<'_> {
    fn u32(&mut self) -> Result<u32, String> {
        let bytes: [u8; 4] = self
            .buf
            .get(self.at..self.at + 4)
            .ok_or("truncated frame")?
            .try_into()
            .expect("sliced 4 bytes");
        self.at += 4;
        Ok(u32::from_le_bytes(bytes))
    }

    fn u64(&mut self) -> Result<u64, String> {
        let bytes: [u8; 8] = self
            .buf
            .get(self.at..self.at + 8)
            .ok_or("truncated frame")?
            .try_into()
            .expect("sliced 8 bytes");
        self.at += 8;
        Ok(u64::from_le_bytes(bytes))
    }

    fn finish(&self) -> Result<(), String> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{} trailing bytes after arguments",
                self.buf.len() - self.at
            ))
        }
    }
}

/// Client-side robustness knobs: per-operation I/O timeouts and a
/// bounded reconnect-and-retry loop with exponential backoff.
///
/// Without timeouts a hung or mid-shutdown server blocks the client in
/// `read` forever; without retry a transient refusal (server still
/// binding, listener backlog full) is a hard failure. The defaults are
/// tuned for an interactive CLI: fail within a few seconds, never hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total connection attempts (≥ 1); each attempt reconnects fresh.
    pub attempts: u32,
    /// Read/write timeout applied to every socket operation.
    pub io_timeout: Duration,
    /// Base backoff between attempts; attempt `n` waits `base << (n-1)`
    /// (capped at 16× base).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            io_timeout: Duration::from_secs(5),
            backoff: Duration::from_millis(100),
        }
    }
}

/// Transient error kinds worth a reconnect: the server may be starting
/// up, shutting down one connection, or briefly stalled. Anything else
/// (e.g. a malformed-response `InvalidData`) fails immediately.
fn is_retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof
    )
}

/// Blocking line-protocol client, for the CLI and tests. Upgrade to the
/// framed mode with [`into_binary`](Self::into_binary).
#[derive(Debug)]
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl WireClient {
    /// Connects to a running [`WireServer`] with no I/O timeouts (reads
    /// block indefinitely). Prefer [`connect_with`](Self::connect_with)
    /// anywhere a hung server must not hang the caller.
    ///
    /// # Errors
    ///
    /// Returns the underlying connection error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(WireClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Connects with `policy.io_timeout` applied to every subsequent
    /// read and write, so a stalled server surfaces as a
    /// `TimedOut`/`WouldBlock` error instead of blocking forever. The
    /// connect itself is a single attempt — the retry loop lives in
    /// [`request_retrying`](Self::request_retrying).
    ///
    /// # Errors
    ///
    /// Returns the underlying connection or socket-option error.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, policy: &RetryPolicy) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(policy.io_timeout))?;
        stream.set_write_timeout(Some(policy.io_timeout))?;
        Ok(WireClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// One-shot request with bounded retry: connect fresh, send
    /// `command`, read the one-line response; on a transient failure
    /// (timeout, refused/reset/aborted connection, broken pipe,
    /// unexpected EOF) back off exponentially and try again, up to
    /// `policy.attempts` total attempts. Reconnecting per attempt is
    /// deliberate — after a timeout the old connection's response could
    /// still arrive later and would desynchronize a reused stream.
    ///
    /// # Errors
    ///
    /// Returns the last transient error once attempts are exhausted, or
    /// the first non-retryable error immediately.
    pub fn request_retrying<A: ToSocketAddrs>(
        addr: A,
        command: &str,
        policy: &RetryPolicy,
    ) -> io::Result<String> {
        let mut last: Option<io::Error> = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(policy.backoff * (1u32 << (attempt - 1).min(4)));
            }
            match Self::connect_with(&addr, policy).and_then(|mut c| c.request(command)) {
                Ok(response) => return Ok(response),
                Err(e) if is_retryable(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("no connection attempts made")))
    }

    /// Sends one command line and returns the one-line response.
    ///
    /// # Errors
    ///
    /// Returns I/O errors, including an unexpected EOF.
    pub fn request(&mut self, command: &str) -> io::Result<String> {
        writeln!(self.writer, "{command}")?;
        self.writer.flush()?;
        self.read_line()
    }

    /// Sends one command and reads a header line plus, when the header
    /// is `OK ... edges=<m>` for a `SUBGRAPH` request, `m` follow-up
    /// lines. Returns all lines, header first.
    ///
    /// # Errors
    ///
    /// Returns I/O errors, including an unexpected EOF mid-body.
    pub fn request_subgraph(&mut self, k: u32) -> io::Result<Vec<String>> {
        writeln!(self.writer, "SUBGRAPH {k}")?;
        self.writer.flush()?;
        let header = self.read_line()?;
        let mut lines = vec![header.clone()];
        if header.starts_with("OK") {
            let edges: usize = header
                .split_ascii_whitespace()
                .find_map(|t| t.strip_prefix("edges="))
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "malformed SUBGRAPH header")
                })?;
            for _ in 0..edges {
                lines.push(self.read_line()?);
            }
        }
        Ok(lines)
    }

    /// Sends `METRICS` and returns all response lines, header first
    /// (`OK epoch=<e> lines=<n>` plus `n` Prometheus-style lines).
    ///
    /// # Errors
    ///
    /// Returns I/O errors, including an unexpected EOF mid-body.
    pub fn request_metrics(&mut self) -> io::Result<Vec<String>> {
        self.request_block("METRICS", "lines=")
    }

    /// Sends `EVENTS [SINCE since] [LIMIT limit]` and returns all
    /// response lines, header first (`OK epoch=<e> count=<c> last=<s>`
    /// plus `c` rendered event lines). Pass `since = 0` and
    /// `limit = None` to replay the whole retained window.
    ///
    /// # Errors
    ///
    /// Returns I/O errors, including an unexpected EOF mid-body.
    pub fn request_events(&mut self, since: u64, limit: Option<u64>) -> io::Result<Vec<String>> {
        let command = match limit {
            Some(l) => format!("EVENTS SINCE {since} LIMIT {l}"),
            None => format!("EVENTS SINCE {since}"),
        };
        self.request_block(&command, "count=")
    }

    /// Sends `command` and reads a header line plus, when the header is
    /// `OK`, the number of follow-up lines announced by its
    /// `<count_field><n>` token. Returns all lines, header first.
    fn request_block(&mut self, command: &str, count_field: &str) -> io::Result<Vec<String>> {
        writeln!(self.writer, "{command}")?;
        self.writer.flush()?;
        let header = self.read_line()?;
        let mut lines = vec![header.clone()];
        if header.starts_with("OK") {
            let count: usize = header
                .split_ascii_whitespace()
                .find_map(|t| t.strip_prefix(count_field))
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("malformed header for {command:?}"),
                    )
                })?;
            for _ in 0..count {
                lines.push(self.read_line()?);
            }
        }
        Ok(lines)
    }

    /// Negotiates the binary framed mode (`HELLO BINARY`) and returns a
    /// [`BinaryWireClient`] over the same connection.
    ///
    /// # Errors
    ///
    /// Returns I/O errors, or `InvalidData` if the server refuses the
    /// upgrade (e.g. an older server that does not know `HELLO`).
    pub fn into_binary(mut self) -> io::Result<BinaryWireClient> {
        let ack = self.request("HELLO BINARY")?;
        if ack != "OK proto=2 mode=binary" {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("binary negotiation refused: {ack}"),
            ));
        }
        Ok(BinaryWireClient {
            reader: self.reader,
            writer: self.writer,
            next_id: 1,
        })
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }
}

// ---------------------------------------------------------------------
// Binary framed mode: client side
// ---------------------------------------------------------------------

/// A request in the binary framed mode; see the opcode table in the
/// module docs for the exact encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinRequest {
    /// Graph-level epoch summary (nodes, edges, kmax).
    Epoch,
    /// Point coreness + degree lookup for one node.
    Coreness(u32),
    /// Paginated k-core membership page. `limit = u64::MAX` means "to
    /// the end".
    Members {
        /// Core threshold.
        k: u32,
        /// Rank of the first member to return.
        offset: u64,
        /// Maximum members in the page.
        limit: u64,
    },
    /// Induced k-core subgraph edge list (original ids).
    Subgraph(u32),
    /// Full shell-size histogram for shells `0..=kmax`.
    Hist,
    /// Top nodes by coreness, ranks `offset..offset+n`.
    TopK {
        /// Page size.
        n: u64,
        /// Rank of the first entry to return.
        offset: u64,
    },
    /// Live writer health (not served from a pinned snapshot).
    Health,
    /// Prometheus-style metrics exposition (UTF-8 payload, live state).
    Metrics,
    /// Flight-recorder replay: events after `since`, at most `limit`
    /// (`u64::MAX` = unbounded), one rendered line each in the UTF-8
    /// payload.
    Events {
        /// Replay events with sequence numbers strictly greater than
        /// this.
        since: u64,
        /// Maximum events to return.
        limit: u64,
    },
    /// Close the connection after an empty `OK` acknowledgement.
    Quit,
}

impl BinRequest {
    fn encode(&self, buf: &mut Vec<u8>) {
        match *self {
            BinRequest::Epoch => buf.push(OP_EPOCH),
            BinRequest::Coreness(v) => {
                buf.push(OP_CORENESS);
                put_u32(buf, v);
            }
            BinRequest::Members { k, offset, limit } => {
                buf.push(OP_MEMBERS);
                put_u32(buf, k);
                put_u64(buf, offset);
                put_u64(buf, limit);
            }
            BinRequest::Subgraph(k) => {
                buf.push(OP_SUBGRAPH);
                put_u32(buf, k);
            }
            BinRequest::Hist => buf.push(OP_HIST),
            BinRequest::TopK { n, offset } => {
                buf.push(OP_TOPK);
                put_u64(buf, n);
                put_u64(buf, offset);
            }
            BinRequest::Health => buf.push(OP_HEALTH),
            BinRequest::Metrics => buf.push(OP_METRICS),
            BinRequest::Events { since, limit } => {
                buf.push(OP_EVENTS);
                put_u64(buf, since);
                put_u64(buf, limit);
            }
            BinRequest::Quit => buf.push(OP_QUIT),
        }
    }
}

/// One decoded binary response frame. The typed accessors return
/// `None` when the frame is an error or the payload does not match the
/// expected shape; [`text`](Self::text) reads `ERR` messages and
/// `HEALTH` status lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BinResponse {
    /// Echo of the request's id — pipelined clients match on this.
    pub req_id: u32,
    /// `true` for an `OK` (status 0) frame.
    pub ok: bool,
    /// Epoch the answer was computed against.
    pub epoch: u64,
    /// Raw opcode-specific payload; prefer the typed accessors.
    pub payload: Vec<u8>,
}

impl BinResponse {
    /// Decodes an `EPOCH` payload as `(nodes, edges, kmax)`.
    pub fn epoch_info(&self) -> Option<(u64, u64, u32)> {
        let mut cur = self.ok_decoder()?;
        let out = (cur.u64().ok()?, cur.u64().ok()?, cur.u32().ok()?);
        cur.finish().ok()?;
        Some(out)
    }

    /// Decodes a `CORENESS` payload as `(coreness, degree)`.
    pub fn coreness(&self) -> Option<(u32, u32)> {
        let mut cur = self.ok_decoder()?;
        let out = (cur.u32().ok()?, cur.u32().ok()?);
        cur.finish().ok()?;
        Some(out)
    }

    /// Decodes a `MEMBERS` payload as `(total, offset, ids)`.
    pub fn members(&self) -> Option<(u64, u64, Vec<u32>)> {
        let mut cur = self.ok_decoder()?;
        let total = cur.u64().ok()?;
        let offset = cur.u64().ok()?;
        let count = cur.u32().ok()?;
        let mut ids = Vec::with_capacity(count as usize);
        for _ in 0..count {
            ids.push(cur.u32().ok()?);
        }
        cur.finish().ok()?;
        Some((total, offset, ids))
    }

    /// Decodes a `SUBGRAPH` payload as `(nodes, original-id edges)`.
    pub fn subgraph(&self) -> Option<(u64, Vec<(u32, u32)>)> {
        let mut cur = self.ok_decoder()?;
        let nodes = cur.u64().ok()?;
        let edges = cur.u64().ok()?;
        let mut list = Vec::with_capacity(usize::try_from(edges).ok()?);
        for _ in 0..edges {
            list.push((cur.u32().ok()?, cur.u32().ok()?));
        }
        cur.finish().ok()?;
        Some((nodes, list))
    }

    /// Decodes a `HIST` payload as `(shell, count)` entries.
    pub fn hist(&self) -> Option<Vec<(u32, u64)>> {
        let mut cur = self.ok_decoder()?;
        let entries = cur.u32().ok()?;
        let mut out = Vec::with_capacity(entries as usize);
        for _ in 0..entries {
            out.push((cur.u32().ok()?, cur.u64().ok()?));
        }
        cur.finish().ok()?;
        Some(out)
    }

    /// Decodes a `TOPK` payload as `(id, coreness)` pairs.
    pub fn top(&self) -> Option<Vec<(u32, u32)>> {
        let mut cur = self.ok_decoder()?;
        let count = cur.u32().ok()?;
        let mut out = Vec::with_capacity(count as usize);
        for _ in 0..count {
            out.push((cur.u32().ok()?, cur.u32().ok()?));
        }
        cur.finish().ok()?;
        Some(out)
    }

    /// The payload as UTF-8 text: an `ERR` message, or a `HEALTH`
    /// status line.
    pub fn text(&self) -> Option<&str> {
        std::str::from_utf8(&self.payload).ok()
    }

    fn ok_decoder(&self) -> Option<Decoder<'_>> {
        self.ok.then_some(Decoder {
            buf: &self.payload,
            at: 0,
        })
    }
}

/// Pipelined client for the binary framed mode, created by
/// [`WireClient::into_binary`]. [`send`](Self::send) only buffers;
/// [`recv`](Self::recv) flushes and reads one frame — so any number of
/// requests can be in flight, answered strictly in send order.
#[derive(Debug)]
pub struct BinaryWireClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    next_id: u32,
}

impl BinaryWireClient {
    /// Buffers one request frame (no flush) and returns its `req_id`.
    ///
    /// # Errors
    ///
    /// Returns write-side I/O errors.
    pub fn send(&mut self, req: &BinRequest) -> io::Result<u32> {
        let req_id = self.next_id;
        self.next_id = self.next_id.wrapping_add(1);
        let mut payload = Vec::with_capacity(32);
        payload.extend_from_slice(&req_id.to_le_bytes());
        req.encode(&mut payload);
        self.writer.write_all(
            &u32::try_from(payload.len())
                .expect("small frame")
                .to_le_bytes(),
        )?;
        self.writer.write_all(&payload)?;
        Ok(req_id)
    }

    /// Flushes any buffered requests and reads the next response frame.
    ///
    /// # Errors
    ///
    /// Returns I/O errors, or `InvalidData` on a malformed frame.
    pub fn recv(&mut self) -> io::Result<BinResponse> {
        self.writer.flush()?;
        let mut len_buf = [0u8; 4];
        self.reader.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        if !(13..=MAX_FRAME).contains(&len) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad response frame length {len}"),
            ));
        }
        let mut frame = vec![0u8; len];
        self.reader.read_exact(&mut frame)?;
        let req_id = u32::from_le_bytes(frame[0..4].try_into().expect("sliced 4 bytes"));
        let ok = frame[4] == 0;
        let epoch = u64::from_le_bytes(frame[5..13].try_into().expect("sliced 8 bytes"));
        Ok(BinResponse {
            req_id,
            ok,
            epoch,
            payload: frame[13..].to_vec(),
        })
    }

    /// Sends one request and reads its response, checking the `req_id`
    /// echo.
    ///
    /// # Errors
    ///
    /// Returns I/O errors, or `InvalidData` if the response answers a
    /// different request (a pipelining protocol violation).
    pub fn roundtrip(&mut self, req: &BinRequest) -> io::Result<BinResponse> {
        let id = self.send(req)?;
        let resp = self.recv()?;
        if resp.req_id != id {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("response for req {} while awaiting {id}", resp.req_id),
            ));
        }
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreService;
    use dkcore::stream::EdgeBatch;
    use dkcore_graph::generators::path;
    use dkcore_graph::Graph;

    fn service_on_cycle() -> (CoreService, WireServer) {
        let mut svc = CoreService::new(&path(6));
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(5)); // epoch 1: a 6-cycle, all coreness 2
        svc.apply_batch(&b).unwrap();
        let server = serve(svc.handle(), "127.0.0.1:0").unwrap();
        (svc, server)
    }

    #[test]
    fn full_query_conversation() {
        let (_svc, server) = service_on_cycle();
        let mut c = WireClient::connect(server.local_addr()).unwrap();
        assert_eq!(
            c.request("EPOCH").unwrap(),
            "OK epoch=1 nodes=6 edges=6 kmax=2"
        );
        assert_eq!(
            c.request("CORENESS 3").unwrap(),
            "OK epoch=1 coreness=2 degree=2"
        );
        assert_eq!(
            c.request("MEMBERS 2").unwrap(),
            "OK epoch=1 count=6 members=0,1,2,3,4,5"
        );
        assert_eq!(c.request("HIST").unwrap(), "OK epoch=1 hist=2:6");
        assert_eq!(c.request("TOPK 2").unwrap(), "OK epoch=1 top=0:2,1:2");
        let sub = c.request_subgraph(2).unwrap();
        assert_eq!(sub[0], "OK epoch=1 nodes=6 edges=6");
        assert_eq!(sub.len(), 7);
        // The body lines are valid original-id edges of the cycle.
        let edges: Vec<(u32, u32)> = sub[1..]
            .iter()
            .map(|l| {
                let mut it = l.split_ascii_whitespace();
                (
                    it.next().unwrap().parse().unwrap(),
                    it.next().unwrap().parse().unwrap(),
                )
            })
            .collect();
        let rebuilt = Graph::from_edges(6, edges).unwrap();
        assert!(rebuilt.nodes().all(|u| rebuilt.degree(u) == 2));
        assert_eq!(c.request("QUIT").unwrap(), "OK bye");
    }

    #[test]
    fn error_paths_keep_the_connection_open() {
        let (_svc, server) = service_on_cycle();
        let mut c = WireClient::connect(server.local_addr()).unwrap();
        assert_eq!(
            c.request("CORENESS 99").unwrap(),
            "ERR node 99 out of range"
        );
        assert!(c.request("CORENESS").unwrap().starts_with("ERR"));
        assert!(c.request("CORENESS xyz").unwrap().starts_with("ERR"));
        assert!(c.request("FROBNICATE 1").unwrap().starts_with("ERR"));
        assert!(c
            .request("MEMBERS 2 SIDEWAYS 3")
            .unwrap()
            .starts_with("ERR"));
        assert!(c.request("MEMBERS 2 OFFSET").unwrap().starts_with("ERR"));
        assert!(c.request("TOPK 2 OFFSET x").unwrap().starts_with("ERR"));
        assert!(c.request("HELLO MORSE").unwrap().starts_with("ERR"));
        // Still serving after all those errors.
        assert!(c.request("EPOCH").unwrap().starts_with("OK epoch=1"));
    }

    #[test]
    fn concurrent_clients_see_consistent_epochs() {
        let (mut svc, server) = service_on_cycle();
        let addr = server.local_addr();
        let readers: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = WireClient::connect(addr).unwrap();
                    for _ in 0..20 {
                        let r = c.request("EPOCH").unwrap();
                        assert!(r.starts_with("OK epoch="), "{r}");
                        let h = c.request("HIST").unwrap();
                        assert!(h.starts_with("OK epoch="), "{h}");
                    }
                })
            })
            .collect();
        // Writer churns concurrently.
        for (u, v) in [(1u32, 4u32), (2, 5), (0, 3)] {
            let mut b = EdgeBatch::new();
            b.insert(NodeId(u), NodeId(v));
            svc.apply_batch(&b).unwrap();
        }
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn shutdown_command_stops_the_server() {
        let (_svc, server) = service_on_cycle();
        let mut c = WireClient::connect(server.local_addr()).unwrap();
        assert_eq!(c.request("SHUTDOWN").unwrap(), "OK shutting-down");
        server.wait(); // returns because the client stopped the server
        assert!(server.is_shutdown());
    }

    #[test]
    fn requests_racing_shutdown_are_still_answered() {
        // An already-open connection must never lose a response it is
        // owed: after another client shuts the server down, a request on
        // the surviving connection is still answered (the connection
        // then winds down at its next idle read).
        let (_svc, server) = service_on_cycle();
        let mut a = WireClient::connect(server.local_addr()).unwrap();
        assert!(a.request("EPOCH").unwrap().starts_with("OK"));
        let mut b = WireClient::connect(server.local_addr()).unwrap();
        assert_eq!(b.request("SHUTDOWN").unwrap(), "OK shutting-down");
        server.wait();
        assert_eq!(a.request("HIST").unwrap(), "OK epoch=1 hist=2:6");
    }

    #[test]
    fn killing_a_client_mid_subgraph_leaves_the_listener_healthy() {
        // A client that requests a large multi-line SUBGRAPH response and
        // disconnects abruptly mid-body produces a write-side
        // BrokenPipe/ConnectionReset in its connection thread. That must
        // end *only* that connection: the listener keeps accepting and
        // other clients get complete, correct answers.
        use dkcore_graph::generators::gnp;
        use std::io::Read as _;

        let g = gnp(600, 0.05, 42); // thousands of body lines
        let svc = crate::CoreService::new(&g);
        let server = serve(svc.handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        for round in 0..4 {
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(b"SUBGRAPH 0\n").unwrap();
            raw.flush().unwrap();
            // Read a few bytes of the header so the server is committed to
            // streaming the body, then kill the connection outright.
            let mut buf = [0u8; 16];
            let n = raw.read(&mut buf).unwrap();
            assert!(n > 0, "round {round}: server started responding");
            raw.shutdown(std::net::Shutdown::Both).ok();
            drop(raw); // server's in-flight body writes now fail

            // The listener must still serve full conversations.
            let mut c = WireClient::connect(addr).unwrap();
            let e = c.request("EPOCH").unwrap();
            assert!(e.starts_with("OK epoch=0"), "round {round}: {e}");
            let sub = c.request_subgraph(1).unwrap();
            assert!(sub[0].starts_with("OK epoch=0"), "round {round}");
            assert_eq!(c.request("QUIT").unwrap(), "OK bye");
        }
        assert!(
            !server.is_shutdown(),
            "client kills must not stop the server"
        );
    }

    #[test]
    fn sharded_backend_serves_the_same_protocol() {
        use crate::ShardedCoreService;

        let mut svc = ShardedCoreService::new(&path(6), 2);
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(5)); // epoch 1: a 6-cycle, all coreness 2
        svc.apply_batch(&b).unwrap();
        let server = serve(svc.handle(), "127.0.0.1:0").unwrap();
        let mut c = WireClient::connect(server.local_addr()).unwrap();
        assert_eq!(
            c.request("EPOCH").unwrap(),
            "OK epoch=1 nodes=6 edges=6 kmax=2"
        );
        assert_eq!(
            c.request("CORENESS 3").unwrap(),
            "OK epoch=1 coreness=2 degree=2"
        );
        assert_eq!(
            c.request("MEMBERS 2").unwrap(),
            "OK epoch=1 count=6 members=0,1,2,3,4,5"
        );
        assert_eq!(c.request("HIST").unwrap(), "OK epoch=1 hist=2:6");
        assert_eq!(c.request("TOPK 2").unwrap(), "OK epoch=1 top=0:2,1:2");
        let sub = c.request_subgraph(2).unwrap();
        assert_eq!(sub[0], "OK epoch=1 nodes=6 edges=6");
        // The sharded backend speaks the binary mode too.
        let mut bin = WireClient::connect(server.local_addr())
            .unwrap()
            .into_binary()
            .unwrap();
        let r = bin.roundtrip(&BinRequest::Members {
            k: 2,
            offset: 0,
            limit: u64::MAX,
        });
        let (total, _, ids) = r.unwrap().members().unwrap();
        assert_eq!(total, 6);
        assert_eq!(ids, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(c.request("QUIT").unwrap(), "OK bye");
    }

    #[test]
    fn health_verb_reports_healthy_and_degraded_states() {
        // Single-writer backend: healthy after a publish.
        let (_svc, server) = service_on_cycle();
        let mut c = WireClient::connect(server.local_addr()).unwrap();
        assert_eq!(c.request("HEALTH").unwrap(), "OK epoch=1 status=healthy");

        // Sharded backend with no replicas: killing a primary leaves the
        // partition down, and HEALTH names it while queries keep
        // answering from the last consistent epoch.
        use crate::{ShardedConfig, ShardedCoreService};
        let mut svc = ShardedCoreService::with_config(&path(6), 2, ShardedConfig::default());
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(5));
        svc.apply_batch(&b).unwrap();
        assert!(!svc.kill_primary(0), "no replica: partition goes down");
        let mut b = EdgeBatch::new();
        b.insert(NodeId(1), NodeId(4));
        svc.apply_batch(&b).unwrap(); // deferred: lag of 1
        let server = serve(svc.handle(), "127.0.0.1:0").unwrap();
        let mut c = WireClient::connect(server.local_addr()).unwrap();
        // Status line is format-stable; the sharded backend appends its
        // exchange counters (timing-dependent, so matched structurally).
        let health = c.request("HEALTH").unwrap();
        assert!(
            health.starts_with("OK epoch=1 status=degraded down=0:1 exchange=rounds:"),
            "unexpected HEALTH response: {health}"
        );
        assert!(health.contains(",util:"), "missing utilization: {health}");
        assert!(c.request("EPOCH").unwrap().starts_with("OK epoch=1"));
    }

    #[test]
    fn stalled_server_requests_fail_within_the_timeout() {
        // Regression: a server that accepts but never responds used to
        // block `dkcore query` forever. With a RetryPolicy the request
        // must fail with a transient error in bounded time.
        use std::time::Instant;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stall = std::thread::spawn(move || {
            // Accept every connection and hold it open, never replying.
            let mut held = Vec::new();
            while let Ok((s, _)) = listener.accept() {
                held.push(s);
                if held.len() >= 3 {
                    break;
                }
            }
            held
        });

        let policy = RetryPolicy {
            attempts: 2,
            io_timeout: Duration::from_millis(100),
            backoff: Duration::from_millis(10),
        };
        let t0 = Instant::now();
        let err = WireClient::request_retrying(addr, "EPOCH", &policy).unwrap_err();
        assert!(is_retryable(&err), "stall must surface as transient: {err}");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "bounded time, not a hang"
        );
        drop(stall); // detach: the holder thread ends with the test process
    }

    #[test]
    fn retrying_request_survives_a_transient_connection_drop() {
        // First accepted connection is dropped before any response
        // (client sees EOF/reset); the second is answered. The retry
        // loop must reconnect and succeed.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fake = std::thread::spawn(move || {
            let (first, _) = listener.accept().unwrap();
            drop(first); // transient failure
            let (second, _) = listener.accept().unwrap();
            let mut r = BufReader::new(second.try_clone().unwrap());
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "EPOCH");
            let mut w = BufWriter::new(second);
            writeln!(w, "OK epoch=7 nodes=0 edges=0 kmax=0").unwrap();
            w.flush().unwrap();
        });

        let policy = RetryPolicy {
            attempts: 3,
            io_timeout: Duration::from_secs(2),
            backoff: Duration::from_millis(10),
        };
        let r = WireClient::request_retrying(addr, "EPOCH", &policy).unwrap();
        assert_eq!(r, "OK epoch=7 nodes=0 edges=0 kmax=0");
        fake.join().unwrap();
    }

    #[test]
    fn explicit_shutdown_is_idempotent() {
        let (_svc, mut server) = service_on_cycle();
        assert!(!server.is_shutdown());
        server.shutdown();
        assert!(server.is_shutdown());
        server.shutdown(); // second call is a no-op
        assert!(WireClient::connect(server.local_addr())
            .and_then(|mut c| c.request("EPOCH"))
            .is_err());
    }

    #[test]
    fn hello_negotiation_and_paginated_text_verbs() {
        let (_svc, server) = service_on_cycle();
        let mut c = WireClient::connect(server.local_addr()).unwrap();
        assert_eq!(
            c.request("HELLO").unwrap(),
            "OK proto=2 epoch=1 modes=text,binary"
        );
        assert_eq!(c.request("HELLO TEXT").unwrap(), "OK proto=2 mode=text");
        // Paginated MEMBERS: total is the full k-core size, count the page.
        assert_eq!(
            c.request("MEMBERS 2 OFFSET 2 LIMIT 2").unwrap(),
            "OK epoch=1 total=6 offset=2 count=2 members=2,3"
        );
        assert_eq!(
            c.request("MEMBERS 2 OFFSET 5").unwrap(),
            "OK epoch=1 total=6 offset=5 count=1 members=5"
        );
        assert_eq!(
            c.request("MEMBERS 2 LIMIT 3").unwrap(),
            "OK epoch=1 total=6 offset=0 count=3 members=0,1,2"
        );
        // Past-the-end page is empty, not an error.
        assert_eq!(
            c.request("MEMBERS 2 OFFSET 9 LIMIT 3").unwrap(),
            "OK epoch=1 total=6 offset=9 count=0 members="
        );
        // Pages concatenate to the unpaginated answer.
        let full = c.request("MEMBERS 2").unwrap();
        let full_ids = full.split("members=").nth(1).unwrap().to_string();
        let mut pages = Vec::new();
        for o in (0..6).step_by(2) {
            let page = c.request(&format!("MEMBERS 2 OFFSET {o} LIMIT 2")).unwrap();
            pages.push(page.split("members=").nth(1).unwrap().to_string());
        }
        assert_eq!(pages.join(","), full_ids);
        // Paginated TOPK yields ranks offset..offset+n.
        assert_eq!(
            c.request("TOPK 2 OFFSET 1").unwrap(),
            "OK epoch=1 offset=1 top=1:2,2:2"
        );
        assert_eq!(
            c.request("TOPK 10 OFFSET 5").unwrap(),
            "OK epoch=1 offset=5 top=5:2"
        );
    }

    #[test]
    fn binary_mode_matches_text_answers() {
        let (_svc, server) = service_on_cycle();
        let mut bin = WireClient::connect(server.local_addr())
            .unwrap()
            .into_binary()
            .unwrap();

        let r = bin.roundtrip(&BinRequest::Epoch).unwrap();
        assert!(r.ok);
        assert_eq!(r.epoch, 1);
        assert_eq!(r.epoch_info().unwrap(), (6, 6, 2));

        let r = bin.roundtrip(&BinRequest::Coreness(3)).unwrap();
        assert_eq!(r.coreness().unwrap(), (2, 2));
        let r = bin.roundtrip(&BinRequest::Coreness(99)).unwrap();
        assert!(!r.ok);
        assert_eq!(r.text().unwrap(), "node 99 out of range");

        let r = bin
            .roundtrip(&BinRequest::Members {
                k: 2,
                offset: 0,
                limit: u64::MAX,
            })
            .unwrap();
        assert_eq!(r.members().unwrap(), (6, 0, vec![0, 1, 2, 3, 4, 5]));
        let r = bin
            .roundtrip(&BinRequest::Members {
                k: 2,
                offset: 2,
                limit: 2,
            })
            .unwrap();
        assert_eq!(r.members().unwrap(), (6, 2, vec![2, 3]));

        let r = bin.roundtrip(&BinRequest::Hist).unwrap();
        assert_eq!(r.hist().unwrap(), vec![(0, 0), (1, 0), (2, 6)]);

        let r = bin
            .roundtrip(&BinRequest::TopK { n: 2, offset: 0 })
            .unwrap();
        assert_eq!(r.top().unwrap(), vec![(0, 2), (1, 2)]);
        let r = bin
            .roundtrip(&BinRequest::TopK { n: 2, offset: 1 })
            .unwrap();
        assert_eq!(r.top().unwrap(), vec![(1, 2), (2, 2)]);

        let r = bin.roundtrip(&BinRequest::Subgraph(2)).unwrap();
        let (nodes, edges) = r.subgraph().unwrap();
        assert_eq!(nodes, 6);
        assert_eq!(edges.len(), 6);
        let rebuilt = Graph::from_edges(6, edges).unwrap();
        assert!(rebuilt.nodes().all(|u| rebuilt.degree(u) == 2));

        let r = bin.roundtrip(&BinRequest::Health).unwrap();
        assert!(r.ok);
        assert_eq!(r.text().unwrap(), "status=healthy");

        let r = bin.roundtrip(&BinRequest::Quit).unwrap();
        assert!(r.ok);
        assert!(r.payload.is_empty());
        assert!(bin.recv().is_err(), "connection closes after QUIT");
    }

    #[test]
    fn pipelined_binary_requests_are_answered_in_send_order() {
        let (_svc, server) = service_on_cycle();
        let mut bin = WireClient::connect(server.local_addr())
            .unwrap()
            .into_binary()
            .unwrap();
        // Queue many heterogeneous requests without reading a single
        // response, then drain: every response must echo its request id
        // in send order and decode correctly.
        let mut expected = Vec::new();
        for round in 0..8u32 {
            expected.push((bin.send(&BinRequest::Epoch).unwrap(), 0u8));
            expected.push((bin.send(&BinRequest::Coreness(round % 6)).unwrap(), 1));
            expected.push((
                bin.send(&BinRequest::Members {
                    k: 2,
                    offset: u64::from(round),
                    limit: 2,
                })
                .unwrap(),
                2,
            ));
            expected.push((
                bin.send(&BinRequest::TopK {
                    n: 3,
                    offset: u64::from(round),
                })
                .unwrap(),
                3,
            ));
        }
        for (id, kind) in expected {
            let r = bin.recv().unwrap();
            assert_eq!(r.req_id, id, "responses arrive in send order");
            assert!(r.ok);
            assert_eq!(r.epoch, 1);
            match kind {
                0 => assert_eq!(r.epoch_info().unwrap(), (6, 6, 2)),
                1 => assert_eq!(r.coreness().unwrap().0, 2),
                2 => assert!(r.members().is_some()),
                _ => assert!(r.top().is_some()),
            }
        }
    }

    #[test]
    fn response_cache_hits_within_an_epoch_and_refreshes_across_flips() {
        let (mut svc, server) = service_on_cycle();
        let mut c = WireClient::connect(server.local_addr()).unwrap();
        let first = c.request("MEMBERS 2 OFFSET 0 LIMIT 3").unwrap();
        let baseline = server.cache_stats();
        assert!(baseline.misses >= 1);
        // Same query again (case-insensitively canonicalized): a hit.
        let second = c.request("members 2 offset 0 limit 3").unwrap();
        assert_eq!(first, second);
        let hit = server.cache_stats();
        assert_eq!(hit.hits, baseline.hits + 1);
        assert_eq!(hit.misses, baseline.misses);
        // CORENESS is never cached.
        c.request("CORENESS 3").unwrap();
        c.request("CORENESS 3").unwrap();
        assert_eq!(server.cache_stats().hits, hit.hits);

        // Publish a new epoch: the same query must be answered fresh —
        // the epoch in the key makes stale hits impossible.
        let mut b = EdgeBatch::new();
        b.insert(NodeId(1), NodeId(4));
        svc.apply_batch(&b).unwrap();
        let after = c.request("MEMBERS 2 OFFSET 0 LIMIT 3").unwrap();
        assert!(after.starts_with("OK epoch=2 "), "{after}");
        let flipped = server.cache_stats();
        assert_eq!(flipped.hits, hit.hits, "no stale hit across the flip");
        assert!(flipped.misses > hit.misses);

        // The binary mode shares the same cache: a repeated framed
        // MEMBERS is a hit, and its epoch is the fresh one.
        let mut bin = WireClient::connect(server.local_addr())
            .unwrap()
            .into_binary()
            .unwrap();
        let req = BinRequest::Members {
            k: 2,
            offset: 0,
            limit: 3,
        };
        let r1 = bin.roundtrip(&req).unwrap();
        let r2 = bin.roundtrip(&req).unwrap();
        assert_eq!(r1.epoch, 2);
        assert_eq!(r1.members(), r2.members());
        let binned = server.cache_stats();
        assert!(binned.hits > flipped.hits);
    }

    #[test]
    fn metrics_and_events_expose_live_telemetry_over_text() {
        let (_svc, server) = service_on_cycle();
        let mut c = WireClient::connect(server.local_addr()).unwrap();
        c.request("EPOCH").unwrap(); // tick one per-verb counter + a cache miss

        let lines = c.request_metrics().unwrap();
        let header = &lines[0];
        assert!(header.starts_with("OK epoch=1 lines="), "{header}");
        assert_eq!(
            lines.len() - 1,
            header
                .split_ascii_whitespace()
                .find_map(|t| t.strip_prefix("lines="))
                .and_then(|v| v.parse::<usize>().ok())
                .unwrap(),
            "header announces the exact body length"
        );
        let body = lines[1..].join("\n");
        // One exposition covers the whole stack: publish path, wire
        // per-verb counters, and cache counters from the same registry.
        assert!(body.contains("serve_publish_batches 1"), "{body}");
        assert!(
            body.contains("serve_wire_requests{verb=\"epoch\"} 1"),
            "{body}"
        );
        assert!(body.contains("serve_wire_cache_misses 1"), "{body}");

        // The flight recorder holds the batch-applied/epoch-published
        // pair from the one publish; SINCE and LIMIT page through it.
        let all = c.request_events(0, None).unwrap();
        assert!(
            all[0].starts_with("OK epoch=1 count=2 last=2"),
            "{:?}",
            all[0]
        );
        assert!(
            all[1].contains("kind=batch-applied shard=0 epoch=1"),
            "{:?}",
            all[1]
        );
        assert!(
            all[2].contains("kind=epoch-published shard=0 epoch=1"),
            "{:?}",
            all[2]
        );
        let page = c.request_events(0, Some(1)).unwrap();
        assert!(
            page[0].starts_with("OK epoch=1 count=1 last=1"),
            "{:?}",
            page[0]
        );
        let rest = c.request_events(1, None).unwrap();
        assert!(
            rest[0].starts_with("OK epoch=1 count=1 last=2"),
            "{:?}",
            rest[0]
        );
        assert_eq!(rest[1], all[2], "cursor-style resume replays the tail");
        let empty = c.request_events(2, None).unwrap();
        assert_eq!(empty[0], "OK epoch=1 count=0 last=2".to_string());

        // Malformed arguments earn ERR and the connection stays open.
        assert!(c
            .request("EVENTS SINCE")
            .unwrap()
            .starts_with("ERR SINCE requires an argument"));
        assert!(c
            .request("EVENTS BOGUS 3")
            .unwrap()
            .starts_with("ERR EVENTS: unexpected argument"));
        assert!(c.request("EPOCH").unwrap().starts_with("OK epoch=1"));
    }

    #[test]
    fn binary_metrics_and_events_mirror_the_text_verbs() {
        let (_svc, server) = service_on_cycle();
        let mut bin = WireClient::connect(server.local_addr())
            .unwrap()
            .into_binary()
            .unwrap();

        let m = bin.roundtrip(&BinRequest::Metrics).unwrap();
        assert!(m.ok);
        assert_eq!(m.epoch, 1);
        let text = m.text().unwrap();
        assert!(
            text.contains("# TYPE serve_wire_requests counter"),
            "{text}"
        );
        assert!(text.contains("serve_publish_batches 1"), "{text}");

        let all = bin
            .roundtrip(&BinRequest::Events {
                since: 0,
                limit: u64::MAX,
            })
            .unwrap();
        assert!(all.ok);
        let body = all.text().unwrap();
        assert_eq!(body.lines().count(), 2, "{body}");
        assert!(body.lines().all(|l| l.starts_with("seq=")), "{body}");
        assert!(body.contains("kind=batch-applied"), "{body}");

        // SINCE paging matches the text semantics.
        let tail = bin
            .roundtrip(&BinRequest::Events {
                since: 1,
                limit: u64::MAX,
            })
            .unwrap();
        assert_eq!(tail.text().unwrap().lines().count(), 1);
        let limited = bin
            .roundtrip(&BinRequest::Events { since: 0, limit: 1 })
            .unwrap();
        assert!(limited.text().unwrap().contains("seq=1 "));

        // A truncated EVENTS frame is an ERR response, not a dropped
        // connection.
        let mut payload = Vec::new();
        payload.extend_from_slice(&99u32.to_le_bytes());
        payload.push(OP_EVENTS);
        put_u64(&mut payload, 0); // missing the limit argument
        bin.writer
            .write_all(&u32::try_from(payload.len()).unwrap().to_le_bytes())
            .unwrap();
        bin.writer.write_all(&payload).unwrap();
        bin.writer.flush().unwrap();
        let err = bin.recv().unwrap();
        assert!(!err.ok);
        assert_eq!(err.req_id, 99);
        assert!(err.text().unwrap().contains("truncated frame"));
        assert!(bin.roundtrip(&BinRequest::Epoch).unwrap().ok);
    }
}
