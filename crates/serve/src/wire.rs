//! Minimal std-only TCP line protocol over a [`ServiceHandle`] — the
//! wire front end behind `dkcore serve` / `dkcore query`.
//!
//! One UTF-8 command per line; every response starts with `OK` or `ERR`.
//! All answers are served from the latest published epoch, and every
//! `OK` response carries `epoch=<e>` so a client can correlate answers:
//!
//! | request | response |
//! |---------|----------|
//! | `EPOCH` | `OK epoch=<e> nodes=<n> edges=<m> kmax=<k>` |
//! | `CORENESS <v>` | `OK epoch=<e> coreness=<c> degree=<d>` |
//! | `MEMBERS <k>` | `OK epoch=<e> count=<c> members=<v1,v2,...>` |
//! | `SUBGRAPH <k>` | `OK epoch=<e> nodes=<n> edges=<m>`, then `m` lines `u v` (original ids) |
//! | `HIST` | `OK epoch=<e> hist=<k:count,...>` (non-empty shells) |
//! | `TOPK <n>` | `OK epoch=<e> top=<v:c,...>` |
//! | `HEALTH` | `OK epoch=<e> status=healthy` \| `status=degraded down=<shard>:<lag>,...` \| `status=writer-dead` |
//! | `QUIT` | `OK bye`, connection closes |
//! | `SHUTDOWN` | `OK shutting-down`, server stops accepting |
//!
//! `HEALTH` is answered from the live writer-health slot rather than a
//! pinned snapshot: queries keep succeeding against the last published
//! epoch even when the writer is dead or a partition has failed over,
//! so health is the one piece of state a client cannot infer from query
//! responses alone.
//!
//! Malformed input earns `ERR <reason>` and the connection stays open.
//! Each accepted connection is served by its own thread; queries pin one
//! snapshot per request, so a multi-line `SUBGRAPH` answer is internally
//! consistent even while the writer publishes new epochs mid-response.

use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use dkcore_graph::NodeId;

use crate::view::{EpochView, SnapshotSource};

/// A running wire server: accept loop plus per-connection threads.
///
/// Stops when [`shutdown`](Self::shutdown) is called or a client sends
/// `SHUTDOWN`. Dropping the server also shuts it down.
#[derive(Debug)]
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

/// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and starts
/// serving `handle`'s snapshots — either a single-writer
/// [`ServiceHandle`](crate::ServiceHandle) or a sharded
/// [`ShardedHandle`](crate::ShardedHandle); the protocol is identical.
///
/// Robustness contract (regression-tested by
/// `killing_a_client_mid_subgraph_leaves_the_listener_healthy`): no
/// client behavior can wedge the listener. An abrupt disconnect
/// mid-response surfaces as a write-side `BrokenPipe`/`ConnectionReset`
/// `io::Error` that ends only that connection; a panic inside a
/// connection thread is caught at the thread boundary (no shared state
/// is held across request handling, so nothing can be poisoned); and a
/// connection-thread *spawn* failure under resource exhaustion drops
/// that one connection instead of unwinding the accept loop.
///
/// # Errors
///
/// Returns the I/O error from binding the listener.
pub fn serve<S: SnapshotSource, A: ToSocketAddrs>(handle: S, addr: A) -> io::Result<WireServer> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = stop.clone();
    let accept_thread = std::thread::spawn(move || {
        for conn in listener.incoming() {
            if accept_stop.load(Ordering::Acquire) {
                break;
            }
            let Ok(stream) = conn else { continue };
            let handle = handle.clone();
            let stop = accept_stop.clone();
            // Builder::spawn (not thread::spawn): a spawn failure under
            // fd/thread exhaustion must drop this connection, not panic
            // the accept loop and silently wedge the listener.
            let spawned = std::thread::Builder::new()
                .name("dkcore-wire-conn".into())
                .spawn(move || {
                    // Connection I/O errors end that connection; a panic
                    // (always a bug, but contained) must not take anything
                    // else with it — there is nothing to poison because
                    // each request pins its own immutable snapshot. The
                    // payload is logged so the bug is debuggable.
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let _ = serve_connection(stream, &handle, &stop);
                    }));
                    if let Err(payload) = result {
                        let msg = payload
                            .downcast_ref::<&str>()
                            .map(|s| s.to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".into());
                        eprintln!("dkcore-wire: connection thread panicked (contained): {msg}");
                    }
                });
            drop(spawned); // Err(_) = connection dropped, listener lives on.
        }
    });
    Ok(WireServer {
        addr,
        stop,
        accept_thread: Some(accept_thread),
    })
}

impl WireServer {
    /// The bound address (useful with ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound port.
    pub fn port(&self) -> u16 {
        self.addr.port()
    }

    /// Whether the server has been asked to stop.
    pub fn is_shutdown(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Blocks until the server is asked to stop (via
    /// [`shutdown`](Self::shutdown) from another thread or a client's
    /// `SHUTDOWN` command).
    pub fn wait(&self) {
        while !self.is_shutdown() {
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    /// Stops accepting connections and joins the accept loop. Idempotent.
    /// In-flight connections finish their current request and then see
    /// the stop flag at the next one.
    pub fn shutdown(&mut self) {
        request_stop(&self.stop, self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Sets the stop flag and nudges the accept loop out of `accept()` with
/// a throwaway connection.
fn request_stop(stop: &AtomicBool, addr: SocketAddr) {
    if !stop.swap(true, Ordering::AcqRel) {
        let _ = TcpStream::connect(addr);
    }
}

/// Serves one client connection until `QUIT`, EOF, shutdown, or an I/O
/// error.
///
/// Every fully-received request is answered — even one that races with
/// shutdown — so a client never loses a response it was owed. The stop
/// flag is observed between requests via a read timeout, which also
/// lets *idle* connections wind down shortly after shutdown instead of
/// blocking in `read_line` forever.
fn serve_connection<S: SnapshotSource>(
    stream: TcpStream,
    handle: &S,
    stop: &Arc<AtomicBool>,
) -> io::Result<()> {
    let peer_addr = stream.local_addr()?;
    stream.set_read_timeout(Some(Duration::from_millis(200)))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        line.clear();
        loop {
            match reader.read_line(&mut line) {
                Ok(0) => return Ok(()), // EOF
                Ok(_) => break,         // full line: always answer it
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    // Idle tick: partial bytes (if any) stay in `line`.
                    if stop.load(Ordering::Acquire) {
                        return Ok(());
                    }
                }
                Err(e) => return Err(e),
            }
        }
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        let mut parts = request.split_ascii_whitespace();
        let verb = parts.next().unwrap_or("").to_ascii_uppercase();
        match verb.as_str() {
            "QUIT" => {
                writeln!(writer, "OK bye")?;
                writer.flush()?;
                return Ok(());
            }
            "SHUTDOWN" => {
                writeln!(writer, "OK shutting-down")?;
                writer.flush()?;
                request_stop(stop, peer_addr);
                return Ok(());
            }
            // Health comes from the live writer-health slot, not a
            // pinned snapshot — it describes the writer, not an epoch's
            // query surface, so it is handled alongside the other
            // connection-level verbs.
            "HEALTH" => {
                let h = handle.health();
                writeln!(writer, "OK epoch={} {}", h.epoch, h.status_line())?;
            }
            _ => respond(&mut writer, &verb, parts, &*handle.snapshot())?,
        }
        writer.flush()?;
    }
}

/// Answers one query against a pinned snapshot (either backend).
fn respond<W: Write, V: EpochView + ?Sized>(
    out: &mut W,
    verb: &str,
    mut args: std::str::SplitAsciiWhitespace<'_>,
    snap: &V,
) -> io::Result<()> {
    let epoch = snap.epoch();
    let mut num = |name: &str| -> Result<u32, String> {
        let token = args
            .next()
            .ok_or_else(|| format!("{name} requires an argument"))?;
        token
            .parse::<u32>()
            .map_err(|_| format!("{name}: {token:?} is not a number"))
    };
    match verb {
        "EPOCH" => writeln!(
            out,
            "OK epoch={epoch} nodes={} edges={} kmax={}",
            snap.node_count(),
            snap.edge_count(),
            snap.max_coreness()
        ),
        "CORENESS" => match num("CORENESS") {
            Ok(v) => match snap.coreness(NodeId(v)) {
                Some(c) => writeln!(
                    out,
                    "OK epoch={epoch} coreness={c} degree={}",
                    snap.degree(NodeId(v)).expect("in range with coreness")
                ),
                None => writeln!(out, "ERR node {v} out of range"),
            },
            Err(e) => writeln!(out, "ERR {e}"),
        },
        "MEMBERS" => match num("MEMBERS") {
            Ok(k) => {
                let members = snap.kcore_members(k);
                let ids: Vec<String> = members.iter().map(|v| v.0.to_string()).collect();
                writeln!(
                    out,
                    "OK epoch={epoch} count={} members={}",
                    members.len(),
                    ids.join(",")
                )
            }
            Err(e) => writeln!(out, "ERR {e}"),
        },
        "SUBGRAPH" => match num("SUBGRAPH") {
            Ok(k) => {
                let (sub, back) = snap.kcore_subgraph(k);
                writeln!(
                    out,
                    "OK epoch={epoch} nodes={} edges={}",
                    sub.node_count(),
                    sub.edge_count()
                )?;
                for (u, v) in sub.edges() {
                    writeln!(out, "{} {}", back[u.index()], back[v.index()])?;
                }
                Ok(())
            }
            Err(e) => writeln!(out, "ERR {e}"),
        },
        "HIST" => {
            let shells: Vec<String> = snap
                .histogram()
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(k, &c)| format!("{k}:{c}"))
                .collect();
            writeln!(out, "OK epoch={epoch} hist={}", shells.join(","))
        }
        "TOPK" => match num("TOPK") {
            Ok(n) => {
                let pairs: Vec<String> = snap
                    .top_k(n as usize)
                    .iter()
                    .map(|&(v, c)| format!("{}:{c}", v.0))
                    .collect();
                writeln!(out, "OK epoch={epoch} top={}", pairs.join(","))
            }
            Err(e) => writeln!(out, "ERR {e}"),
        },
        other => writeln!(
            out,
            "ERR unknown command {other:?}; known: EPOCH CORENESS MEMBERS SUBGRAPH HIST TOPK HEALTH QUIT SHUTDOWN"
        ),
    }
}

/// Client-side robustness knobs: per-operation I/O timeouts and a
/// bounded reconnect-and-retry loop with exponential backoff.
///
/// Without timeouts a hung or mid-shutdown server blocks the client in
/// `read` forever; without retry a transient refusal (server still
/// binding, listener backlog full) is a hard failure. The defaults are
/// tuned for an interactive CLI: fail within a few seconds, never hang.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total connection attempts (≥ 1); each attempt reconnects fresh.
    pub attempts: u32,
    /// Read/write timeout applied to every socket operation.
    pub io_timeout: Duration,
    /// Base backoff between attempts; attempt `n` waits `base << (n-1)`
    /// (capped at 16× base).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            io_timeout: Duration::from_secs(5),
            backoff: Duration::from_millis(100),
        }
    }
}

/// Transient error kinds worth a reconnect: the server may be starting
/// up, shutting down one connection, or briefly stalled. Anything else
/// (e.g. a malformed-response `InvalidData`) fails immediately.
fn is_retryable(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::TimedOut
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::NotConnected
            | io::ErrorKind::UnexpectedEof
    )
}

/// Blocking line-protocol client, for the CLI and tests.
#[derive(Debug)]
pub struct WireClient {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl WireClient {
    /// Connects to a running [`WireServer`] with no I/O timeouts (reads
    /// block indefinitely). Prefer [`connect_with`](Self::connect_with)
    /// anywhere a hung server must not hang the caller.
    ///
    /// # Errors
    ///
    /// Returns the underlying connection error.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        Ok(WireClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Connects with `policy.io_timeout` applied to every subsequent
    /// read and write, so a stalled server surfaces as a
    /// `TimedOut`/`WouldBlock` error instead of blocking forever. The
    /// connect itself is a single attempt — the retry loop lives in
    /// [`request_retrying`](Self::request_retrying).
    ///
    /// # Errors
    ///
    /// Returns the underlying connection or socket-option error.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, policy: &RetryPolicy) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(policy.io_timeout))?;
        stream.set_write_timeout(Some(policy.io_timeout))?;
        Ok(WireClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// One-shot request with bounded retry: connect fresh, send
    /// `command`, read the one-line response; on a transient failure
    /// (timeout, refused/reset/aborted connection, broken pipe,
    /// unexpected EOF) back off exponentially and try again, up to
    /// `policy.attempts` total attempts. Reconnecting per attempt is
    /// deliberate — after a timeout the old connection's response could
    /// still arrive later and would desynchronize a reused stream.
    ///
    /// # Errors
    ///
    /// Returns the last transient error once attempts are exhausted, or
    /// the first non-retryable error immediately.
    pub fn request_retrying<A: ToSocketAddrs>(
        addr: A,
        command: &str,
        policy: &RetryPolicy,
    ) -> io::Result<String> {
        let mut last: Option<io::Error> = None;
        for attempt in 0..policy.attempts.max(1) {
            if attempt > 0 {
                std::thread::sleep(policy.backoff * (1u32 << (attempt - 1).min(4)));
            }
            match Self::connect_with(&addr, policy).and_then(|mut c| c.request(command)) {
                Ok(response) => return Ok(response),
                Err(e) if is_retryable(&e) => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        Err(last.unwrap_or_else(|| io::Error::other("no connection attempts made")))
    }

    /// Sends one command line and returns the one-line response.
    ///
    /// # Errors
    ///
    /// Returns I/O errors, including an unexpected EOF.
    pub fn request(&mut self, command: &str) -> io::Result<String> {
        writeln!(self.writer, "{command}")?;
        self.writer.flush()?;
        self.read_line()
    }

    /// Sends one command and reads a header line plus, when the header
    /// is `OK ... edges=<m>` for a `SUBGRAPH` request, `m` follow-up
    /// lines. Returns all lines, header first.
    ///
    /// # Errors
    ///
    /// Returns I/O errors, including an unexpected EOF mid-body.
    pub fn request_subgraph(&mut self, k: u32) -> io::Result<Vec<String>> {
        writeln!(self.writer, "SUBGRAPH {k}")?;
        self.writer.flush()?;
        let header = self.read_line()?;
        let mut lines = vec![header.clone()];
        if header.starts_with("OK") {
            let edges: usize = header
                .split_ascii_whitespace()
                .find_map(|t| t.strip_prefix("edges="))
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "malformed SUBGRAPH header")
                })?;
            for _ in 0..edges {
                lines.push(self.read_line()?);
            }
        }
        Ok(lines)
    }

    fn read_line(&mut self) -> io::Result<String> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(line.trim_end().to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreService;
    use dkcore::stream::EdgeBatch;
    use dkcore_graph::generators::path;
    use dkcore_graph::Graph;

    fn service_on_cycle() -> (CoreService, WireServer) {
        let mut svc = CoreService::new(&path(6));
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(5)); // epoch 1: a 6-cycle, all coreness 2
        svc.apply_batch(&b).unwrap();
        let server = serve(svc.handle(), "127.0.0.1:0").unwrap();
        (svc, server)
    }

    #[test]
    fn full_query_conversation() {
        let (_svc, server) = service_on_cycle();
        let mut c = WireClient::connect(server.local_addr()).unwrap();
        assert_eq!(
            c.request("EPOCH").unwrap(),
            "OK epoch=1 nodes=6 edges=6 kmax=2"
        );
        assert_eq!(
            c.request("CORENESS 3").unwrap(),
            "OK epoch=1 coreness=2 degree=2"
        );
        assert_eq!(
            c.request("MEMBERS 2").unwrap(),
            "OK epoch=1 count=6 members=0,1,2,3,4,5"
        );
        assert_eq!(c.request("HIST").unwrap(), "OK epoch=1 hist=2:6");
        assert_eq!(c.request("TOPK 2").unwrap(), "OK epoch=1 top=0:2,1:2");
        let sub = c.request_subgraph(2).unwrap();
        assert_eq!(sub[0], "OK epoch=1 nodes=6 edges=6");
        assert_eq!(sub.len(), 7);
        // The body lines are valid original-id edges of the cycle.
        let edges: Vec<(u32, u32)> = sub[1..]
            .iter()
            .map(|l| {
                let mut it = l.split_ascii_whitespace();
                (
                    it.next().unwrap().parse().unwrap(),
                    it.next().unwrap().parse().unwrap(),
                )
            })
            .collect();
        let rebuilt = Graph::from_edges(6, edges).unwrap();
        assert!(rebuilt.nodes().all(|u| rebuilt.degree(u) == 2));
        assert_eq!(c.request("QUIT").unwrap(), "OK bye");
    }

    #[test]
    fn error_paths_keep_the_connection_open() {
        let (_svc, server) = service_on_cycle();
        let mut c = WireClient::connect(server.local_addr()).unwrap();
        assert_eq!(
            c.request("CORENESS 99").unwrap(),
            "ERR node 99 out of range"
        );
        assert!(c.request("CORENESS").unwrap().starts_with("ERR"));
        assert!(c.request("CORENESS xyz").unwrap().starts_with("ERR"));
        assert!(c.request("FROBNICATE 1").unwrap().starts_with("ERR"));
        // Still serving after all those errors.
        assert!(c.request("EPOCH").unwrap().starts_with("OK epoch=1"));
    }

    #[test]
    fn concurrent_clients_see_consistent_epochs() {
        let (mut svc, server) = service_on_cycle();
        let addr = server.local_addr();
        let readers: Vec<_> = (0..3)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut c = WireClient::connect(addr).unwrap();
                    for _ in 0..20 {
                        let r = c.request("EPOCH").unwrap();
                        assert!(r.starts_with("OK epoch="), "{r}");
                        let h = c.request("HIST").unwrap();
                        assert!(h.starts_with("OK epoch="), "{h}");
                    }
                })
            })
            .collect();
        // Writer churns concurrently.
        for (u, v) in [(1u32, 4u32), (2, 5), (0, 3)] {
            let mut b = EdgeBatch::new();
            b.insert(NodeId(u), NodeId(v));
            svc.apply_batch(&b).unwrap();
        }
        for r in readers {
            r.join().unwrap();
        }
    }

    #[test]
    fn shutdown_command_stops_the_server() {
        let (_svc, server) = service_on_cycle();
        let mut c = WireClient::connect(server.local_addr()).unwrap();
        assert_eq!(c.request("SHUTDOWN").unwrap(), "OK shutting-down");
        server.wait(); // returns because the client stopped the server
        assert!(server.is_shutdown());
    }

    #[test]
    fn requests_racing_shutdown_are_still_answered() {
        // An already-open connection must never lose a response it is
        // owed: after another client shuts the server down, a request on
        // the surviving connection is still answered (the connection
        // then winds down at its next idle read).
        let (_svc, server) = service_on_cycle();
        let mut a = WireClient::connect(server.local_addr()).unwrap();
        assert!(a.request("EPOCH").unwrap().starts_with("OK"));
        let mut b = WireClient::connect(server.local_addr()).unwrap();
        assert_eq!(b.request("SHUTDOWN").unwrap(), "OK shutting-down");
        server.wait();
        assert_eq!(a.request("HIST").unwrap(), "OK epoch=1 hist=2:6");
    }

    #[test]
    fn killing_a_client_mid_subgraph_leaves_the_listener_healthy() {
        // A client that requests a large multi-line SUBGRAPH response and
        // disconnects abruptly mid-body produces a write-side
        // BrokenPipe/ConnectionReset in its connection thread. That must
        // end *only* that connection: the listener keeps accepting and
        // other clients get complete, correct answers.
        use dkcore_graph::generators::gnp;
        use std::io::Read as _;

        let g = gnp(600, 0.05, 42); // thousands of body lines
        let svc = crate::CoreService::new(&g);
        let server = serve(svc.handle(), "127.0.0.1:0").unwrap();
        let addr = server.local_addr();

        for round in 0..4 {
            let mut raw = TcpStream::connect(addr).unwrap();
            raw.write_all(b"SUBGRAPH 0\n").unwrap();
            raw.flush().unwrap();
            // Read a few bytes of the header so the server is committed to
            // streaming the body, then kill the connection outright.
            let mut buf = [0u8; 16];
            let n = raw.read(&mut buf).unwrap();
            assert!(n > 0, "round {round}: server started responding");
            raw.shutdown(std::net::Shutdown::Both).ok();
            drop(raw); // server's in-flight body writes now fail

            // The listener must still serve full conversations.
            let mut c = WireClient::connect(addr).unwrap();
            let e = c.request("EPOCH").unwrap();
            assert!(e.starts_with("OK epoch=0"), "round {round}: {e}");
            let sub = c.request_subgraph(1).unwrap();
            assert!(sub[0].starts_with("OK epoch=0"), "round {round}");
            assert_eq!(c.request("QUIT").unwrap(), "OK bye");
        }
        assert!(
            !server.is_shutdown(),
            "client kills must not stop the server"
        );
    }

    #[test]
    fn sharded_backend_serves_the_same_protocol() {
        use crate::ShardedCoreService;

        let mut svc = ShardedCoreService::new(&path(6), 2);
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(5)); // epoch 1: a 6-cycle, all coreness 2
        svc.apply_batch(&b).unwrap();
        let server = serve(svc.handle(), "127.0.0.1:0").unwrap();
        let mut c = WireClient::connect(server.local_addr()).unwrap();
        assert_eq!(
            c.request("EPOCH").unwrap(),
            "OK epoch=1 nodes=6 edges=6 kmax=2"
        );
        assert_eq!(
            c.request("CORENESS 3").unwrap(),
            "OK epoch=1 coreness=2 degree=2"
        );
        assert_eq!(
            c.request("MEMBERS 2").unwrap(),
            "OK epoch=1 count=6 members=0,1,2,3,4,5"
        );
        assert_eq!(c.request("HIST").unwrap(), "OK epoch=1 hist=2:6");
        assert_eq!(c.request("TOPK 2").unwrap(), "OK epoch=1 top=0:2,1:2");
        let sub = c.request_subgraph(2).unwrap();
        assert_eq!(sub[0], "OK epoch=1 nodes=6 edges=6");
        assert_eq!(c.request("QUIT").unwrap(), "OK bye");
    }

    #[test]
    fn health_verb_reports_healthy_and_degraded_states() {
        // Single-writer backend: healthy after a publish.
        let (_svc, server) = service_on_cycle();
        let mut c = WireClient::connect(server.local_addr()).unwrap();
        assert_eq!(c.request("HEALTH").unwrap(), "OK epoch=1 status=healthy");

        // Sharded backend with no replicas: killing a primary leaves the
        // partition down, and HEALTH names it while queries keep
        // answering from the last consistent epoch.
        use crate::{ShardedConfig, ShardedCoreService};
        let mut svc = ShardedCoreService::with_config(&path(6), 2, ShardedConfig::default());
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(5));
        svc.apply_batch(&b).unwrap();
        assert!(!svc.kill_primary(0), "no replica: partition goes down");
        let mut b = EdgeBatch::new();
        b.insert(NodeId(1), NodeId(4));
        svc.apply_batch(&b).unwrap(); // deferred: lag of 1
        let server = serve(svc.handle(), "127.0.0.1:0").unwrap();
        let mut c = WireClient::connect(server.local_addr()).unwrap();
        assert_eq!(
            c.request("HEALTH").unwrap(),
            "OK epoch=1 status=degraded down=0:1"
        );
        assert!(c.request("EPOCH").unwrap().starts_with("OK epoch=1"));
    }

    #[test]
    fn stalled_server_requests_fail_within_the_timeout() {
        // Regression: a server that accepts but never responds used to
        // block `dkcore query` forever. With a RetryPolicy the request
        // must fail with a transient error in bounded time.
        use std::time::Instant;

        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let stall = std::thread::spawn(move || {
            // Accept every connection and hold it open, never replying.
            let mut held = Vec::new();
            while let Ok((s, _)) = listener.accept() {
                held.push(s);
                if held.len() >= 3 {
                    break;
                }
            }
            held
        });

        let policy = RetryPolicy {
            attempts: 2,
            io_timeout: Duration::from_millis(100),
            backoff: Duration::from_millis(10),
        };
        let t0 = Instant::now();
        let err = WireClient::request_retrying(addr, "EPOCH", &policy).unwrap_err();
        assert!(is_retryable(&err), "stall must surface as transient: {err}");
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "bounded time, not a hang"
        );
        drop(stall); // detach: the holder thread ends with the test process
    }

    #[test]
    fn retrying_request_survives_a_transient_connection_drop() {
        // First accepted connection is dropped before any response
        // (client sees EOF/reset); the second is answered. The retry
        // loop must reconnect and succeed.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let fake = std::thread::spawn(move || {
            let (first, _) = listener.accept().unwrap();
            drop(first); // transient failure
            let (second, _) = listener.accept().unwrap();
            let mut r = BufReader::new(second.try_clone().unwrap());
            let mut line = String::new();
            r.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "EPOCH");
            let mut w = BufWriter::new(second);
            writeln!(w, "OK epoch=7 nodes=0 edges=0 kmax=0").unwrap();
            w.flush().unwrap();
        });

        let policy = RetryPolicy {
            attempts: 3,
            io_timeout: Duration::from_secs(2),
            backoff: Duration::from_millis(10),
        };
        let r = WireClient::request_retrying(addr, "EPOCH", &policy).unwrap();
        assert_eq!(r, "OK epoch=7 nodes=0 edges=0 kmax=0");
        fake.join().unwrap();
    }

    #[test]
    fn explicit_shutdown_is_idempotent() {
        let (_svc, mut server) = service_on_cycle();
        assert!(!server.is_shutdown());
        server.shutdown();
        assert!(server.is_shutdown());
        server.shutdown(); // second call is a no-op
        assert!(WireClient::connect(server.local_addr())
            .and_then(|mut c| c.request("EPOCH"))
            .is_err());
    }
}
