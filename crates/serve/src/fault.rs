//! Deterministic fault injection for the sharded serving stack.
//!
//! A [`FaultPlan`] is a *seeded schedule* of faults: probabilistic
//! message fates (drop / duplicate / delay) for the border-estimate
//! exchange, plus one-shot writer faults (`kill`, `stall`) pinned to a
//! specific shard, epoch, and optionally an exchange round. Because the
//! schedule is driven by a seeded [`StdRng`], a run under a given plan
//! is exactly reproducible — the chaos oracle and the CI seed matrix
//! depend on this.
//!
//! # Which messages are faultable
//!
//! The sharded repair protocol (see [`crate::sharded`]) moves two kinds
//! of inter-shard messages:
//!
//! - **Seed messages** at batch start, which *raise* a receiver's cached
//!   bound for a border node back to a safe upper bound. These ride the
//!   reliable control plane and are **never** faulted: the paper's
//!   monotone-descent argument only tolerates stale values that are too
//!   *high*. Losing a seed would leave a receiver computing from a bound
//!   that is too low, and no amount of further descent can repair that.
//! - **Drop announcements** during exchange rounds, which *lower* a
//!   cached bound. These are the lossy data plane this module targets:
//!   delivery applies `min`, so duplicates and reordering are idempotent
//!   and a lost copy is safely re-sent (the value it carries is an upper
//!   bound until it arrives).
//!
//! Writer faults model process death: a `kill` removes a shard's primary
//! writer at a batch boundary (or after a given exchange round), and a
//! `stall` makes a writer miss heartbeats for a number of rounds — if it
//! misses more than the configured timeout it is declared dead and
//! failover proceeds as for a kill.

use rand::prelude::*;

/// What the faulty transport decides to do with one border message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Fate {
    /// Deliver in the next round, as the fault-free transport would.
    Deliver,
    /// Lose this copy; the sender's retransmit timer will re-send it.
    Drop,
    /// Deliver in the next round and again one round later.
    Duplicate,
    /// Deliver after this many extra rounds.
    Delay(u32),
}

/// A one-shot primary-writer kill: shard `shard` dies while working on
/// `epoch` — at the batch boundary if `round` is `None`, otherwise right
/// after exchange round `round` completes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KillSpec {
    /// The shard whose primary dies.
    pub shard: u32,
    /// The epoch (batch number, 1-based) being attempted when it dies.
    pub epoch: u64,
    /// `None`: dies before the batch starts. `Some(r)`: dies after
    /// exchange round `r` of that batch.
    pub round: Option<u32>,
}

/// A one-shot writer stall: shard `shard` stops draining (and misses
/// heartbeats) for `rounds` exchange rounds while working on `epoch`.
/// If `rounds` exceeds the service's heartbeat timeout the writer is
/// declared dead and failover runs; otherwise the round clock simply
/// ticks until it wakes up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallSpec {
    /// The shard whose primary stalls.
    pub shard: u32,
    /// The epoch (batch number, 1-based) during which it stalls.
    pub epoch: u64,
    /// How many exchange rounds it stays unresponsive.
    pub rounds: u32,
}

/// A seeded, deterministic fault schedule for the sharded service.
///
/// Built with [`FaultPlan::none`] (the default: a perfect network) or
/// parsed from a spec string (see [`FaultPlan::parse`]); the CLI exposes
/// the latter as `dkcore serve --fault-plan <SPEC>`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed for the fault RNG (independent of workload seeds).
    pub seed: u64,
    /// Percentage (0–100) of round messages dropped in transit.
    pub drop_pct: u32,
    /// Percentage (0–100) of round messages delivered twice.
    pub dup_pct: u32,
    /// Percentage (0–100) of round messages delayed.
    pub delay_pct: u32,
    /// Maximum extra rounds a delayed message waits (uniform in
    /// `1..=max_delay`).
    pub max_delay: u32,
    /// One-shot primary kills.
    pub kills: Vec<KillSpec>,
    /// One-shot primary stalls.
    pub stalls: Vec<StallSpec>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: every message delivered next round, no writer
    /// faults. The sharded service treats this as the fast path.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            drop_pct: 0,
            dup_pct: 0,
            delay_pct: 0,
            max_delay: 0,
            kills: Vec::new(),
            stalls: Vec::new(),
        }
    }

    /// True when the plan injects nothing at all.
    pub fn is_none(&self) -> bool {
        self.drop_pct == 0
            && self.dup_pct == 0
            && self.delay_pct == 0
            && self.kills.is_empty()
            && self.stalls.is_empty()
    }

    /// True when any probabilistic message fault is configured.
    pub(crate) fn has_message_faults(&self) -> bool {
        self.drop_pct > 0 || self.dup_pct > 0 || self.delay_pct > 0
    }

    /// Parses a fault-plan spec string.
    ///
    /// The grammar is a comma-separated list of clauses:
    ///
    /// | clause        | meaning                                         |
    /// |---------------|-------------------------------------------------|
    /// | `none`        | the empty plan (must be the only clause)        |
    /// | `seed=N`      | RNG seed for message fates (default 0)          |
    /// | `drop=P`      | drop `P`% of round messages                     |
    /// | `dup=P`       | duplicate `P`% of round messages                |
    /// | `delay=P:D`   | delay `P`% of round messages by 1..=`D` rounds  |
    /// | `kill=S@E`    | kill shard `S`'s primary entering epoch `E`     |
    /// | `kill=S@E:R`  | kill shard `S`'s primary after round `R` of `E` |
    /// | `stall=S@E:R` | stall shard `S` for `R` rounds during epoch `E` |
    ///
    /// Example: `seed=7,drop=20,delay=10:3,kill=1@5`.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let spec = spec.trim();
        let mut plan = FaultPlan::none();
        if spec.is_empty() || spec == "none" {
            return Ok(plan);
        }
        for clause in spec.split(',') {
            let clause = clause.trim();
            let (key, val) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}`: expected key=value"))?;
            match key {
                "seed" => plan.seed = parse_num(clause, val)?,
                "drop" => plan.drop_pct = parse_pct(clause, val)?,
                "dup" => plan.dup_pct = parse_pct(clause, val)?,
                "delay" => {
                    let (p, d) = val.split_once(':').ok_or_else(|| {
                        format!("fault clause `{clause}`: expected delay=PCT:ROUNDS")
                    })?;
                    plan.delay_pct = parse_pct(clause, p)?;
                    plan.max_delay = parse_num(clause, d)?;
                    if plan.delay_pct > 0 && plan.max_delay == 0 {
                        return Err(format!("fault clause `{clause}`: delay of 0 rounds"));
                    }
                }
                "kill" => {
                    let (shard, epoch, round) = parse_site(clause, val)?;
                    plan.kills.push(KillSpec {
                        shard,
                        epoch,
                        round,
                    });
                }
                "stall" => {
                    let (shard, epoch, round) = parse_site(clause, val)?;
                    let rounds = round.ok_or_else(|| {
                        format!("fault clause `{clause}`: expected stall=SHARD@EPOCH:ROUNDS")
                    })?;
                    plan.stalls.push(StallSpec {
                        shard,
                        epoch,
                        rounds,
                    });
                }
                other => return Err(format!("unknown fault clause key `{other}` in `{clause}`")),
            }
        }
        let budget = plan.drop_pct + plan.dup_pct + plan.delay_pct;
        if budget > 100 {
            return Err(format!("drop+dup+delay percentages exceed 100 ({budget})"));
        }
        Ok(plan)
    }
}

fn parse_num<T: std::str::FromStr>(clause: &str, val: &str) -> Result<T, String> {
    val.parse()
        .map_err(|_| format!("fault clause `{clause}`: bad number `{val}`"))
}

fn parse_pct(clause: &str, val: &str) -> Result<u32, String> {
    let p: u32 = parse_num(clause, val)?;
    if p > 100 {
        return Err(format!("fault clause `{clause}`: {p}% out of range"));
    }
    Ok(p)
}

/// Parses `SHARD@EPOCH` or `SHARD@EPOCH:ROUND`.
fn parse_site(clause: &str, val: &str) -> Result<(u32, u64, Option<u32>), String> {
    let (shard, rest) = val
        .split_once('@')
        .ok_or_else(|| format!("fault clause `{clause}`: expected SHARD@EPOCH[:ROUND]"))?;
    let shard = parse_num(clause, shard)?;
    match rest.split_once(':') {
        Some((epoch, round)) => Ok((
            shard,
            parse_num(clause, epoch)?,
            Some(parse_num(clause, round)?),
        )),
        None => Ok((shard, parse_num(clause, rest)?, None)),
    }
}

/// The live, mutable state of one plan: the fate RNG plus consumed-spec
/// tracking, so each `kill`/`stall` fires exactly once even when the
/// epoch is re-attempted after a rollback.
#[derive(Debug)]
pub(crate) struct FaultSession {
    plan: FaultPlan,
    rng: StdRng,
    kill_used: Vec<bool>,
    stall_used: Vec<bool>,
}

impl FaultSession {
    pub(crate) fn new(plan: FaultPlan) -> Self {
        let rng = StdRng::seed_from_u64(plan.seed ^ 0xFA17_FA17_FA17_FA17);
        let kill_used = vec![false; plan.kills.len()];
        let stall_used = vec![false; plan.stalls.len()];
        FaultSession {
            plan,
            rng,
            kill_used,
            stall_used,
        }
    }

    /// Rolls the fate of one round message.
    pub(crate) fn fate(&mut self) -> Fate {
        if !self.plan.has_message_faults() {
            return Fate::Deliver;
        }
        let roll = self.rng.random_range(0..100u32);
        if roll < self.plan.drop_pct {
            Fate::Drop
        } else if roll < self.plan.drop_pct + self.plan.dup_pct {
            Fate::Duplicate
        } else if roll < self.plan.drop_pct + self.plan.dup_pct + self.plan.delay_pct {
            Fate::Delay(self.rng.random_range(1..=self.plan.max_delay))
        } else {
            Fate::Deliver
        }
    }

    /// True when no probabilistic message fault is configured: border
    /// frames can bypass the per-message fate machinery wholesale.
    pub(crate) fn lossless(&self) -> bool {
        !self.plan.has_message_faults()
    }

    /// Consumes a matching kill spec, if any: `round == None` matches
    /// batch-boundary kills, `Some(r)` matches after-round-`r` kills.
    pub(crate) fn take_kill(&mut self, shard: u32, epoch: u64, round: Option<u32>) -> bool {
        for (i, k) in self.plan.kills.iter().enumerate() {
            if !self.kill_used[i] && k.shard == shard && k.epoch == epoch && k.round == round {
                self.kill_used[i] = true;
                return true;
            }
        }
        false
    }

    /// Consumes a matching stall spec at batch start, returning how many
    /// rounds the shard stays unresponsive.
    pub(crate) fn take_stall(&mut self, shard: u32, epoch: u64) -> Option<u32> {
        for (i, s) in self.plan.stalls.iter().enumerate() {
            if !self.stall_used[i] && s.shard == shard && s.epoch == epoch {
                self.stall_used[i] = true;
                return Some(s.rounds);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_every_clause() {
        let p = FaultPlan::parse("seed=7,drop=20,dup=5,delay=10:3,kill=1@5,kill=0@2:4,stall=2@9:6")
            .unwrap();
        assert_eq!(p.seed, 7);
        assert_eq!(p.drop_pct, 20);
        assert_eq!(p.dup_pct, 5);
        assert_eq!((p.delay_pct, p.max_delay), (10, 3));
        assert_eq!(
            p.kills,
            vec![
                KillSpec {
                    shard: 1,
                    epoch: 5,
                    round: None
                },
                KillSpec {
                    shard: 0,
                    epoch: 2,
                    round: Some(4)
                },
            ]
        );
        assert_eq!(
            p.stalls,
            vec![StallSpec {
                shard: 2,
                epoch: 9,
                rounds: 6
            }]
        );
        assert!(!p.is_none());
    }

    #[test]
    fn parse_accepts_none_and_empty() {
        assert!(FaultPlan::parse("none").unwrap().is_none());
        assert!(FaultPlan::parse("").unwrap().is_none());
        assert!(FaultPlan::parse("  ").unwrap().is_none());
        assert_eq!(FaultPlan::default(), FaultPlan::none());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "drop",
            "drop=abc",
            "drop=120",
            "delay=10",
            "delay=10:0",
            "kill=1",
            "kill=1@x",
            "stall=1@2",
            "bogus=3",
            "drop=60,dup=30,delay=20:2",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn fates_are_deterministic_per_seed_and_roughly_proportioned() {
        let plan = FaultPlan::parse("seed=11,drop=20,dup=10,delay=10:4").unwrap();
        let draw = |plan: &FaultPlan| {
            let mut s = FaultSession::new(plan.clone());
            (0..4000).map(|_| s.fate()).collect::<Vec<_>>()
        };
        let a = draw(&plan);
        let b = draw(&plan);
        assert_eq!(a, b, "same seed, same fate stream");
        let drops = a.iter().filter(|f| **f == Fate::Drop).count();
        let dups = a.iter().filter(|f| **f == Fate::Duplicate).count();
        let delays = a.iter().filter(|f| matches!(f, Fate::Delay(_))).count();
        assert!((600..=1000).contains(&drops), "drops {drops}");
        assert!((250..=550).contains(&dups), "dups {dups}");
        assert!((250..=550).contains(&delays), "delays {delays}");
        assert!(a
            .iter()
            .all(|f| !matches!(f, Fate::Delay(d) if *d == 0 || *d > 4)));

        let other = FaultPlan::parse("seed=12,drop=20,dup=10,delay=10:4").unwrap();
        assert_ne!(draw(&other), a, "different seed, different stream");
    }

    #[test]
    fn kill_and_stall_specs_fire_exactly_once() {
        let plan = FaultPlan::parse("kill=1@5,kill=1@5:2,stall=0@3:4").unwrap();
        let mut s = FaultSession::new(plan);
        assert!(!s.take_kill(1, 4, None));
        assert!(!s.take_kill(0, 5, None));
        assert!(s.take_kill(1, 5, None));
        assert!(!s.take_kill(1, 5, None), "consumed");
        assert!(!s.take_kill(1, 5, Some(1)));
        assert!(s.take_kill(1, 5, Some(2)));
        assert_eq!(s.take_stall(0, 3), Some(4));
        assert_eq!(s.take_stall(0, 3), None, "consumed");
    }
}
