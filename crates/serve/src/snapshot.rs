//! Immutable epoch snapshots: all queries answered against one
//! consistent decomposition.
//!
//! # Incremental (copy-on-write) epochs
//!
//! A snapshot's state lives in three chunked arrays — coreness, degrees
//! and adjacency — whose chunks are individually reference-counted.
//! Publishing epoch `e+1` from epoch `e` ([`CoreSnapshot::advance`])
//! clones only the chunk *pointer tables* plus the chunks an applied
//! batch actually touched; every untouched chunk is **structurally
//! shared** with the predecessor epoch. Readers holding an old epoch
//! keep every one of its chunks alive through the `Arc`s, so pinned
//! epochs stay immutable no matter how far the writer advances.
//!
//! ## Delta-epoch invariants
//!
//! * **Publish cost.** `advance` is `O(|touched| + N/C)`: one
//!   `Arc` clone per chunk pointer (`N/C` of them, `C` =
//!   [`VALUE_CHUNK`]/[`ADJ_CHUNK`]) plus a copy-on-write rebuild of the
//!   chunks containing a changed coreness, a changed degree, or a
//!   mutated adjacency slot — never the `O(N + M)` full rebuild of
//!   [`capture`](CoreSnapshot::capture). The delta comes straight from
//!   [`StreamCore::last_touched`] and the batch's own endpoints; nothing
//!   is re-derived.
//! * **Replay depth 0.** Unlike a delta-chain design, queries never
//!   replay deltas: every epoch is a complete chunked image, so point
//!   lookups are one chunk indirection regardless of how many epochs
//!   separate a snapshot from the last full capture. Consequently there
//!   is no compaction trigger to tune — the "compaction" of a chunk is
//!   exactly its copy-on-write rebuild, amortized against the batch that
//!   dirtied it.
//! * **Exactness.** `advance` must only be called with the `StreamCore`
//!   the previous epoch was built from, *immediately* after one
//!   `apply_batch` (the single-writer discipline [`CoreService`]
//!   enforces); estimates are exact at batch boundaries, so every
//!   published epoch equals a fresh Batagelj–Zaveršnik pass on its own
//!   graph (checked end-to-end by `tests/serve_oracle.rs`).
//! * **Derived state.** The shell-size histogram is maintained
//!   incrementally from the coreness delta (`O(|changed| + k_max)` per
//!   epoch) and trailing empty shells are trimmed, so
//!   `histogram().len() == max_coreness() + 1` always holds. Whole-array
//!   views ([`values`](CoreSnapshot::values),
//!   [`graph`](CoreSnapshot::graph)) materialize lazily on first use,
//!   once per snapshot — query-side cost, never publish-side.
//!
//! [`CoreService`]: crate::CoreService
//! [`StreamCore::last_touched`]: dkcore::stream::StreamCore::last_touched

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use dkcore::stream::{EdgeBatch, StreamCore};
use dkcore_graph::{Graph, NodeId};

use crate::index::ShellIndex;

/// Nodes per coreness/degree chunk.
pub const VALUE_CHUNK: usize = 1024;
/// Nodes per adjacency chunk (smaller: a chunk rebuild copies its
/// members' whole neighbor lists).
pub const ADJ_CHUNK: usize = 128;

/// A chunked `u32` array with `Arc`-shared chunks: `O(1)` point reads,
/// copy-on-write chunk rewrites. Shared with the sharded service's
/// per-shard snapshots (slot-indexed there instead of node-indexed).
#[derive(Debug, Clone, Default)]
pub(crate) struct ChunkedU32 {
    pub(crate) chunks: Vec<Arc<Vec<u32>>>,
    len: usize,
}

impl ChunkedU32 {
    pub(crate) fn from_iter<I: IntoIterator<Item = u32>>(len: usize, values: I) -> Self {
        let mut chunks = Vec::with_capacity(len.div_ceil(VALUE_CHUNK));
        let mut current = Vec::with_capacity(VALUE_CHUNK.min(len));
        for v in values {
            current.push(v);
            if current.len() == VALUE_CHUNK {
                chunks.push(Arc::new(std::mem::take(&mut current)));
            }
        }
        if !current.is_empty() {
            chunks.push(Arc::new(current));
        }
        let built = ChunkedU32 { chunks, len };
        debug_assert_eq!(
            built.chunks.iter().map(|c| c.len()).sum::<usize>(),
            len,
            "iterator length must match len"
        );
        built
    }

    #[inline]
    pub(crate) fn get(&self, i: usize) -> Option<u32> {
        if i >= self.len {
            return None;
        }
        Some(self.chunks[i / VALUE_CHUNK][i % VALUE_CHUNK])
    }

    /// Copy-on-write point write (clones the chunk only when shared).
    pub(crate) fn set(&mut self, i: usize, v: u32) {
        Arc::make_mut(&mut self.chunks[i / VALUE_CHUNK])[i % VALUE_CHUNK] = v;
    }

    pub(crate) fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.chunks.iter().flat_map(|c| c.iter().copied())
    }
}

/// Applies one coreness change to a shell-size histogram (growing it
/// when a node reaches a new top shell). Shared by the single-writer and
/// per-shard incremental publish paths so histogram upkeep has exactly
/// one implementation.
pub(crate) fn apply_shell_change(shell_sizes: &mut Vec<usize>, old: u32, new: u32) {
    shell_sizes[old as usize] -= 1;
    if shell_sizes.len() <= new as usize {
        shell_sizes.resize(new as usize + 1, 0);
    }
    shell_sizes[new as usize] += 1;
}

/// Trims trailing empty shells, preserving the invariant
/// `shell_sizes.len() == max_coreness + 1` (at least one entry remains).
pub(crate) fn trim_shells(shell_sizes: &mut Vec<usize>) {
    while shell_sizes.len() > 1 && *shell_sizes.last().expect("non-empty") == 0 {
        shell_sizes.pop();
    }
}

/// The adjacency of [`ADJ_CHUNK`] consecutive slots as a mini-CSR.
/// Slots are graph node ids here and shard-local indices in the sharded
/// service; the stored values are global node ids either way.
#[derive(Debug, Clone)]
pub(crate) struct AdjChunk {
    /// `offsets[i]..offsets[i + 1]` indexes the neighbors of the chunk's
    /// `i`-th slot; `offsets.len()` = slots in chunk + 1.
    offsets: Vec<u32>,
    /// Concatenated sorted neighbor lists (global node ids).
    nbrs: Vec<u32>,
}

impl AdjChunk {
    /// Packs the neighbor lists of slots `base..base + count` from an
    /// adjacency arena.
    pub(crate) fn pack(arena: &dkcore::stream::AdjacencyArena, base: usize, count: usize) -> Self {
        let mut offsets = Vec::with_capacity(count + 1);
        offsets.push(0u32);
        let mut nbrs = Vec::new();
        for u in base..base + count {
            nbrs.extend_from_slice(arena.neighbors(u));
            offsets.push(nbrs.len() as u32);
        }
        AdjChunk { offsets, nbrs }
    }

    #[inline]
    pub(crate) fn neighbors(&self, i: usize) -> &[u32] {
        &self.nbrs[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// One published epoch of the service: the graph as of a batch boundary
/// together with its exact coreness decomposition and precomputed
/// shell-size histogram. Immutable — holding a snapshot pins this
/// epoch's entire state no matter how far the writer advances. See the
/// [module docs](self) for the copy-on-write epoch layout.
#[derive(Debug, Clone)]
pub struct CoreSnapshot {
    epoch: u64,
    nodes: usize,
    edges: usize,
    coreness: ChunkedU32,
    degrees: ChunkedU32,
    adj: Vec<Arc<AdjChunk>>,
    /// `shell_sizes[k]` = number of nodes with coreness exactly `k`.
    /// Trailing zero shells are trimmed (`len == max_coreness + 1`).
    shell_sizes: Vec<usize>,
    /// Per-shell membership lists maintained incrementally through
    /// [`advance`](Self::advance) — the O(answer) engine behind
    /// `kcore_members` / `top_k` / subgraph extraction. `None` only for
    /// [`capture_unindexed`](Self::capture_unindexed) chains (the
    /// benchmark baseline), which fall back to O(N) scans.
    index: Option<ShellIndex>,
    /// Memoized k-core subgraphs for hot `k` values. Shared by clones of
    /// this snapshot (same epoch, same answers); invalidation is free —
    /// the next epoch is a different snapshot with an empty cache.
    subgraphs: Arc<Mutex<crate::view::SubgraphMemo>>,
    /// Lazily materialized flat coreness (query-side, once per epoch).
    full_values: OnceLock<Vec<u32>>,
    /// Lazily materialized graph (query-side, once per epoch).
    full_graph: OnceLock<Graph>,
}

impl CoreSnapshot {
    /// Builds the snapshot of `core`'s current state as epoch `epoch` —
    /// the **full** `O(N + M)` build, used for epoch 0 and as the
    /// baseline the incremental [`advance`](Self::advance) path is
    /// benchmarked against (`bench_pr5`).
    ///
    /// Must only be called at batch boundaries, where the stream's
    /// estimates are exact — between
    /// [`apply_batch`](StreamCore::apply_batch) calls. Uses the stream's
    /// cheap read-only export (`values` + `degrees` + arena), so nothing
    /// is re-derived with a fresh decomposition pass.
    pub fn capture(epoch: u64, core: &StreamCore) -> Self {
        Self::capture_impl(epoch, core, true)
    }

    /// [`capture`](Self::capture) without the shell index: every bulk
    /// query falls back to the O(N) scan path. This is **only** for
    /// benchmarking the indexed paths against the scan baseline
    /// (`bench_pr7`) — production snapshots are always indexed.
    #[doc(hidden)]
    pub fn capture_unindexed(epoch: u64, core: &StreamCore) -> Self {
        Self::capture_impl(epoch, core, false)
    }

    fn capture_impl(epoch: u64, core: &StreamCore, indexed: bool) -> Self {
        let n = core.node_count();
        let coreness = ChunkedU32::from_iter(n, core.values().iter().copied());
        let degrees = ChunkedU32::from_iter(n, (0..n).map(|u| core.adjacency().degree(u)));
        let adj: Vec<Arc<AdjChunk>> = (0..n.div_ceil(ADJ_CHUNK))
            .map(|ci| {
                let base = ci * ADJ_CHUNK;
                Arc::new(AdjChunk::pack(
                    core.adjacency(),
                    base,
                    ADJ_CHUNK.min(n - base),
                ))
            })
            .collect();
        let max_core = core.values().iter().copied().max().unwrap_or(0) as usize;
        let mut shell_sizes = vec![0usize; max_core + 1];
        for &k in core.values() {
            shell_sizes[k as usize] += 1;
        }
        let index = indexed.then(|| {
            ShellIndex::build(
                core.values()
                    .iter()
                    .enumerate()
                    .map(|(u, &k)| (u as u32, k)),
            )
        });
        CoreSnapshot {
            epoch,
            nodes: n,
            edges: core.edge_count(),
            coreness,
            degrees,
            adj,
            shell_sizes,
            index,
            subgraphs: Arc::new(Mutex::new(HashMap::new())),
            full_values: OnceLock::new(),
            full_graph: OnceLock::new(),
        }
    }

    /// Publishes the state after one applied batch as epoch `epoch`,
    /// structurally sharing every chunk the batch did not touch with
    /// `self` — the `O(|touched| + N/C)` incremental publish path (see
    /// the [module docs](self) for the invariants).
    ///
    /// `core` must be the stream this snapshot chain is built over,
    /// *immediately* after `core.apply_batch(batch)` succeeded, so that
    /// [`StreamCore::last_touched`] still describes `batch`.
    pub fn advance(&self, epoch: u64, core: &StreamCore, batch: &EdgeBatch) -> Self {
        debug_assert_eq!(self.nodes, core.node_count(), "same stream, same nodes");
        let mut next = CoreSnapshot {
            epoch,
            nodes: self.nodes,
            edges: self.edges + batch.insertions().len() - batch.removals().len(),
            coreness: self.coreness.clone(),
            degrees: self.degrees.clone(),
            adj: self.adj.clone(),
            shell_sizes: self.shell_sizes.clone(),
            // Same coreness delta maintains the shell index CoW: one Arc
            // clone per chunk pointer, one chunk rewrite per moved node.
            index: self
                .index
                .as_ref()
                .map(|ix| ix.advance(core.last_coreness_changes())),
            subgraphs: Arc::new(Mutex::new(HashMap::new())),
            full_values: OnceLock::new(),
            full_graph: OnceLock::new(),
        };

        // Coreness delta: copy-on-write point writes + histogram upkeep.
        for (u, old, new) in core.last_coreness_changes() {
            next.coreness.set(u as usize, new);
            apply_shell_change(&mut next.shell_sizes, old, new);
        }
        trim_shells(&mut next.shell_sizes);

        // Adjacency + degree delta: the batch's endpoints are the only
        // nodes whose neighbor lists (and degrees) changed. Rebuild each
        // dirty adjacency chunk once.
        let mut dirty_chunks: Vec<usize> = Vec::new();
        for &(u, v) in batch.insertions().iter().chain(batch.removals()) {
            for w in [u.index(), v.index()] {
                next.degrees.set(w, core.adjacency().degree(w));
                let ci = w / ADJ_CHUNK;
                if !dirty_chunks.contains(&ci) {
                    dirty_chunks.push(ci);
                }
            }
        }
        for ci in dirty_chunks {
            let base = ci * ADJ_CHUNK;
            next.adj[ci] = Arc::new(AdjChunk::pack(
                core.adjacency(),
                base,
                ADJ_CHUNK.min(self.nodes - base),
            ));
        }
        next
    }

    /// The epoch this snapshot was published as (0 = initial graph).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of edges in this epoch's graph.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Sorted neighbors of `v` in this epoch's graph (global ids), or
    /// `None` when out of range. Chunk-local: never materializes the
    /// full graph.
    pub fn neighbors(&self, v: NodeId) -> Option<&[u32]> {
        let i = v.index();
        if i >= self.nodes {
            return None;
        }
        Some(self.adj[i / ADJ_CHUNK].neighbors(i % ADJ_CHUNK))
    }

    /// This epoch's graph, materialized lazily on first use and cached
    /// for the snapshot's lifetime.
    pub fn graph(&self) -> &Graph {
        self.full_graph.get_or_init(|| {
            let edges = (0..self.nodes as u32).flat_map(|u| {
                self.neighbors(NodeId(u))
                    .expect("in range")
                    .iter()
                    .filter(move |&&v| u < v)
                    .map(move |&v| (u, v))
            });
            Graph::from_edges(self.nodes, edges).expect("chunked adjacency is a valid graph")
        })
    }

    /// Coreness of `v`, or `None` when out of range.
    pub fn coreness(&self, v: NodeId) -> Option<u32> {
        self.coreness.get(v.index())
    }

    /// Degree of `v` in this epoch's graph, or `None` when out of range.
    pub fn degree(&self, v: NodeId) -> Option<u32> {
        self.degrees.get(v.index())
    }

    /// Coreness of every node, materialized lazily on first use and
    /// cached for the snapshot's lifetime.
    pub fn values(&self) -> &[u32] {
        self.full_values
            .get_or_init(|| self.coreness.iter().collect())
    }

    /// The largest coreness of this epoch.
    pub fn max_coreness(&self) -> u32 {
        (self.shell_sizes.len() - 1) as u32
    }

    /// Shell-size histogram: entry `k` counts the nodes with coreness
    /// exactly `k`. Always has `max_coreness() + 1` entries.
    pub fn histogram(&self) -> &[usize] {
        &self.shell_sizes
    }

    /// Number of nodes with coreness at least `k` — the k-core's size,
    /// without materializing the member list.
    pub fn kcore_size(&self, k: u32) -> usize {
        self.shell_sizes
            .iter()
            .skip(k as usize)
            .copied()
            .sum::<usize>()
    }

    /// The members of the k-core: every node with coreness ≥ `k`, in
    /// ascending id order. Empty when `k` exceeds the max coreness
    /// (except `k = 0`, which is all nodes).
    pub fn kcore_members(&self, k: u32) -> Vec<NodeId> {
        self.kcore_members_page(k, 0, usize::MAX).collect()
    }

    /// One page of the k-core members: positions `offset .. offset +
    /// limit` of the ascending-id member sequence. Pages concatenate to
    /// exactly [`kcore_members`](Self::kcore_members). `O(answer)` off
    /// the shell index; `O(N)` scan on unindexed (benchmark) snapshots.
    pub fn kcore_members_page(
        &self,
        k: u32,
        offset: usize,
        limit: usize,
    ) -> Box<dyn Iterator<Item = NodeId> + '_> {
        match &self.index {
            Some(ix) => Box::new(ix.members_page(k, offset, limit).map(NodeId)),
            None => Box::new(
                crate::view::kcore_members_scan(self, k)
                    .skip(offset)
                    .take(limit),
            ),
        }
    }

    /// Extracts the k-core subgraph: the graph induced on the nodes with
    /// coreness ≥ `k`, plus the mapping from new compact ids back to the
    /// original [`NodeId`]s (position `i` is the original id of new node
    /// `i`). `O(answer)` member enumeration off the shell index, then
    /// chunk-local edge collection (never materializes the full graph).
    ///
    /// Clones out of the per-snapshot memo; use
    /// [`kcore_subgraph_cached`](Self::kcore_subgraph_cached) to share
    /// the extraction instead of copying it.
    pub fn kcore_subgraph(&self, k: u32) -> (Graph, Vec<NodeId>) {
        (*self.kcore_subgraph_cached(k)).clone()
    }

    /// The memoized k-core subgraph: first call per `k` extracts and
    /// caches, later calls (and clones of this snapshot) share the
    /// `Arc`. Epochs are immutable, so the cache can never go stale —
    /// the next epoch is a new snapshot with an empty cache.
    pub fn kcore_subgraph_cached(&self, k: u32) -> Arc<(Graph, Vec<NodeId>)> {
        let mut memo = self
            .subgraphs
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(memo.entry(k).or_insert_with(|| {
            Arc::new(crate::view::kcore_subgraph_from_members(
                self,
                self.kcore_members_page(k, 0, usize::MAX),
            ))
        }))
    }

    /// The `n` nodes of largest coreness as `(node, coreness)` pairs,
    /// ordered by descending coreness, ties by ascending id. Returns all
    /// nodes when `n ≥ node_count()`.
    ///
    /// `O(answer)`: a slice of the shell index (shells walked from the
    /// top coreness down, each already in id order — no sort, no scan).
    pub fn top_k(&self, n: usize) -> Vec<(NodeId, u32)> {
        self.top_page(0, n).collect()
    }

    /// One page of the full coreness ranking: positions `offset ..
    /// offset + limit` of the (coreness desc, id asc) sequence. Pages
    /// concatenate to the whole ranking. `O(offset + limit)` off the
    /// shell index; `O(N)` scan on unindexed (benchmark) snapshots.
    pub fn top_page(
        &self,
        offset: usize,
        limit: usize,
    ) -> Box<dyn Iterator<Item = (NodeId, u32)> + '_> {
        match &self.index {
            Some(ix) => Box::new(
                ix.top()
                    .skip(offset)
                    .take(limit)
                    .map(|(u, c)| (NodeId(u), c)),
            ),
            None => Box::new(
                crate::view::top_k_scan(self, offset.saturating_add(limit))
                    .into_iter()
                    .skip(offset),
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore::seq::batagelj_zaversnik;
    use dkcore_data::collaboration;
    use dkcore_graph::generators::{complete, gnp, path, star};
    use rand::prelude::*;

    fn snap(g: &Graph) -> CoreSnapshot {
        CoreSnapshot::capture(0, &StreamCore::new(g))
    }

    #[test]
    fn capture_matches_ground_truth() {
        let g = gnp(200, 0.04, 7);
        let s = snap(&g);
        assert_eq!(s.values(), batagelj_zaversnik(&g).as_slice());
        assert_eq!(s.graph(), &g);
        assert_eq!(s.node_count(), 200);
        assert_eq!(s.edge_count(), g.edge_count());
        for u in g.nodes() {
            assert_eq!(s.degree(u), Some(g.degree(u)));
            let nbrs: Vec<u32> = g.neighbors(u).iter().map(|v| v.0).collect();
            assert_eq!(s.neighbors(u), Some(nbrs.as_slice()));
        }
        assert_eq!(s.coreness(NodeId(500)), None);
        assert_eq!(s.degree(NodeId(500)), None);
        assert_eq!(s.neighbors(NodeId(500)), None);
    }

    #[test]
    fn advance_is_bit_identical_to_full_capture() {
        // The incremental publish path must produce exactly the state a
        // full rebuild would, batch after batch — every accessor, on a
        // graph large enough to span many chunks.
        let g = gnp(3_000, 0.003, 13);
        let mut sc = StreamCore::new(&g);
        let mut current = CoreSnapshot::capture(0, &sc);
        let mut rng = StdRng::seed_from_u64(0xADA);
        for epoch in 1..=10u64 {
            let mut b = EdgeBatch::new();
            let mut seen: Vec<(u32, u32)> = Vec::new();
            for _ in 0..24 {
                let x = rng.random_range(0..3_000u32);
                let y = rng.random_range(0..3_000u32);
                if x == y {
                    continue;
                }
                let key = (x.min(y), x.max(y));
                if seen.contains(&key) {
                    continue;
                }
                seen.push(key);
                if sc.has_edge(NodeId(x), NodeId(y)) {
                    b.remove(NodeId(x), NodeId(y));
                } else {
                    b.insert(NodeId(x), NodeId(y));
                }
            }
            sc.apply_batch(&b).unwrap();
            let incremental = current.advance(epoch, &sc, &b);
            let full = CoreSnapshot::capture(epoch, &sc);
            assert_eq!(incremental.epoch(), full.epoch());
            assert_eq!(incremental.edge_count(), full.edge_count());
            assert_eq!(incremental.values(), full.values());
            assert_eq!(incremental.histogram(), full.histogram());
            assert_eq!(incremental.max_coreness(), full.max_coreness());
            assert_eq!(incremental.graph(), full.graph());
            for u in 0..3_000u32 {
                assert_eq!(incremental.degree(NodeId(u)), full.degree(NodeId(u)));
                assert_eq!(incremental.neighbors(NodeId(u)), full.neighbors(NodeId(u)));
            }
            current = incremental;
        }
    }

    #[test]
    fn advance_shares_untouched_chunks_with_predecessor() {
        // Structural sharing is the whole point: after a local batch,
        // the vast majority of chunk pointers must be the *same Arc*s.
        let g = gnp(10_000, 0.001, 5);
        let mut sc = StreamCore::new(&g);
        let prev = CoreSnapshot::capture(0, &sc);
        let mut b = EdgeBatch::new();
        b.insert(NodeId(10), NodeId(20));
        sc.apply_batch(&b).unwrap();
        let changed_value_chunks: std::collections::HashSet<usize> = sc
            .last_coreness_changes()
            .map(|(u, _, _)| u as usize / VALUE_CHUNK)
            .chain([10usize / VALUE_CHUNK, 20 / VALUE_CHUNK]) // degree writes
            .collect();
        let next = prev.advance(1, &sc, &b);

        let shared_adj = prev
            .adj
            .iter()
            .zip(&next.adj)
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count();
        assert!(
            shared_adj >= prev.adj.len() - 1,
            "only the mutated adjacency chunk may differ: {shared_adj}/{}",
            prev.adj.len()
        );
        let cow_core = prev
            .coreness
            .chunks
            .iter()
            .zip(&next.coreness.chunks)
            .filter(|(a, b)| !Arc::ptr_eq(a, b))
            .count();
        assert!(
            cow_core <= changed_value_chunks.len(),
            "chunks outside the coreness delta must be shared: \
             {cow_core} rewritten for {} dirty",
            changed_value_chunks.len()
        );
        assert!(
            cow_core < prev.coreness.chunks.len(),
            "a local batch must not rewrite every chunk"
        );
        // And sharing never leaks writes: the pinned epoch still answers
        // with its own state.
        assert_eq!(prev.edge_count(), g.edge_count());
        assert!(!prev.neighbors(NodeId(10)).unwrap().contains(&20));
        assert!(next.neighbors(NodeId(10)).unwrap().contains(&20));
    }

    #[test]
    fn histogram_and_kcore_sizes_agree() {
        let g = collaboration(400, 600, 2..=8, 3);
        let s = snap(&g);
        let hist = s.histogram();
        assert_eq!(hist.iter().sum::<usize>(), s.node_count());
        assert_eq!(s.max_coreness(), *s.values().iter().max().unwrap());
        assert!(hist[s.max_coreness() as usize] > 0, "top shell non-empty");
        for k in 0..=s.max_coreness() + 1 {
            assert_eq!(s.kcore_size(k), s.kcore_members(k).len(), "k={k}");
        }
        assert_eq!(s.kcore_size(0), s.node_count());
        assert_eq!(s.kcore_size(s.max_coreness() + 5), 0);
    }

    #[test]
    fn kcore_subgraph_is_the_induced_kcore() {
        let g = collaboration(300, 500, 3..=7, 9);
        let s = snap(&g);
        let k = s.max_coreness();
        let (sub, back) = s.kcore_subgraph(k);
        assert_eq!(sub.node_count(), s.kcore_size(k));
        assert_eq!(back.len(), sub.node_count());
        // Chunk-local extraction matches the graph-level reference.
        let keep: Vec<bool> = s.values().iter().map(|&c| c >= k).collect();
        let (ref_sub, ref_back) = s.graph().induced_subgraph(&keep);
        assert_eq!(sub, ref_sub);
        assert_eq!(back, ref_back);
        // Every node of the k-core has degree ≥ k inside the extracted
        // subgraph (the defining property of the k-core).
        for u in sub.nodes() {
            assert!(
                sub.degree(u) >= k,
                "node {} (orig {}) has degree {} < {k}",
                u,
                back[u.index()],
                sub.degree(u)
            );
        }
        // And its own decomposition confirms min coreness ≥ k.
        assert!(batagelj_zaversnik(&sub).iter().all(|&c| c >= k));
        // k = 0 extracts the whole graph.
        let (all, _) = s.kcore_subgraph(0);
        assert_eq!(all.node_count(), g.node_count());
        assert_eq!(all.edge_count(), g.edge_count());
    }

    #[test]
    fn top_k_orders_by_coreness_then_id() {
        let g = collaboration(300, 400, 2..=9, 5);
        let s = snap(&g);
        for n in [0usize, 1, 7, 50, 299, 300, 1000] {
            let top = s.top_k(n);
            assert_eq!(top.len(), n.min(300));
            // Ordering: coreness desc, id asc.
            for w in top.windows(2) {
                assert!(w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
            }
            // Exactness: the returned pairs match the stored coreness and
            // no excluded node beats the weakest included one.
            if let Some(&(_, weakest)) = top.last() {
                let included: std::collections::HashSet<u32> =
                    top.iter().map(|&(v, _)| v.0).collect();
                for (u, &c) in s.values().iter().enumerate() {
                    if !included.contains(&(u as u32)) {
                        assert!(c <= weakest, "node {u} (core {c}) outranks the top-{n}");
                    }
                }
            }
            for &(v, c) in &top {
                assert_eq!(s.coreness(v), Some(c));
            }
        }
    }

    #[test]
    fn top_k_on_uniform_and_degenerate_graphs() {
        // complete graph: all nodes tie, ids ascend.
        let s = snap(&complete(8));
        let top = s.top_k(3);
        assert_eq!(
            top,
            vec![(NodeId(0), 7), (NodeId(1), 7), (NodeId(2), 7)],
            "ties resolved by id"
        );
        // star: hub has coreness 1 like the leaves.
        let s = snap(&star(5));
        assert_eq!(s.top_k(1)[0].1, 1);
        // path endpoints have coreness 1 too.
        let s = snap(&path(4));
        assert_eq!(s.top_k(4).len(), 4);
        // empty graph.
        let s = snap(&Graph::from_edges(3, []).unwrap());
        assert_eq!(s.max_coreness(), 0);
        assert_eq!(s.top_k(2), vec![(NodeId(0), 0), (NodeId(1), 0)]);
        assert_eq!(s.kcore_members(1), vec![]);
    }

    #[test]
    fn snapshots_are_immutable_under_further_churn() {
        let g = path(5);
        let mut sc = StreamCore::new(&g);
        let pinned = CoreSnapshot::capture(0, &sc);
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(4));
        sc.apply_batch(&b).unwrap();
        // The pinned snapshot still answers with epoch-0 state.
        assert_eq!(pinned.coreness(NodeId(0)), Some(1));
        assert_eq!(pinned.edge_count(), 4);
        assert_eq!(pinned.graph(), &g);
        let now = pinned.advance(1, &sc, &b);
        assert_eq!(now.coreness(NodeId(0)), Some(2));
        assert_eq!(now.edge_count(), 5);
        assert_eq!(pinned.coreness(NodeId(0)), Some(1), "still pinned");
    }
}
