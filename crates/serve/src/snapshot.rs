//! Immutable epoch snapshots: all queries answered against one
//! consistent decomposition.

use dkcore::stream::StreamCore;
use dkcore_graph::{Graph, NodeId};

/// One published epoch of the service: the graph as of a batch boundary
/// together with its exact coreness decomposition and precomputed
/// shell-size histogram. Immutable — holding a snapshot pins this
/// epoch's entire state no matter how far the writer advances.
#[derive(Debug, Clone)]
pub struct CoreSnapshot {
    epoch: u64,
    coreness: Vec<u32>,
    degrees: Vec<u32>,
    graph: Graph,
    /// `shell_sizes[k]` = number of nodes with coreness exactly `k`.
    shell_sizes: Vec<usize>,
}

impl CoreSnapshot {
    /// Builds the snapshot of `core`'s current state as epoch `epoch`.
    ///
    /// Must only be called at batch boundaries, where the stream's
    /// estimates are exact — between
    /// [`apply_batch`](StreamCore::apply_batch) calls. Uses the stream's
    /// cheap read-only export (`values` + `degrees` + arena), so nothing
    /// is re-derived with a fresh decomposition pass.
    pub fn capture(epoch: u64, core: &StreamCore) -> Self {
        let coreness = core.values().to_vec();
        let max_core = coreness.iter().copied().max().unwrap_or(0) as usize;
        let mut shell_sizes = vec![0usize; max_core + 1];
        for &k in &coreness {
            shell_sizes[k as usize] += 1;
        }
        CoreSnapshot {
            epoch,
            degrees: core.degrees(),
            graph: core.to_graph(),
            coreness,
            shell_sizes,
        }
    }

    /// The epoch this snapshot was published as (0 = initial graph).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.coreness.len()
    }

    /// Number of edges in this epoch's graph.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// This epoch's graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Coreness of `v`, or `None` when out of range.
    pub fn coreness(&self, v: NodeId) -> Option<u32> {
        self.coreness.get(v.index()).copied()
    }

    /// Degree of `v` in this epoch's graph, or `None` when out of range.
    pub fn degree(&self, v: NodeId) -> Option<u32> {
        self.degrees.get(v.index()).copied()
    }

    /// Coreness of every node.
    pub fn values(&self) -> &[u32] {
        &self.coreness
    }

    /// The largest coreness of this epoch.
    pub fn max_coreness(&self) -> u32 {
        (self.shell_sizes.len() - 1) as u32
    }

    /// Shell-size histogram: entry `k` counts the nodes with coreness
    /// exactly `k`. Always has `max_coreness() + 1` entries.
    pub fn histogram(&self) -> &[usize] {
        &self.shell_sizes
    }

    /// Number of nodes with coreness at least `k` — the k-core's size,
    /// without materializing the member list.
    pub fn kcore_size(&self, k: u32) -> usize {
        self.shell_sizes
            .iter()
            .skip(k as usize)
            .copied()
            .sum::<usize>()
    }

    /// The members of the k-core: every node with coreness ≥ `k`, in
    /// ascending id order. Empty when `k` exceeds the max coreness
    /// (except `k = 0`, which is all nodes).
    pub fn kcore_members(&self, k: u32) -> Vec<NodeId> {
        self.coreness
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .map(|(u, _)| NodeId(u as u32))
            .collect()
    }

    /// Extracts the k-core subgraph: the graph induced on the nodes with
    /// coreness ≥ `k`, plus the mapping from new compact ids back to the
    /// original [`NodeId`]s (position `i` is the original id of new node
    /// `i`).
    pub fn kcore_subgraph(&self, k: u32) -> (Graph, Vec<NodeId>) {
        let keep: Vec<bool> = self.coreness.iter().map(|&c| c >= k).collect();
        self.graph.induced_subgraph(&keep)
    }

    /// The `n` nodes of largest coreness as `(node, coreness)` pairs,
    /// ordered by descending coreness, ties by ascending id. Returns all
    /// nodes when `n ≥ node_count()`.
    ///
    /// Runs in `O(N)` (no full sort): the histogram locates the coreness
    /// threshold, a single scan collects the members.
    pub fn top_k(&self, n: usize) -> Vec<(NodeId, u32)> {
        let n = n.min(self.node_count());
        if n == 0 {
            return Vec::new();
        }
        // Find the smallest threshold t such that |{v : core(v) ≥ t}| ≥ n.
        let mut t = self.shell_sizes.len(); // exclusive upper bound
        let mut above = 0usize; // |{v : core(v) ≥ t}|
        while t > 0 && above < n {
            t -= 1;
            above += self.shell_sizes[t];
        }
        let t = t as u32;
        // One scan: everything strictly above t is in; nodes at exactly t
        // fill the remainder in id order.
        let mut strict: Vec<(NodeId, u32)> = Vec::new();
        let mut at: Vec<(NodeId, u32)> = Vec::new();
        for (u, &c) in self.coreness.iter().enumerate() {
            if c > t {
                strict.push((NodeId(u as u32), c));
            } else if c == t {
                at.push((NodeId(u as u32), c));
            }
        }
        strict.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let fill = n - strict.len();
        strict.extend(at.into_iter().take(fill));
        strict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore::seq::batagelj_zaversnik;
    use dkcore::stream::EdgeBatch;
    use dkcore_data::collaboration;
    use dkcore_graph::generators::{complete, gnp, path, star};

    fn snap(g: &Graph) -> CoreSnapshot {
        CoreSnapshot::capture(0, &StreamCore::new(g))
    }

    #[test]
    fn capture_matches_ground_truth() {
        let g = gnp(200, 0.04, 7);
        let s = snap(&g);
        assert_eq!(s.values(), batagelj_zaversnik(&g).as_slice());
        assert_eq!(s.graph(), &g);
        assert_eq!(s.node_count(), 200);
        assert_eq!(s.edge_count(), g.edge_count());
        for u in g.nodes() {
            assert_eq!(s.degree(u), Some(g.degree(u)));
        }
        assert_eq!(s.coreness(NodeId(500)), None);
        assert_eq!(s.degree(NodeId(500)), None);
    }

    #[test]
    fn histogram_and_kcore_sizes_agree() {
        let g = collaboration(400, 600, 2..=8, 3);
        let s = snap(&g);
        let hist = s.histogram();
        assert_eq!(hist.iter().sum::<usize>(), s.node_count());
        assert_eq!(s.max_coreness(), *s.values().iter().max().unwrap());
        assert!(hist[s.max_coreness() as usize] > 0, "top shell non-empty");
        for k in 0..=s.max_coreness() + 1 {
            assert_eq!(s.kcore_size(k), s.kcore_members(k).len(), "k={k}");
        }
        assert_eq!(s.kcore_size(0), s.node_count());
        assert_eq!(s.kcore_size(s.max_coreness() + 5), 0);
    }

    #[test]
    fn kcore_subgraph_is_the_induced_kcore() {
        let g = collaboration(300, 500, 3..=7, 9);
        let s = snap(&g);
        let k = s.max_coreness();
        let (sub, back) = s.kcore_subgraph(k);
        assert_eq!(sub.node_count(), s.kcore_size(k));
        assert_eq!(back.len(), sub.node_count());
        // Every node of the k-core has degree ≥ k inside the extracted
        // subgraph (the defining property of the k-core).
        for u in sub.nodes() {
            assert!(
                sub.degree(u) >= k,
                "node {} (orig {}) has degree {} < {k}",
                u,
                back[u.index()],
                sub.degree(u)
            );
        }
        // And its own decomposition confirms min coreness ≥ k.
        assert!(batagelj_zaversnik(&sub).iter().all(|&c| c >= k));
        // k = 0 extracts the whole graph.
        let (all, _) = s.kcore_subgraph(0);
        assert_eq!(all.node_count(), g.node_count());
        assert_eq!(all.edge_count(), g.edge_count());
    }

    #[test]
    fn top_k_orders_by_coreness_then_id() {
        let g = collaboration(300, 400, 2..=9, 5);
        let s = snap(&g);
        for n in [0usize, 1, 7, 50, 299, 300, 1000] {
            let top = s.top_k(n);
            assert_eq!(top.len(), n.min(300));
            // Ordering: coreness desc, id asc.
            for w in top.windows(2) {
                assert!(w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
            }
            // Exactness: the returned pairs match the stored coreness and
            // no excluded node beats the weakest included one.
            if let Some(&(_, weakest)) = top.last() {
                let included: std::collections::HashSet<u32> =
                    top.iter().map(|&(v, _)| v.0).collect();
                for (u, &c) in s.values().iter().enumerate() {
                    if !included.contains(&(u as u32)) {
                        assert!(c <= weakest, "node {u} (core {c}) outranks the top-{n}");
                    }
                }
            }
            for &(v, c) in &top {
                assert_eq!(s.coreness(v), Some(c));
            }
        }
    }

    #[test]
    fn top_k_on_uniform_and_degenerate_graphs() {
        // complete graph: all nodes tie, ids ascend.
        let s = snap(&complete(8));
        let top = s.top_k(3);
        assert_eq!(
            top,
            vec![(NodeId(0), 7), (NodeId(1), 7), (NodeId(2), 7)],
            "ties resolved by id"
        );
        // star: hub has coreness 1 like the leaves.
        let s = snap(&star(5));
        assert_eq!(s.top_k(1)[0].1, 1);
        // path endpoints have coreness 1 too.
        let s = snap(&path(4));
        assert_eq!(s.top_k(4).len(), 4);
        // empty graph.
        let s = snap(&Graph::from_edges(3, []).unwrap());
        assert_eq!(s.max_coreness(), 0);
        assert_eq!(s.top_k(2), vec![(NodeId(0), 0), (NodeId(1), 0)]);
        assert_eq!(s.kcore_members(1), vec![]);
    }

    #[test]
    fn snapshots_are_immutable_under_further_churn() {
        let g = path(5);
        let mut sc = StreamCore::new(&g);
        let pinned = CoreSnapshot::capture(0, &sc);
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(4));
        sc.apply_batch(&b).unwrap();
        // The pinned snapshot still answers with epoch-0 state.
        assert_eq!(pinned.coreness(NodeId(0)), Some(1));
        assert_eq!(pinned.edge_count(), 4);
        assert_eq!(pinned.graph(), &g);
        let now = CoreSnapshot::capture(1, &sc);
        assert_eq!(now.coreness(NodeId(0)), Some(2));
        assert_eq!(now.edge_count(), 5);
    }
}
