//! Incrementally-maintained per-epoch shell indexes: the O(answer)
//! query engine behind `members` / `top_k` / `kcore_subgraph`.
//!
//! # Why
//!
//! The chunked epoch snapshots answer *point* lookups in O(1), but the
//! bulk query families (`MEMBERS`, `TOPK`, `SUBGRAPH`) used to scan all
//! `N` coreness values per query — at "millions of users" scale the
//! scan, not the lock-free snapshot handle, is the ceiling. The paper's
//! premise is that coreness changes are local and incremental; the same
//! per-batch delta that drives incremental epoch *publishing*
//! (`StreamCore::last_coreness_changes`) can maintain a **shell index**:
//! for every coreness value `k`, the sorted list of nodes whose coreness
//! is exactly `k`.
//!
//! # Structure
//!
//! Each shell is a [`ShellList`]: ascending node ids split into
//! `Arc`-shared chunks of at most [`SHELL_CHUNK_MAX`] ids. Like the
//! coreness/adjacency chunks of the snapshots, the chunks are
//! **copy-on-write**: advancing an epoch clones only the chunk pointer
//! tables plus the few chunks an applied batch's coreness delta actually
//! touched, so pinned epochs keep their own index alive and untouched
//! shells are structurally shared between epochs.
//!
//! # Cost model
//!
//! * [`ShellIndex::build`] — `O(N)`, used once per full capture.
//! * [`ShellIndex::advance`] — `O(chunks + |changes| · C)` where `C` =
//!   chunk size: one `Arc` clone per chunk pointer plus one chunk
//!   rewrite per changed node (remove from the old shell, insert into
//!   the new one, both by binary search inside one chunk).
//! * [`ShellIndex::members`] — `O(answer · log s)` where `s` is the
//!   number of non-empty shells ≥ `k` (a heap merge of the per-shell
//!   ascending-id iterators); flat in `N` for a fixed answer size.
//! * [`ShellIndex::top`] — `O(answer)`: shells are walked from the top
//!   coreness downward, each already in ascending id order — exactly
//!   the `top_k` contract (coreness desc, id asc), with no sort at all.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// Split threshold for one shell chunk: a chunk that grows past this
/// many ids is split in two, so a copy-on-write rewrite never copies
/// more than `SHELL_CHUNK_MAX` ids.
pub(crate) const SHELL_CHUNK_MAX: usize = 512;

/// One shell's membership: ascending node ids in `Arc`-shared chunks.
/// Chunks hold disjoint consecutive id ranges in order, so iteration is
/// a plain chunk walk and point updates touch exactly one chunk.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShellList {
    chunks: Vec<Arc<Vec<u32>>>,
    len: usize,
}

impl ShellList {
    /// Number of ids in the shell.
    #[cfg(test)]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Index of the chunk that contains `id` or would receive it:
    /// the first chunk whose last element is ≥ `id` (the last chunk
    /// when every element is smaller).
    fn chunk_for(&self, id: u32) -> usize {
        self.chunks
            .partition_point(|c| *c.last().expect("chunks are never empty") < id)
            .min(self.chunks.len().saturating_sub(1))
    }

    /// Inserts `id`, keeping ascending order. Copy-on-write: only the
    /// receiving chunk is rewritten (and split once it outgrows
    /// [`SHELL_CHUNK_MAX`]).
    fn insert(&mut self, id: u32) {
        self.len += 1;
        if self.chunks.is_empty() {
            self.chunks.push(Arc::new(vec![id]));
            return;
        }
        let ci = self.chunk_for(id);
        let chunk = Arc::make_mut(&mut self.chunks[ci]);
        let at = chunk.partition_point(|&x| x < id);
        debug_assert!(chunk.get(at) != Some(&id), "shells never hold duplicates");
        chunk.insert(at, id);
        if chunk.len() > SHELL_CHUNK_MAX {
            let upper = chunk.split_off(chunk.len() / 2);
            self.chunks.insert(ci + 1, Arc::new(upper));
        }
    }

    /// Removes `id` (which must be present). Copy-on-write: only the
    /// holding chunk is rewritten (and dropped when it empties).
    fn remove(&mut self, id: u32) {
        let ci = self.chunk_for(id);
        let chunk = Arc::make_mut(&mut self.chunks[ci]);
        let at = chunk
            .binary_search(&id)
            .expect("removed id must be in its shell");
        chunk.remove(at);
        self.len -= 1;
        if chunk.is_empty() {
            self.chunks.remove(ci);
        }
    }

    /// Ascending-id iterator over the whole shell.
    pub(crate) fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.chunks.iter().flat_map(|c| c.iter().copied())
    }

    /// Ascending-id iterator starting at position `offset`, skipping
    /// whole chunks in `O(chunks)` instead of element-by-element.
    fn iter_from(&self, mut offset: usize) -> impl Iterator<Item = u32> + '_ {
        let mut ci = 0;
        while ci < self.chunks.len() && offset >= self.chunks[ci].len() {
            offset -= self.chunks[ci].len();
            ci += 1;
        }
        self.chunks[ci..]
            .iter()
            .enumerate()
            .flat_map(move |(i, c)| {
                let skip = if i == 0 { offset } else { 0 };
                c[skip..].iter().copied()
            })
    }
}

/// The per-epoch shell index: `shells[k]` lists the nodes of coreness
/// exactly `k` in ascending id order. Immutable once published (like
/// everything else in a snapshot); [`advance`](Self::advance) derives
/// the next epoch's index copy-on-write. Trailing empty shells are
/// trimmed, mirroring the snapshots' histogram invariant.
#[derive(Debug, Clone, Default)]
pub(crate) struct ShellIndex {
    shells: Vec<ShellList>,
}

impl ShellIndex {
    /// Builds the index from the full decomposition — `O(N)`, the
    /// companion of a snapshot's full capture. `pairs` yields
    /// `(id, coreness)` with **strictly ascending ids** (node ids for
    /// the single-writer snapshot, global ids in owned-slot order for a
    /// shard), so every id lands in its shell's tail and chunks are
    /// built already sorted.
    pub(crate) fn build<I: IntoIterator<Item = (u32, u32)>>(pairs: I) -> Self {
        let mut tails: Vec<Vec<u32>> = Vec::new();
        let mut shells: Vec<ShellList> = Vec::new();
        for (id, k) in pairs {
            let k = k as usize;
            if shells.len() <= k {
                shells.resize_with(k + 1, ShellList::default);
                tails.resize_with(k + 1, Vec::new);
            }
            let tail = &mut tails[k];
            tail.push(id);
            shells[k].len += 1;
            if tail.len() == SHELL_CHUNK_MAX {
                shells[k].chunks.push(Arc::new(std::mem::take(tail)));
            }
        }
        for (k, tail) in tails.into_iter().enumerate() {
            if !tail.is_empty() {
                shells[k].chunks.push(Arc::new(tail));
            }
        }
        ShellIndex { shells }
    }

    /// The next epoch's index after the coreness delta `changes`
    /// (`(node, old, new)` triples, each node at most once): clones the
    /// chunk pointer tables and rewrites only the touched chunks.
    pub(crate) fn advance<I: IntoIterator<Item = (u32, u32, u32)>>(&self, changes: I) -> Self {
        let mut next = self.clone();
        for (u, old, new) in changes {
            if old == new {
                continue;
            }
            next.shells[old as usize].remove(u);
            let new = new as usize;
            if next.shells.len() <= new {
                next.shells.resize_with(new + 1, ShellList::default);
            }
            next.shells[new].insert(u);
        }
        while next.shells.len() > 1 && next.shells.last().expect("non-empty").len == 0 {
            next.shells.pop();
        }
        next
    }

    /// Number of shells (`max coreness + 1` after trimming).
    #[cfg(test)]
    pub(crate) fn shell_count(&self) -> usize {
        self.shells.len()
    }

    /// Size of shell `k` (0 when `k` is past the top shell).
    #[cfg(test)]
    pub(crate) fn shell_len(&self, k: u32) -> usize {
        self.shells.get(k as usize).map_or(0, |s| s.len)
    }

    /// Size of the k-core (`Σ shell_len(j), j ≥ k`) in `O(shells)`.
    #[cfg(test)]
    pub(crate) fn kcore_len(&self, k: u32) -> usize {
        self.shells
            .iter()
            .skip(k as usize)
            .map(|s| s.len)
            .sum::<usize>()
    }

    /// The k-core members in ascending id order: a heap merge of every
    /// shell ≥ `k`. `O(answer · log s)`, flat in `N` for a fixed answer.
    pub(crate) fn members(&self, k: u32) -> MergedMembers<'_> {
        MergedMembers::new(self.shells.iter().skip(k as usize).map(|s| s.iter()))
    }

    /// One page of the k-core members: positions `offset ..
    /// offset + limit` of the ascending-id member sequence. Pages
    /// concatenate to exactly [`members`](Self::members).
    ///
    /// When only one non-empty shell is ≥ `k` (the common case for
    /// large `k`), the offset skips whole chunks; otherwise the merge
    /// advances `offset` elements first.
    pub(crate) fn members_page(
        &self,
        k: u32,
        offset: usize,
        limit: usize,
    ) -> Box<dyn Iterator<Item = u32> + '_> {
        let mut nonempty = self.shells.iter().skip(k as usize).filter(|s| s.len > 0);
        match (nonempty.next(), nonempty.next()) {
            (Some(only), None) => Box::new(only.iter_from(offset.min(only.len)).take(limit)),
            _ => Box::new(self.members(k).skip(offset).take(limit)),
        }
    }

    /// `(node, coreness)` pairs ordered by descending coreness, ties by
    /// ascending id — the `top_k` order — walked straight off the index
    /// with no sorting or scanning: shells from the top down, each
    /// already ascending.
    pub(crate) fn top(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.shells
            .iter()
            .enumerate()
            .rev()
            .flat_map(|(k, s)| s.iter().map(move |u| (u, k as u32)))
    }
}

/// Ascending-id merge of several already-sorted shell iterators (one
/// per shell ≥ `k`). Shells are disjoint, so no tie-breaking is needed.
pub(crate) struct MergedMembers<'a> {
    heap: BinaryHeap<Reverse<(u32, usize)>>,
    iters: Vec<Box<dyn Iterator<Item = u32> + 'a>>,
}

impl<'a> MergedMembers<'a> {
    /// Merges any set of strictly-ascending disjoint id iterators — the
    /// shells of one index, or whole per-shard member streams (the
    /// stitched sharded view's k-way merge by global id).
    pub(crate) fn new<I, S>(shells: I) -> Self
    where
        I: Iterator<Item = S>,
        S: Iterator<Item = u32> + 'a,
    {
        let mut iters: Vec<Box<dyn Iterator<Item = u32> + 'a>> = Vec::new();
        let mut heap = BinaryHeap::new();
        for mut it in shells.map(|s| Box::new(s) as Box<dyn Iterator<Item = u32> + 'a>) {
            if let Some(first) = it.next() {
                heap.push(Reverse((first, iters.len())));
                iters.push(it);
            }
        }
        MergedMembers { heap, iters }
    }
}

impl Iterator for MergedMembers<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        let Reverse((id, src)) = self.heap.pop()?;
        if let Some(next) = self.iters[src].next() {
            self.heap.push(Reverse((next, src)));
        }
        Some(id)
    }
}

/// Rank-order merge of several per-shard [`ShellIndex::top`] streams:
/// each input yields `(id, coreness)` in (coreness desc, id asc) order
/// over disjoint ids; the merge preserves that order globally — the
/// stitched sharded view's O(answer) `top_k`.
pub(crate) struct MergedTop<'a> {
    /// Max-heap keyed on (coreness, Reverse(id)): highest coreness
    /// first, ties by ascending id.
    heap: BinaryHeap<(u32, Reverse<u32>, usize)>,
    iters: Vec<Box<dyn Iterator<Item = (u32, u32)> + 'a>>,
}

impl<'a> MergedTop<'a> {
    pub(crate) fn new<I, S>(streams: I) -> Self
    where
        I: Iterator<Item = S>,
        S: Iterator<Item = (u32, u32)> + 'a,
    {
        let mut iters: Vec<Box<dyn Iterator<Item = (u32, u32)> + 'a>> = Vec::new();
        let mut heap = BinaryHeap::new();
        for mut it in streams.map(|s| Box::new(s) as Box<dyn Iterator<Item = (u32, u32)> + 'a>) {
            if let Some((id, c)) = it.next() {
                heap.push((c, Reverse(id), iters.len()));
                iters.push(it);
            }
        }
        MergedTop { heap, iters }
    }
}

impl Iterator for MergedTop<'_> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        let (c, Reverse(id), src) = self.heap.pop()?;
        if let Some((nid, nc)) = self.iters[src].next() {
            self.heap.push((nc, Reverse(nid), src));
        }
        Some((id, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;

    /// Reference: scan-built member list.
    fn scan_members(values: &[u32], k: u32) -> Vec<u32> {
        (0..values.len() as u32)
            .filter(|&u| values[u as usize] >= k)
            .collect()
    }

    fn assert_matches(index: &ShellIndex, values: &[u32]) {
        let kmax = values.iter().copied().max().unwrap_or(0);
        let shells = if values.is_empty() {
            0
        } else {
            kmax as usize + 1
        };
        assert_eq!(index.shell_count(), shells, "trimmed shells");
        for k in 0..=kmax + 2 {
            assert_eq!(
                index.members(k).collect::<Vec<_>>(),
                scan_members(values, k),
                "members k={k}"
            );
            assert_eq!(index.kcore_len(k), scan_members(values, k).len());
            assert_eq!(
                index.shell_len(k),
                values.iter().filter(|&&c| c == k).count()
            );
        }
        // top() is (coreness desc, id asc) and covers every node once.
        let top: Vec<(u32, u32)> = index.top().collect();
        assert_eq!(top.len(), values.len());
        for w in top.windows(2) {
            assert!(w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
        }
        for &(u, c) in &top {
            assert_eq!(values[u as usize], c);
        }
    }

    #[test]
    fn build_matches_scan_on_random_values() {
        let mut rng = StdRng::seed_from_u64(7);
        for n in [0usize, 1, 5, 100, 2_000] {
            let values: Vec<u32> = (0..n).map(|_| rng.random_range(0..8u32)).collect();
            let index = ShellIndex::build(
                values
                    .iter()
                    .copied()
                    .enumerate()
                    .map(|(u, k)| (u as u32, k)),
            );
            assert_matches(&index, &values);
        }
    }

    #[test]
    fn advance_tracks_random_churn_exactly() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut values: Vec<u32> = (0..3_000).map(|_| rng.random_range(0..6u32)).collect();
        let mut index = ShellIndex::build(
            values
                .iter()
                .copied()
                .enumerate()
                .map(|(u, k)| (u as u32, k)),
        );
        for round in 0..40 {
            let mut changes = Vec::new();
            let mut touched = std::collections::HashSet::new();
            for _ in 0..rng.random_range(1..50usize) {
                let u = rng.random_range(0..values.len() as u32);
                if !touched.insert(u) {
                    continue;
                }
                let old = values[u as usize];
                let new = rng.random_range(0..9u32);
                values[u as usize] = new;
                changes.push((u, old, new));
            }
            index = index.advance(changes);
            assert_matches(&index, &values);
            // Pages concatenate to the full answer at several page sizes.
            if round % 10 == 0 {
                for k in [0u32, 2, 5] {
                    for page in [1usize, 7, 512, 4_096] {
                        let mut paged = Vec::new();
                        let mut offset = 0;
                        loop {
                            let chunk: Vec<u32> = index.members_page(k, offset, page).collect();
                            let len = chunk.len();
                            paged.extend(chunk);
                            offset += len;
                            if len < page {
                                break;
                            }
                        }
                        assert_eq!(
                            paged,
                            index.members(k).collect::<Vec<_>>(),
                            "k={k} page={page}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn advance_shares_untouched_chunks() {
        // A one-node change must rewrite at most two shells' chunk
        // tables (source + destination) and share every other chunk Arc.
        let values: Vec<u32> = (0..10_000).map(|u| u % 5).collect();
        let prev = ShellIndex::build(
            values
                .iter()
                .copied()
                .enumerate()
                .map(|(u, k)| (u as u32, k)),
        );
        // 9999 lands in each shell's (non-full) tail chunk, so neither
        // the removal nor the insertion splits a chunk — the zip below
        // stays aligned and measures pure copy-on-write sharing.
        let next = prev.advance([(9999u32, 4u32, 0u32)]);
        let mut shared = 0usize;
        let mut total = 0usize;
        for (a, b) in prev.shells.iter().zip(&next.shells) {
            for (ca, cb) in a.chunks.iter().zip(&b.chunks) {
                total += 1;
                if Arc::ptr_eq(ca, cb) {
                    shared += 1;
                }
            }
        }
        assert!(
            shared + 2 >= total,
            "at most one chunk per touched shell may be rewritten: {shared}/{total} shared"
        );
        assert_eq!(prev.shell_len(4), 2_000, "pinned index unchanged");
        assert_eq!(next.shell_len(4), 1_999);
        assert_eq!(next.shell_len(0), 2_001);
        assert!(next.members(0).any(|u| u == 9_999));
    }

    #[test]
    fn chunks_split_and_never_exceed_the_cap() {
        let mut list = ShellList::default();
        let mut rng = StdRng::seed_from_u64(99);
        let mut ids: Vec<u32> = (0..5_000).collect();
        ids.shuffle(&mut rng);
        for id in ids {
            list.insert(id);
        }
        assert_eq!(list.len(), 5_000);
        assert!(list.chunks.iter().all(|c| c.len() <= SHELL_CHUNK_MAX));
        assert_eq!(
            list.iter().collect::<Vec<_>>(),
            (0..5_000).collect::<Vec<_>>()
        );
        for id in (0..5_000).step_by(2) {
            list.remove(id);
        }
        assert_eq!(
            list.iter().collect::<Vec<_>>(),
            (1..5_000).step_by(2).collect::<Vec<_>>()
        );
        // iter_from agrees with skip at arbitrary offsets.
        for offset in [0usize, 1, 700, 2_499, 2_500, 9_999] {
            assert_eq!(
                list.iter_from(offset).collect::<Vec<_>>(),
                list.iter().skip(offset).collect::<Vec<_>>(),
                "offset {offset}"
            );
        }
    }

    #[test]
    fn empty_and_degenerate_indexes() {
        let empty = ShellIndex::build(std::iter::empty());
        assert_eq!(empty.shell_count(), 0);
        assert_eq!(empty.members(0).count(), 0);
        assert_eq!(empty.members_page(3, 10, 10).count(), 0);
        assert_eq!(empty.top().count(), 0);
        assert_eq!(empty.kcore_len(0), 0);

        let uniform = ShellIndex::build((0..100u32).map(|u| (u, 3u32)));
        assert_eq!(uniform.shell_count(), 4);
        assert_eq!(uniform.members(3).count(), 100);
        assert_eq!(uniform.members(4).count(), 0);
        assert_eq!(
            uniform.members_page(0, 95, 100).collect::<Vec<_>>(),
            (95..100u32).collect::<Vec<_>>()
        );
    }
}
