//! The single-writer service and its lock-free reader handles.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, PoisonError, RwLock};
use std::time::Instant;

use dkcore::dynamic::MutationError;
use dkcore::stream::{BatchStats, EdgeBatch, StreamCore};
use dkcore_graph::Graph;
use dkcore_metrics::{Counter, EventKind, Gauge, Histogram, Telemetry};

use crate::health::{HealthCell, HealthReport};
use crate::snapshot::CoreSnapshot;

/// Double-buffered epoch publication cell, shared by the single-writer
/// [`CoreService`] and the sharded service (which publishes a stitched
/// per-shard epoch vector through the same mechanism).
///
/// The writer installs each new snapshot into the buffer the readers are
/// *not* directed at, then flips the atomic index — so in steady state
/// the writer's write lock is uncontended and a reader's critical
/// section is one `Arc` clone of the active buffer. A reader that loads
/// the index just before a flip simply clones the previous epoch, which
/// stays valid for as long as it holds the `Arc`. (The locks exist only
/// to make the `Arc` swap itself safe without `unsafe` code; no query
/// work ever happens under them.)
pub(crate) struct EpochCell<T> {
    slots: [RwLock<Arc<T>>; 2],
    /// Index of the slot readers should clone from.
    current: AtomicUsize,
    /// Latest published epoch, readable without touching a slot.
    epoch: AtomicU64,
}

impl<T> EpochCell<T> {
    pub(crate) fn new(initial: Arc<T>) -> Self {
        EpochCell {
            slots: [RwLock::new(initial.clone()), RwLock::new(initial)],
            current: AtomicUsize::new(0),
            epoch: AtomicU64::new(0),
        }
    }

    pub(crate) fn load(&self) -> Arc<T> {
        let i = self.current.load(Ordering::Acquire);
        self.slots[i]
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    pub(crate) fn publish(&self, snapshot: Arc<T>, epoch: u64) {
        let next = 1 - self.current.load(Ordering::Acquire);
        *self.slots[next]
            .write()
            .unwrap_or_else(PoisonError::into_inner) = snapshot;
        self.current.store(next, Ordering::Release);
        self.epoch.store(epoch, Ordering::Release);
    }

    pub(crate) fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }
}

/// Report of one applied-and-published batch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublishReport {
    /// The epoch the batch was published as.
    pub epoch: u64,
    /// Repair statistics from [`StreamCore::apply_batch`].
    pub stats: BatchStats,
    /// Time spent applying the batch and repairing coreness, in
    /// microseconds.
    pub repair_micros: f64,
    /// Time spent building and swapping in the new snapshot, in
    /// microseconds — the window during which fresh readers still see
    /// the previous epoch.
    pub publish_micros: f64,
}

/// Registry handles for the single-writer publish path, registered once
/// at construction so the per-batch hot path is pure atomics (see the
/// crate-level "Observability" docs for the metric catalogue).
#[derive(Debug, Clone)]
pub(crate) struct PublishMetrics {
    pub(crate) publish_us: Histogram,
    pub(crate) repair_us: Histogram,
    pub(crate) removal_us: Histogram,
    pub(crate) region_us: Histogram,
    pub(crate) insert_us: Histogram,
    pub(crate) export_us: Histogram,
    pub(crate) batches: Counter,
    pub(crate) epoch: Gauge,
}

impl PublishMetrics {
    /// Registers the publish-path metrics, labelled with `shard` when
    /// the writer is one shard of a sharded service.
    pub(crate) fn register(tel: &Telemetry, shard: Option<u32>) -> Self {
        let shard_label = shard.map(|s| s.to_string());
        let labels: Vec<(&str, &str)> = match &shard_label {
            Some(s) => vec![("shard", s.as_str())],
            None => Vec::new(),
        };
        let r = tel.registry();
        PublishMetrics {
            publish_us: r.histogram("serve.publish.publish_us", &labels),
            repair_us: r.histogram("serve.publish.repair_us", &labels),
            removal_us: r.histogram("serve.repair.removal_us", &labels),
            region_us: r.histogram("serve.repair.region_us", &labels),
            insert_us: r.histogram("serve.repair.insert_us", &labels),
            export_us: r.histogram("serve.repair.export_us", &labels),
            batches: r.counter("serve.publish.batches", &labels),
            epoch: r.gauge("serve.publish.epoch", &labels),
        }
    }
}

/// The single-writer core-number service: owns the streaming engine,
/// applies batches, publishes epoch snapshots. See the
/// [crate docs](crate) for the architecture.
#[derive(Debug)]
pub struct CoreService {
    core: StreamCore,
    cell: Arc<EpochCell<CoreSnapshot>>,
    epoch: u64,
    /// The writer's copy of the latest snapshot, kept so each publish
    /// can [`advance`](CoreSnapshot::advance) incrementally instead of
    /// rebuilding `O(N + M)` state.
    latest: Arc<CoreSnapshot>,
    health: Arc<HealthCell>,
    tel: Telemetry,
    metrics: PublishMetrics,
}

impl Drop for CoreService {
    /// A writer thread that panics drops the service mid-unwind.
    /// Readers keep answering from the last published epoch either way;
    /// this flags the death so they can *observe* it through
    /// [`ServiceHandle::health`] instead of watching the epoch silently
    /// stop advancing.
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.health.poison_writer();
        }
    }
}

// EpochCell has no Debug; keep the service's Debug useful by hand.
impl<T> std::fmt::Debug for EpochCell<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpochCell")
            .field("epoch", &self.epoch.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl CoreService {
    /// Builds the service from a static graph and publishes it as
    /// epoch 0, with a fresh enabled [`Telemetry`] bundle.
    pub fn new(g: &Graph) -> Self {
        Self::with_telemetry(g, Telemetry::default())
    }

    /// Builds the service with an explicit telemetry bundle (shared
    /// with a wire server, or [`Telemetry::disabled`] to strip the
    /// instrumentation down to one branch per batch).
    pub fn with_telemetry(g: &Graph, tel: Telemetry) -> Self {
        let core = StreamCore::new(g).with_phase_timing(tel.enabled());
        let initial = Arc::new(CoreSnapshot::capture(0, &core));
        let metrics = PublishMetrics::register(&tel, None);
        CoreService {
            core,
            cell: Arc::new(EpochCell::new(initial.clone())),
            epoch: 0,
            latest: initial,
            health: HealthCell::new(HealthReport::healthy(0, 0)),
            tel,
            metrics,
        }
    }

    /// A new reader handle. Handles are cheap to clone and can be sent
    /// to any number of reader threads.
    pub fn handle(&self) -> ServiceHandle {
        ServiceHandle {
            cell: self.cell.clone(),
            health: self.health.clone(),
            tel: self.tel.clone(),
        }
    }

    /// The telemetry bundle this service records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// The latest published epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Writer-side read access to the streaming engine (current state,
    /// not an epoch snapshot).
    pub fn stream(&self) -> &StreamCore {
        &self.core
    }

    /// Applies one batch atomically, repairs the decomposition, and
    /// publishes the result as the next epoch. On a validation error
    /// nothing is mutated and no epoch is published.
    ///
    /// Publishing is **incremental**: the new epoch is
    /// [`advance`](CoreSnapshot::advance)d from the previous one using
    /// the stream's per-batch delta, structurally sharing every
    /// untouched chunk — `O(|touched| + N/C)` per publish instead of the
    /// former `O(N + M)` rebuild (see the `dkcore_serve::snapshot`
    /// module docs for the invariants, `bench_pr5` for the measured
    /// ratio).
    ///
    /// # Errors
    ///
    /// Returns the [`MutationError`] from batch validation.
    pub fn apply_batch(&mut self, batch: &EdgeBatch) -> Result<PublishReport, MutationError> {
        let t0 = Instant::now();
        // A panic inside repair means the writer is gone; make that
        // observable to health readers before the unwind continues.
        let stats = match catch_unwind(AssertUnwindSafe(|| self.core.apply_batch(batch))) {
            Ok(result) => result?,
            Err(payload) => {
                self.health.poison_writer();
                resume_unwind(payload);
            }
        };
        let repair_micros = t0.elapsed().as_secs_f64() * 1e6;

        let t1 = Instant::now();
        self.epoch += 1;
        let snapshot = Arc::new(self.latest.advance(self.epoch, &self.core, batch));
        self.latest = snapshot.clone();
        self.cell.publish(snapshot, self.epoch);
        self.health.store(HealthReport::healthy(self.epoch, 0));
        let publish_micros = t1.elapsed().as_secs_f64() * 1e6;

        if self.tel.enabled() {
            self.metrics.batches.inc();
            self.metrics.epoch.set(self.epoch as i64);
            self.metrics.repair_us.record(repair_micros as u64);
            self.metrics.publish_us.record(publish_micros as u64);
            let phases = self.core.last_phase_times();
            self.metrics.removal_us.record(phases.removal_us);
            self.metrics.region_us.record(phases.region_us);
            self.metrics.insert_us.record(phases.insert_us);
            self.metrics.export_us.record(phases.export_us);
            self.tel.event(
                EventKind::BatchApplied,
                0,
                self.epoch,
                stats.inserted as u64,
                stats.removed as u64,
            );
            self.tel.event(
                EventKind::EpochPublished,
                0,
                self.epoch,
                repair_micros as u64,
                publish_micros as u64,
            );
        }

        Ok(PublishReport {
            epoch: self.epoch,
            stats,
            repair_micros,
            publish_micros,
        })
    }
}

/// Cloneable reader handle: access to the latest published epoch
/// snapshot. See the [crate docs](crate) for the publication scheme.
#[derive(Debug, Clone)]
pub struct ServiceHandle {
    cell: Arc<EpochCell<CoreSnapshot>>,
    health: Arc<HealthCell>,
    tel: Telemetry,
}

impl ServiceHandle {
    /// The latest published snapshot. The returned `Arc` pins its epoch:
    /// queries against it stay consistent no matter how far the writer
    /// advances.
    pub fn snapshot(&self) -> Arc<CoreSnapshot> {
        self.cell.load()
    }

    /// The latest published epoch number, without loading a snapshot.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// The writer's health: `writer_alive` goes false when the writer
    /// thread panicked (queries still answer from the last epoch, but
    /// it will never advance again).
    pub fn health(&self) -> HealthReport {
        self.health.load()
    }

    /// The writer's telemetry bundle (registry + flight recorder).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore::seq::batagelj_zaversnik;
    use dkcore_graph::generators::{gnp, path};
    use dkcore_graph::NodeId;
    use rand::prelude::*;

    #[test]
    fn epochs_increment_and_match_ground_truth() {
        let g = gnp(150, 0.04, 11);
        let mut svc = CoreService::new(&g);
        let handle = svc.handle();
        assert_eq!(handle.epoch(), 0);
        assert_eq!(
            handle.snapshot().values(),
            batagelj_zaversnik(&g).as_slice()
        );

        let mut rng = StdRng::seed_from_u64(4);
        for step in 1..=12u64 {
            let mut b = EdgeBatch::new();
            let mut seen: Vec<(u32, u32)> = Vec::new();
            for _ in 0..6 {
                let x = rng.random_range(0..150u32);
                let y = rng.random_range(0..150u32);
                if x == y || seen.contains(&(x.min(y), x.max(y))) {
                    continue;
                }
                seen.push((x.min(y), x.max(y)));
                if svc.stream().has_edge(NodeId(x), NodeId(y)) {
                    b.remove(NodeId(x), NodeId(y));
                } else {
                    b.insert(NodeId(x), NodeId(y));
                }
            }
            let report = svc.apply_batch(&b).unwrap();
            assert_eq!(report.epoch, step);
            assert_eq!(report.stats.inserted, b.insertions().len());
            assert!(report.publish_micros >= 0.0);
            let snap = handle.snapshot();
            assert_eq!(snap.epoch(), step);
            assert_eq!(
                snap.values(),
                batagelj_zaversnik(snap.graph()).as_slice(),
                "published epoch {step} is exact"
            );
        }
    }

    #[test]
    fn failed_validation_publishes_nothing() {
        let g = path(5);
        let mut svc = CoreService::new(&g);
        let handle = svc.handle();
        let mut b = EdgeBatch::new();
        b.remove(NodeId(0), NodeId(4)); // not an edge
        assert!(svc.apply_batch(&b).is_err());
        assert_eq!(svc.epoch(), 0);
        assert_eq!(handle.epoch(), 0);
        assert_eq!(handle.snapshot().epoch(), 0);
        assert_eq!(handle.snapshot().graph(), &g);
    }

    #[test]
    fn pinned_snapshots_survive_double_buffer_reuse() {
        // Three publishes reuse each buffer at least once; Arcs pinned
        // from every epoch must stay intact.
        let g = path(6);
        let mut svc = CoreService::new(&g);
        let handle = svc.handle();
        let mut pinned = vec![handle.snapshot()];
        let edges = [(0u32, 5u32), (1, 3), (2, 4)];
        for &(u, v) in &edges {
            let mut b = EdgeBatch::new();
            b.insert(NodeId(u), NodeId(v));
            svc.apply_batch(&b).unwrap();
            pinned.push(handle.snapshot());
        }
        for (i, snap) in pinned.iter().enumerate() {
            assert_eq!(snap.epoch(), i as u64);
            assert_eq!(snap.edge_count(), 5 + i);
            assert_eq!(
                snap.values(),
                batagelj_zaversnik(snap.graph()).as_slice(),
                "epoch {i}"
            );
        }
    }

    #[test]
    fn poisoned_writer_is_observable_through_health() {
        // Readers keep serving the stale epoch after the writer thread
        // panics — satellite requirement: that state must be visible.
        let g = gnp(40, 0.1, 2);
        let svc = CoreService::new(&g);
        let handle = svc.handle();
        assert!(handle.health().writer_alive);
        assert!(!handle.health().is_degraded());

        let writer = std::thread::spawn(move || {
            let mut svc = svc;
            let mut b = EdgeBatch::new();
            b.insert(NodeId(0), NodeId(1));
            let _ = svc.apply_batch(&b);
            panic!("injected writer death");
        });
        assert!(writer.join().is_err(), "writer must die");

        let h = handle.health();
        assert!(!h.writer_alive, "death must be observable");
        assert!(h.is_degraded());
        assert_eq!(h.status_line(), "status=writer-dead");
        // Queries still answer from the last published epoch.
        assert_eq!(handle.epoch(), 1);
        assert!(handle.snapshot().coreness(NodeId(0)).is_some());
    }

    #[test]
    fn handles_share_the_same_cell() {
        let mut svc = CoreService::new(&path(4));
        let h1 = svc.handle();
        let h2 = h1.clone();
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(3));
        svc.apply_batch(&b).unwrap();
        assert_eq!(h1.epoch(), 1);
        assert_eq!(h2.epoch(), 1);
        assert_eq!(h1.snapshot().values(), h2.snapshot().values());
    }
}
