//! The publish/failover pipeline as an explorable state machine.
//!
//! [`ShardedCoreService`](crate::ShardedCoreService) applies each acked
//! batch through a fixed pipeline: validate + append to the batch log →
//! apply mutations to every shard arena → border-exchange to fixpoint
//! (where primary kills surface) → per-shard snapshot advance → one
//! atomic stitched flip → replica sync; kills fail over through
//! rollback + promote, and a partition with no standby left tombstones
//! the service into degraded mode until `revive_shard` drains the
//! backlog. [`PublishModel`] is that pipeline abstracted to its epoch
//! arithmetic — batches are counters, not graphs — with every
//! environment event (ack arrival, kill timing, reader pin) left
//! nondeterministic so the `dkcore-model` explorer can enumerate **all**
//! of their interleavings at small bounds.
//!
//! Checked properties (see the `dkcore_model` crate docs):
//!
//! * **invariant** — no batch is ever folded into a shard arena twice
//!   (`arena ≤ published + 1`), and no pinned reader observation mixes
//!   shard epochs (the atomic-flip guarantee);
//! * **step** — the published epoch, the reader-visible epoch vector,
//!   and the ack log are monotone, and a reader's pin never mutates;
//! * **terminal** — a quiescent healthy system has published exactly the
//!   acked log, with every arena and every cell entry agreeing.
//!
//! Two seeded faults turn the checker on itself ([`PublishScenario`]):
//! `skip_rollback` omits the attempt rollback before failover re-apply
//! (the explorer finds a double-applied batch), and `torn_publish` makes
//! per-shard snapshot advances reader-visible without the atomic flip
//! (the explorer finds a reader pinning a mixed epoch vector). Both
//! produce minimal counterexample traces — the regression tests assert
//! it — demonstrating the harness catches exactly the bug classes the
//! real pipeline's rollback and stitched flip exist to prevent.
//!
//! The `model_conformance` suite pins this abstraction to the real
//! service: matching action scripts driven through both must agree on
//! published epoch, backlog, degradation, and replica counts.

use dkcore_model::Machine;

/// Bounded scenario for [`PublishModel`]: instance sizes and fault seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PublishScenario {
    /// Number of shards (partitions).
    pub shards: usize,
    /// Standby replicas initially stocked per shard.
    pub replicas: u32,
    /// Batches the environment will ack.
    pub batches: u64,
    /// Readers, each of which may pin one snapshot at any point.
    pub readers: usize,
    /// Primary kills the environment may inject.
    pub kills: u32,
    /// Seeded fault: failover skips the attempt rollback, so a retried
    /// batch is applied on top of the partial attempt (the bug the real
    /// rollback exists to prevent).
    pub skip_rollback: bool,
    /// Seeded fault: per-shard snapshot advances become reader-visible
    /// immediately instead of through the atomic stitched flip (the bug
    /// the single `Arc` swap exists to prevent).
    pub torn_publish: bool,
}

impl Default for PublishScenario {
    fn default() -> Self {
        PublishScenario {
            shards: 2,
            replicas: 1,
            batches: 2,
            readers: 1,
            kills: 1,
            skip_rollback: false,
            torn_publish: false,
        }
    }
}

/// Canonical state of [`PublishModel`].
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PublishState {
    /// Acked (validated + logged) batches.
    log: u64,
    /// Last atomically published epoch.
    published: u64,
    /// Per shard: batches folded into its live arena. `published` when in
    /// sync; `published + 1` mid-attempt; anything higher is a
    /// double-apply (the rollback invariant).
    arena: Vec<u64>,
    /// Per shard: staged snapshot epoch (advanced pre-flip).
    pub_snap: Vec<u64>,
    /// The reader-visible stitched epoch vector (one entry per shard;
    /// uniform by construction under the atomic flip).
    cell: Vec<u64>,
    /// Standby replicas left per shard.
    replicas: Vec<u32>,
    /// Whether each shard has a live primary.
    alive: Vec<bool>,
    /// A batch attempt is in progress (mutations applied, not yet
    /// flipped or rolled back).
    attempt: bool,
    /// Some partition tombstoned with no standby left; acked batches
    /// defer to the backlog until revival.
    degraded: bool,
    /// Kill budget remaining.
    kills_left: u32,
    /// Per reader: the epoch vector it pinned, once it has.
    readers: Vec<Option<Vec<u64>>>,
}

impl PublishState {
    /// Acked batches so far.
    pub fn log(&self) -> u64 {
        self.log
    }

    /// Last published epoch.
    pub fn published(&self) -> u64 {
        self.published
    }

    /// Acked batches not yet published (the deferred backlog).
    pub fn backlog(&self) -> u64 {
        self.log - self.published
    }

    /// Whether some partition is tombstoned.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Standby replicas left for `shard`.
    pub fn replica_count(&self, shard: usize) -> u32 {
        self.replicas[shard]
    }
}

/// One event of the publish/failover pipeline — environment events (ack,
/// kill, pin) and protocol micro-steps (whose *enabledness* encodes the
/// controller logic of `apply_next`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PublishAction {
    /// The environment acks one more batch (validate + log).
    Ack,
    /// Start applying the next logged batch: fold its mutations into
    /// every shard arena, then run the exchange.
    BeginAttempt,
    /// A primary dies (batch boundary or mid-exchange; never between the
    /// snapshot advances of a publish, which are driven by the single
    /// writer thread).
    Kill {
        /// The shard whose primary dies.
        shard: usize,
    },
    /// Undo the partial attempt from the live arenas before failover
    /// (skipped when [`PublishScenario::skip_rollback`] is seeded).
    Rollback,
    /// A standby replays the log and takes over the dead partition.
    Promote {
        /// The shard being promoted.
        shard: usize,
    },
    /// No standby left: tombstone, enter degraded mode, defer.
    Tombstone,
    /// Rebuild every downed partition from the published chunks and
    /// restock its standbys; the backlog then drains through ordinary
    /// attempts.
    Revive,
    /// Advance one shard's snapshot to the attempt epoch (pre-flip).
    Advance {
        /// The shard whose snapshot advances.
        shard: usize,
    },
    /// The atomic stitched flip: all advanced snapshots become
    /// reader-visible at once.
    Flip,
    /// A reader pins the currently visible epoch vector.
    Pin {
        /// The pinning reader.
        reader: usize,
    },
}

/// Explorable model of the sharded publish/failover pipeline; see the
/// [module docs](self).
pub struct PublishModel {
    scenario: PublishScenario,
}

impl PublishModel {
    /// Builds the model for `scenario`.
    pub fn new(scenario: PublishScenario) -> Self {
        PublishModel { scenario }
    }

    fn all_alive(&self, s: &PublishState) -> bool {
        s.alive.iter().all(|&a| a)
    }

    fn publishing(&self, s: &PublishState) -> bool {
        s.pub_snap.iter().any(|&e| e > s.published)
    }
}

impl Machine for PublishModel {
    type State = PublishState;
    type Action = PublishAction;

    fn initial(&self) -> PublishState {
        let n = self.scenario.shards;
        PublishState {
            log: 0,
            published: 0,
            arena: vec![0; n],
            pub_snap: vec![0; n],
            cell: vec![0; n],
            replicas: vec![self.scenario.replicas; n],
            alive: vec![true; n],
            attempt: false,
            degraded: false,
            kills_left: self.scenario.kills,
            readers: vec![None; self.scenario.readers],
        }
    }

    fn actions(&self, s: &PublishState, out: &mut Vec<PublishAction>) {
        if s.log < self.scenario.batches {
            out.push(PublishAction::Ack);
        }
        if !s.degraded && !s.attempt && self.all_alive(s) && s.log > s.published {
            out.push(PublishAction::BeginAttempt);
        }
        if s.kills_left > 0 && !self.publishing(s) {
            for (i, &a) in s.alive.iter().enumerate() {
                if a {
                    out.push(PublishAction::Kill { shard: i });
                }
            }
        }
        if s.attempt && !self.all_alive(s) {
            out.push(PublishAction::Rollback);
        }
        if !s.attempt {
            let mut tombstone = false;
            for (i, &a) in s.alive.iter().enumerate() {
                if !a {
                    if s.replicas[i] > 0 {
                        out.push(PublishAction::Promote { shard: i });
                    } else if !s.degraded {
                        tombstone = true;
                    }
                }
            }
            if tombstone {
                out.push(PublishAction::Tombstone);
            }
        }
        if s.degraded {
            out.push(PublishAction::Revive);
        }
        if s.attempt && self.all_alive(s) && s.arena.iter().all(|&a| a == s.published + 1) {
            for (i, &e) in s.pub_snap.iter().enumerate() {
                if e == s.published {
                    out.push(PublishAction::Advance { shard: i });
                }
            }
            if s.pub_snap.iter().all(|&e| e == s.published + 1) {
                out.push(PublishAction::Flip);
            }
        }
        for (r, pin) in s.readers.iter().enumerate() {
            if pin.is_none() {
                out.push(PublishAction::Pin { reader: r });
            }
        }
    }

    fn step(&self, s: &PublishState, a: &PublishAction) -> PublishState {
        let mut n = s.clone();
        match *a {
            PublishAction::Ack => n.log += 1,
            PublishAction::BeginAttempt => {
                // apply_mutations touches every shard arena before the
                // exchange rounds run.
                for (i, &alive) in n.alive.iter().enumerate() {
                    if alive {
                        n.arena[i] += 1;
                    }
                }
                n.attempt = true;
            }
            PublishAction::Kill { shard } => {
                n.alive[shard] = false;
                n.kills_left -= 1;
            }
            PublishAction::Rollback => {
                if !self.scenario.skip_rollback {
                    for (i, &alive) in n.alive.iter().enumerate() {
                        if alive {
                            n.arena[i] = n.published;
                        }
                    }
                }
                n.attempt = false;
            }
            PublishAction::Promote { shard } => {
                // The standby replays the log to the published epoch.
                n.alive[shard] = true;
                n.replicas[shard] -= 1;
                n.arena[shard] = n.published;
            }
            PublishAction::Tombstone => n.degraded = true,
            PublishAction::Revive => {
                for (i, alive) in n.alive.iter_mut().enumerate() {
                    if !*alive {
                        // Rebuilt from the published chunks, standbys
                        // restocked; the backlog drains through ordinary
                        // attempts from here.
                        *alive = true;
                        n.arena[i] = n.published;
                        n.replicas[i] = self.scenario.replicas;
                    }
                }
                n.degraded = false;
            }
            PublishAction::Advance { shard } => {
                n.pub_snap[shard] = n.published + 1;
                if self.scenario.torn_publish {
                    // The seeded fault: the advance is reader-visible
                    // without waiting for the atomic flip.
                    n.cell[shard] = n.pub_snap[shard];
                }
            }
            PublishAction::Flip => {
                if !self.scenario.torn_publish {
                    n.cell.clone_from(&n.pub_snap);
                }
                n.published += 1;
                n.attempt = false;
            }
            PublishAction::Pin { reader } => {
                n.readers[reader] = Some(n.cell.clone());
            }
        }
        n
    }

    fn invariant(&self, s: &PublishState) -> Result<(), String> {
        if s.published > s.log {
            return Err(format!(
                "published {} ahead of acked log {}",
                s.published, s.log
            ));
        }
        for (i, (&arena, &alive)) in s.arena.iter().zip(s.alive.iter()).enumerate() {
            if alive && arena > s.published + 1 {
                return Err(format!(
                    "shard {i}: arena at {arena} with published {} — a batch was \
                     applied twice without rollback",
                    s.published
                ));
            }
        }
        for (r, pin) in s.readers.iter().enumerate() {
            if let Some(v) = pin {
                if v.iter().any(|&e| e != v[0]) {
                    return Err(format!(
                        "reader {r} pinned a torn snapshot mixing shard epochs {v:?}"
                    ));
                }
            }
        }
        Ok(())
    }

    fn check_step(
        &self,
        from: &PublishState,
        a: &PublishAction,
        to: &PublishState,
    ) -> Result<(), String> {
        if to.published < from.published || to.log < from.log {
            return Err(format!("epoch or log went backwards on {a:?}"));
        }
        for (i, (&b, &x)) in from.cell.iter().zip(to.cell.iter()).enumerate() {
            if x < b {
                return Err(format!(
                    "reader-visible epoch of shard {i} went backwards {b} -> {x} on {a:?}"
                ));
            }
        }
        for (r, (b, x)) in from.readers.iter().zip(to.readers.iter()).enumerate() {
            if b.is_some() && b != x {
                return Err(format!("reader {r}'s pin mutated on {a:?}"));
            }
        }
        Ok(())
    }

    fn terminal(&self, s: &PublishState) -> Result<(), String> {
        // Quiescent and healthy: everything acked must have been
        // published — failover never loses an acked batch — and every
        // arena and reader-visible entry must agree on that epoch.
        if s.published != s.log {
            return Err(format!(
                "quiescent with {} acked batches but only {} published — an acked \
                 batch was lost",
                s.log, s.published
            ));
        }
        for (i, &arena) in s.arena.iter().enumerate() {
            if arena != s.published {
                return Err(format!(
                    "quiescent but shard {i} arena is {arena}, published {}",
                    s.published
                ));
            }
        }
        for (i, &e) in s.cell.iter().enumerate() {
            if e != s.published {
                return Err(format!(
                    "quiescent but shard {i} is visible at epoch {e}, published {}",
                    s.published
                ));
            }
        }
        Ok(())
    }

    fn render_action(&self, a: &PublishAction) -> String {
        match *a {
            PublishAction::Ack => "ack".into(),
            PublishAction::BeginAttempt => "begin-attempt".into(),
            PublishAction::Kill { shard } => format!("kill shard={shard}"),
            PublishAction::Rollback => "rollback".into(),
            PublishAction::Promote { shard } => format!("promote shard={shard}"),
            PublishAction::Tombstone => "tombstone".into(),
            PublishAction::Revive => "revive".into(),
            PublishAction::Advance { shard } => format!("advance shard={shard}"),
            PublishAction::Flip => "flip".into(),
            PublishAction::Pin { reader } => format!("pin reader={reader}"),
        }
    }

    fn render_state(&self, s: &PublishState) -> String {
        format!(
            "log={} published={} arena={:?} cell={:?} alive={:?} degraded={}",
            s.log, s.published, s.arena, s.cell, s.alive, s.degraded
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore_model::{ExploreConfig, Explorer, Report};

    fn explore(scenario: PublishScenario) -> Report {
        Explorer::new(ExploreConfig::default()).run(&PublishModel::new(scenario))
    }

    #[test]
    fn healthy_pipeline_proves_across_shard_and_replica_bounds() {
        for shards in [1usize, 2] {
            for replicas in [0u32, 1, 2] {
                let report = explore(PublishScenario {
                    shards,
                    replicas,
                    batches: 3,
                    readers: 1,
                    kills: 0,
                    ..PublishScenario::default()
                });
                assert!(
                    report.proved(),
                    "shards={shards} replicas={replicas}: {}",
                    report.summary()
                );
            }
        }
    }

    #[test]
    fn failover_proves_with_kills_at_every_point() {
        for replicas in [0u32, 1, 2] {
            for kills in [1u32, 2] {
                let report = explore(PublishScenario {
                    shards: 2,
                    replicas,
                    batches: 2,
                    readers: 1,
                    kills,
                    ..PublishScenario::default()
                });
                assert!(
                    report.proved(),
                    "replicas={replicas} kills={kills}: {}",
                    report.summary()
                );
                // Kills must actually reach the interesting paths.
                assert!(report.states > 100, "only {} states", report.states);
            }
        }
    }

    #[test]
    #[ignore = "exhaustive tier (CI model-check job): widest publish bounds"]
    fn widest_bounds_prove() {
        let report = explore(PublishScenario {
            shards: 2,
            replicas: 2,
            batches: 4,
            readers: 2,
            kills: 2,
            ..PublishScenario::default()
        });
        assert!(report.proved(), "{}", report.summary());
    }

    #[test]
    fn skipping_rollback_is_caught_with_a_minimal_trace() {
        let report = explore(PublishScenario {
            shards: 2,
            replicas: 1,
            batches: 1,
            readers: 0,
            kills: 1,
            skip_rollback: true,
            ..PublishScenario::default()
        });
        let cx = report
            .counterexample()
            .expect("skipping rollback must double-apply a batch");
        assert!(cx.minimal);
        assert!(
            cx.violation.contains("applied twice"),
            "unexpected violation: {}",
            cx.violation
        );
        // The shortest exhibit: ack, begin, kill, (skipped) rollback,
        // promote, and the re-attempt that double-applies.
        let trace = cx.render();
        for needle in [
            "kind=action detail=kill",
            "detail=rollback",
            "detail=begin-attempt",
        ] {
            assert!(trace.contains(needle), "missing {needle} in:\n{trace}");
        }
    }

    #[test]
    fn torn_publish_is_caught_by_a_reader_pin() {
        let report = explore(PublishScenario {
            shards: 2,
            replicas: 0,
            batches: 1,
            readers: 1,
            kills: 0,
            torn_publish: true,
            ..PublishScenario::default()
        });
        let cx = report
            .counterexample()
            .expect("a reader must observe the torn publish");
        assert!(cx.minimal);
        assert!(
            cx.violation.contains("torn snapshot"),
            "unexpected violation: {}",
            cx.violation
        );
        let trace = cx.render();
        assert!(trace.contains("detail=advance shard="), "{trace}");
        assert!(trace.contains("detail=pin reader=0"), "{trace}");
    }
}
