//! Sharded multi-writer serving: one [`CoreService`]-style writer per
//! partition, cross-shard coreness agreement via border-estimate
//! exchange, and a stitching query front end.
//!
//! # Architecture
//!
//! The union graph is partitioned over `S` shards with the one-to-many
//! deployment's [`Assignment`] policies (§3.2.2 of the paper). Each
//! [`Shard`] owns its partition's nodes: their adjacency (an
//! [`AdjacencyArena`] whose slots are shard-local, values global node
//! ids), their estimates, and a **border cache** of the last announced
//! estimate of every remote neighbor — exactly the state a host of the
//! one-to-many protocol keeps.
//!
//! Applying a batch ([`ShardedCoreService::apply_batch`]) is the
//! protocol's re-convergence, warm-started:
//!
//! 1. mutations are applied to the owning shards' arenas (a cross-shard
//!    edge updates one arc in each shard);
//! 2. the coordinator grows merged insertion/removal
//!    [`candidate_regions`] over the *union* graph through a
//!    shard-backed neighbor closure, and seeds every candidate and
//!    removal endpoint with the proven upper bound
//!    `min(old + region insertions, new degree)`;
//! 3. synchronous rounds run until quiescence: every shard drains its
//!    worklist in parallel (recomputing Algorithm 2's `computeIndex`
//!    from owned estimates plus the border cache, cascading drops
//!    locally), then the coordinator routes each dropped **border**
//!    estimate to the shards owning a neighbor of the dropped node —
//!    the `⟨S⟩` exchange of the host protocol;
//! 4. at the fixpoint every estimate is locally justified, which makes
//!    the stitched vector the *exact* coreness of the union graph (the
//!    estimates started as upper bounds and only ever descended — the
//!    same safety/convergence argument as the paper's Theorems 2/3,
//!    checked end-to-end against Batagelj–Zaveršnik by
//!    `tests/sharded_oracle.rs` at shard counts {1, 2, 4});
//! 5. each shard publishes its local epoch **incrementally** (chunked
//!    copy-on-write state exactly like
//!    [`CoreSnapshot`](crate::CoreSnapshot)), and the coordinator swaps
//!    the assembled [`StitchedSnapshot`] — a consistent vector of
//!    per-shard epochs — into the publication cell in one atomic flip,
//!    so readers can never observe shards from different epochs.
//!
//! [`ShardedHandle`] is the stitching front end: every query family of
//! the single-writer service (point coreness, membership, histograms,
//! top-k, induced subgraphs) is answered against one pinned stitched
//! epoch, with cross-shard results merged in global id order.
//!
//! # Worker lifecycle and barrier protocol
//!
//! With [`ExchangeMode::Pooled`] (the default) the per-round drains of
//! step 3 run on a **persistent worker pool**
//! ([`dkcore_runtime::WorkerPool`], the barrier primitive of the live
//! runtime's coordinator): one long-lived thread per shard, created on
//! the first multi-shard exchange round and kept for the life of the
//! service — across rounds, batch attempts, and batches. Between
//! dispatches a worker parks on its job channel (a blocking receive),
//! so an idle pool costs nothing while the coordinator validates,
//! routes, or publishes.
//!
//! Because the workspace forbids `unsafe`, workers never borrow
//! coordinator state: each round the coordinator *moves* every live
//! [`Shard`] (plus its outgoing staging frames) into its worker and the
//! worker moves both back with the drain finished — an ownership
//! round trip per shard per round, replacing a `thread::spawn` + join
//! per shard per round. A round is the same deliver/flush double
//! barrier as `dkcore-runtime`: the coordinator first applies last
//! round's staged frames (deliver), checks quiescence, then dispatches
//! drains and collects replies in shard order (flush). Workers
//! optionally pin themselves to cores ([`ShardedConfig::pin`], CLI
//! `--pin-cores`) — strictly best-effort, degrading to unpinned where
//! the platform refuses.
//!
//! Failures compose with the pool exactly as with spawned threads. A
//! drain panic is caught *inside* the worker (the shard value survives
//! and returns to the coordinator), reported in the reply, and
//! surfaces as a primary death at the round boundary: the attempt
//! rolls back and promotion replaces the returned shard's state
//! wholesale. The worker thread itself never dies with its primary —
//! it simply keeps serving whatever shard value the coordinator sends
//! next (the promoted replica's, after failover). Stalled shards are
//! not dispatched at all (no job, no reply), and a shard killed by an
//! injected `kill=S@E:R` aborts the attempt after its round's replies
//! are collected, before any staged frame is routed.
//!
//! Border traffic itself moves in **recycled per-(src, dst) staging
//! frames** (the PR 2 `⟨S⟩` slot-translated batch): a drain appends
//! slot-translated messages to one reusable `Vec` per destination
//! shard instead of sending each message through the network
//! individually. On a lossless plan the frames *are* the network —
//! they are applied wholesale at the next deliver barrier and their
//! buffers recycled. Under a fault plan every staged message is still
//! unpacked through [`BorderNet::send`] individually, so the
//! drop/duplicate/delay/retransmit semantics below are preserved
//! per message on top of the batched frames.
//!
//! # Failure model
//!
//! The service tolerates (and [`crate::fault`] deterministically
//! injects) three failure classes, all scoped to one batch attempt:
//!
//! - **Lossy border exchange.** Round messages (estimate drops) may be
//!   dropped, duplicated, or delayed. Delivery applies `min` to the
//!   border cache, so duplicates and reordering are no-ops and a stale
//!   higher value is merely an upper bound — the paper's safety
//!   argument. Dropped copies are re-sent with exponential backoff;
//!   quiescence additionally requires an empty network, so a round
//!   cannot end with a drop in flight. Seed messages (which *raise*
//!   bounds at batch start) ride the reliable control plane and are
//!   never faulted: a lost raise would leave a neighbor computing from
//!   a too-low bound that monotone descent can never repair.
//! - **Primary death.** A shard's primary writer can die at a batch
//!   boundary, after an exchange round (injected kill, or a real panic
//!   caught from its drain thread), or by missing more than
//!   `heartbeat_timeout` round heartbeats (injected stall). The whole
//!   batch attempt rolls back — mutations inverted, estimates restored
//!   from the epoch change log, border caches reset to the exact
//!   between-epoch coreness — and a standby [`Replica`] is promoted:
//!   it replays the validated batch log from its applied epoch up to
//!   the published epoch vector (its adjacency then equals the
//!   published [`StitchedSnapshot`]'s), rebuilds estimates and border
//!   cache from the coordinator's exact `global_core`, and the batch is
//!   re-attempted. Because everything is restored to the last published
//!   epoch first, failover is invisible to readers except as latency.
//! - **Partition loss (degraded mode).** When a primary dies with no
//!   standby left, the partition is down: validated batches are
//!   accepted into the log but *deferred* (the published epoch
//!   freezes), readers keep answering from the last consistent
//!   stitched epoch, and health reports `DEGRADED(shard, epoch_lag)`.
//!   [`ShardedCoreService::revive_shard`] rebuilds the partition from
//!   its published snapshot chunks plus `global_core`, restocks
//!   replicas, and drains the backlog — recovery is bounded by the
//!   number of deferred batches.
//!
//! `tests/chaos_oracle.rs` drives churn under seeded fault plans and
//! checks that every observable stitched epoch still equals fresh
//! Batagelj–Zaveršnik on the union graph.
//!
//! [`CoreService`]: crate::CoreService

use std::collections::HashMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

use dkcore::compute_index;
use dkcore::dynamic::MutationError;
use dkcore::one_to_many::{Assignment, AssignmentPolicy};
use dkcore::seq::batagelj_zaversnik;
use dkcore::stream::{candidate_regions, AdjacencyArena, EdgeBatch};
use dkcore_graph::{Graph, NodeId};
use dkcore_metrics::{Counter, EventKind, Gauge, Histogram, Percentiles, Telemetry};
use dkcore_runtime::WorkerPool;

use crate::fault::{Fate, FaultPlan, FaultSession};
use crate::health::{ExchangeHealth, HealthCell, HealthReport, ShardHealth};
use crate::index::{MergedMembers, MergedTop, ShellIndex};
use crate::service::EpochCell;
use crate::snapshot::{apply_shell_change, trim_shells, AdjChunk, ChunkedU32, ADJ_CHUNK};

/// A batch attempt is aborted and retried at most this many times
/// before the fault plan is declared unsatisfiable.
const MAX_BATCH_ATTEMPTS: u32 = 5;
/// A single border message is (re-)sent at most this many times before
/// the attempt is aborted and re-run.
const MAX_SEND_ATTEMPTS: u32 = 12;
/// Hard safety cap on exchange rounds per attempt (never reached by a
/// satisfiable plan; guards against a runaway injected schedule).
const MAX_ROUNDS: u32 = 100_000;

/// Node → (shard, local slot) tables shared by the shards, the
/// coordinator, and every stitched snapshot.
#[derive(Debug)]
struct ShardMap {
    /// Owning shard of each node.
    owner: Vec<u32>,
    /// Local slot of each node within its owning shard.
    slot: Vec<u32>,
}

/// One estimate-drop message of the border exchange: `source` (owned by
/// the sending shard, a global id — the receiver's border-cache key)
/// dropped to `est`; the node at `target_slot` of shard `dest` neighbors
/// it and must be re-examined. The target is **slot-translated by the
/// sender** (which owns the shard map anyway), so delivery is a direct
/// array index — the PR 2 `⟨S⟩` staging convention.
#[derive(Debug, Clone, Copy)]
struct BorderMsg {
    dest: u32,
    target_slot: u32,
    source: u32,
    est: u32,
}

/// One border-cache entry: the cached estimate plus the number of owned
/// arcs referencing the remote node (eviction at zero).
#[derive(Debug, Clone, Copy)]
struct BorderEntry {
    est: u32,
    refs: u32,
}

/// The per-shard writer state: the partition's slice of the union graph
/// plus the border cache. See the [module docs](self).
struct Shard {
    /// Sorted global ids of the owned nodes (slot `i` ↔ `owned[i]`).
    owned: Vec<u32>,
    /// Slot-indexed adjacency; values are global node ids.
    adj: AdjacencyArena,
    /// Per-slot estimate: exact coreness between epochs.
    est: Vec<u32>,
    /// Border cache: last announced estimate of every *current* remote
    /// neighbor (global id), refcounted by how many owned arcs point at
    /// it so churn that removes the last cross-shard edge to a node also
    /// evicts its entry (no unbounded growth under sliding-window
    /// workloads).
    remote_est: HashMap<u32, BorderEntry>,
    /// Worklist of local slots (deduplicated by `queued`).
    queue: VecDeque<u32>,
    queued: Vec<bool>,
    /// Epoch-change log: slot → pre-epoch estimate, stamped per epoch;
    /// `epoch_touched` lists the stamped slots so the publish-side
    /// change gather is `O(|touched|)`, not a full slot scan.
    epoch_mark: Vec<u64>,
    epoch_old: Vec<u32>,
    epoch_touched: Vec<u32>,
    /// Latest published local snapshot (the chain `advance` extends).
    snapshot: Arc<ShardSnapshot>,
}

impl Shard {
    /// Enqueues a local slot for (re-)examination.
    fn enqueue(&mut self, slot: u32) {
        if !self.queued[slot as usize] {
            self.queued[slot as usize] = true;
            self.queue.push_back(slot);
        }
    }

    /// Records the pre-epoch value of a slot once per epoch. The caller
    /// (the coordinator) clears `epoch_touched` at every batch start.
    fn mark(&mut self, slot: u32, epoch: u64) {
        if self.epoch_mark[slot as usize] != epoch {
            self.epoch_mark[slot as usize] = epoch;
            self.epoch_old[slot as usize] = self.est[slot as usize];
            self.epoch_touched.push(slot);
        }
    }

    /// Sets a seeded estimate and notifies the neighbors: local ones are
    /// enqueued, remote ones produce border messages (which both refresh
    /// the destination's cache and enqueue the target).
    fn seed(
        &mut self,
        map: &ShardMap,
        me: u32,
        slot: u32,
        value: u32,
        epoch: u64,
        out: &mut Vec<BorderMsg>,
    ) {
        self.mark(slot, epoch);
        let changed = self.est[slot as usize] != value;
        self.est[slot as usize] = value;
        self.enqueue(slot);
        if !changed {
            return;
        }
        let u = self.owned[slot as usize];
        for i in 0..self.adj.degree(slot as usize) as usize {
            let v = self.adj.neighbors(slot as usize)[i];
            let owner = map.owner[v as usize];
            if owner == me {
                self.enqueue(map.slot[v as usize]);
            } else {
                out.push(BorderMsg {
                    dest: owner,
                    target_slot: map.slot[v as usize],
                    source: u,
                    est: value,
                });
            }
        }
    }

    /// Drains the worklist to its local fixpoint: Algorithm 2 over owned
    /// estimates plus the border cache, cascading drops through owned
    /// neighbors immediately and staging one slot-translated border
    /// message per remote neighbor of every net-dropped node into
    /// `stage[destination shard]` (recycled per-(src, dst) frames — the
    /// caller clears them after routing). Returns the number of staged
    /// messages.
    fn drain(&mut self, map: &ShardMap, me: u32, epoch: u64, stage: &mut [Vec<BorderMsg>]) -> u64 {
        let mut dropped: Vec<u32> = Vec::new();
        while let Some(s) = self.queue.pop_front() {
            self.queued[s as usize] = false;
            let cap = self.est[s as usize];
            if cap == 0 {
                continue;
            }
            let new = {
                let nbrs = self.adj.neighbors(s as usize);
                compute_index(
                    nbrs.iter().map(|&v| {
                        if map.owner[v as usize] == me {
                            self.est[map.slot[v as usize] as usize]
                        } else {
                            self.remote_est
                                .get(&v)
                                .expect("border cache covers every remote neighbor")
                                .est
                        }
                    }),
                    cap,
                )
            };
            if new < cap {
                self.mark(s, epoch);
                self.est[s as usize] = new;
                dropped.push(s);
                // Owned neighbors re-examine immediately (same round).
                for i in 0..self.adj.degree(s as usize) as usize {
                    let v = self.adj.neighbors(s as usize)[i];
                    if map.owner[v as usize] == me {
                        self.enqueue(map.slot[v as usize]);
                    }
                }
            }
        }
        // One message per (dropped node, remote neighbor), carrying the
        // node's final value for this round.
        let mut staged = 0u64;
        dropped.sort_unstable();
        dropped.dedup();
        for s in dropped {
            let u = self.owned[s as usize];
            let value = self.est[s as usize];
            for &v in self.adj.neighbors(s as usize) {
                let owner = map.owner[v as usize];
                if owner != me {
                    stage[owner as usize].push(BorderMsg {
                        dest: owner,
                        target_slot: map.slot[v as usize],
                        source: u,
                        est: value,
                    });
                    staged += 1;
                }
            }
        }
        staged
    }

    /// An empty stand-in left in the coordinator's slot while the real
    /// shard value is travelling through a pool worker (the ownership
    /// round trip of the pooled exchange). Never drained or published.
    fn placeholder() -> Shard {
        Shard {
            owned: Vec::new(),
            adj: AdjacencyArena::from_sorted_lists(std::iter::empty::<Vec<u32>>()),
            est: Vec::new(),
            remote_est: HashMap::new(),
            queue: VecDeque::new(),
            queued: Vec::new(),
            epoch_mark: Vec::new(),
            epoch_old: Vec::new(),
            epoch_touched: Vec::new(),
            snapshot: Arc::new(ShardSnapshot {
                coreness: ChunkedU32::default(),
                degrees: ChunkedU32::default(),
                adj: Vec::new(),
                shell_sizes: vec![0],
                index: ShellIndex::default(),
            }),
        }
    }

    /// The (global, old, new) coreness changes of this epoch, gathered
    /// from the touched-slot log in `O(|touched|)`.
    fn epoch_changes(&self, epoch: u64) -> Vec<(u32, u32, u32)> {
        let mut out = Vec::new();
        for &s in &self.epoch_touched {
            let s = s as usize;
            if self.epoch_mark[s] == epoch && self.epoch_old[s] != self.est[s] {
                out.push((self.owned[s], self.epoch_old[s], self.est[s]));
            }
        }
        out
    }
}

/// One shard's published epoch: chunked copy-on-write coreness, degrees
/// and adjacency over the shard's local slots (values are global ids).
#[derive(Debug)]
pub(crate) struct ShardSnapshot {
    coreness: ChunkedU32,
    degrees: ChunkedU32,
    adj: Vec<Arc<AdjChunk>>,
    /// Local shell-size histogram (trailing zeros trimmed).
    shell_sizes: Vec<usize>,
    /// Per-shell membership lists holding **global** ids — valid because
    /// `owned` is sorted, so ascending slot order is ascending global-id
    /// order. The stitched view merges these across shards for O(answer)
    /// `members` / `top_k`.
    index: ShellIndex,
}

impl ShardSnapshot {
    fn capture(shard: &Shard) -> Self {
        let n = shard.owned.len();
        let coreness = ChunkedU32::from_iter(n, shard.est.iter().copied());
        let degrees = ChunkedU32::from_iter(n, (0..n).map(|s| shard.adj.degree(s)));
        let adj = (0..n.div_ceil(ADJ_CHUNK))
            .map(|ci| {
                let base = ci * ADJ_CHUNK;
                Arc::new(AdjChunk::pack(&shard.adj, base, ADJ_CHUNK.min(n - base)))
            })
            .collect();
        let max_core = shard.est.iter().copied().max().unwrap_or(0) as usize;
        let mut shell_sizes = vec![0usize; max_core + 1];
        for &k in &shard.est {
            shell_sizes[k as usize] += 1;
        }
        let index = ShellIndex::build(shard.owned.iter().copied().zip(shard.est.iter().copied()));
        ShardSnapshot {
            coreness,
            degrees,
            adj,
            shell_sizes,
            index,
        }
    }

    /// Incremental successor: copy-on-write rewrites of the chunks
    /// holding a changed coreness or a mutated adjacency slot, all other
    /// chunks shared with `self`.
    fn advance(&self, shard: &Shard, changes: &[(u32, u32, u32)], dirty_slots: &[u32]) -> Self {
        let n = shard.owned.len();
        let mut next = ShardSnapshot {
            coreness: self.coreness.clone(),
            degrees: self.degrees.clone(),
            adj: self.adj.clone(),
            shell_sizes: self.shell_sizes.clone(),
            // The epoch's (global, old, new) delta maintains the shell
            // index copy-on-write, like every other chunked array here.
            index: self.index.advance(changes.iter().copied()),
        };
        for &(u, old, new) in changes {
            let s = shard_slot(shard, u);
            next.coreness.set(s, new);
            apply_shell_change(&mut next.shell_sizes, old, new);
        }
        trim_shells(&mut next.shell_sizes);
        let mut dirty_chunks: Vec<usize> = Vec::new();
        for &s in dirty_slots {
            next.degrees.set(s as usize, shard.adj.degree(s as usize));
            let ci = s as usize / ADJ_CHUNK;
            if !dirty_chunks.contains(&ci) {
                dirty_chunks.push(ci);
            }
        }
        for ci in dirty_chunks {
            let base = ci * ADJ_CHUNK;
            next.adj[ci] = Arc::new(AdjChunk::pack(&shard.adj, base, ADJ_CHUNK.min(n - base)));
        }
        next
    }

    #[inline]
    fn coreness_at(&self, slot: usize) -> u32 {
        self.coreness.get(slot).expect("slot in range")
    }

    #[inline]
    fn degree_at(&self, slot: usize) -> u32 {
        self.degrees.get(slot).expect("slot in range")
    }

    #[inline]
    fn neighbors_at(&self, slot: usize) -> &[u32] {
        self.adj[slot / ADJ_CHUNK].neighbors(slot % ADJ_CHUNK)
    }
}

/// Busy time as a percentage of capacity; 0 when nothing was measured.
fn busy_pct(busy_nanos: u64, cap_nanos: u64) -> f64 {
    if cap_nanos == 0 {
        0.0
    } else {
        busy_nanos as f64 / cap_nanos as f64 * 100.0
    }
}

/// The slot of global node `u` inside `shard` (binary search over the
/// sorted owned list — used only on the publish path).
fn shard_slot(shard: &Shard, u: u32) -> usize {
    shard
        .owned
        .binary_search(&u)
        .expect("change log only names owned nodes")
}

/// How exchange-round drains are executed. Both modes share one staged
/// message flow, so their reports (rounds, messages, resends) and the
/// published epochs are bit-identical — asserted by
/// `tests/pool_identity.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExchangeMode {
    /// Persistent per-shard worker pool (the default): workers live
    /// across rounds and batches, parking between dispatches. See the
    /// [module docs](self).
    #[default]
    Pooled,
    /// Spawn-per-round scoped threads — the pre-pool behavior, kept as
    /// the baseline for `bench_pr8` and the bit-identity tests.
    Spawn,
}

/// Configuration of the sharded service beyond the shard count:
/// assignment policy, replication factor, and the fault machinery.
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Node-to-shard assignment policy (default: the paper's modulo).
    pub policy: AssignmentPolicy,
    /// Standby replicas per partition (default 0: no failover, a dead
    /// primary puts its partition straight into degraded mode).
    pub replicas: usize,
    /// Seeded fault schedule (default [`FaultPlan::none`]).
    pub fault_plan: FaultPlan,
    /// Round heartbeats a primary may miss before it is declared dead
    /// (default 3).
    pub heartbeat_timeout: u32,
    /// Replicas replay the batch log once they trail the published
    /// epoch by this many batches (default 1: every epoch; larger lags
    /// make promotion replay longer log suffixes).
    pub replica_lag: u64,
    /// Drain execution strategy (default [`ExchangeMode::Pooled`]).
    pub exchange: ExchangeMode,
    /// Best-effort: pin pool worker `i` to core `i % available_cores`
    /// (see [`dkcore_runtime::pin_to_core`]). No effect with
    /// [`ExchangeMode::Spawn`]; falls back gracefully where pinning is
    /// unsupported (default false).
    pub pin: bool,
    /// Telemetry bundle the service records into (default: a fresh
    /// enabled bundle; pass a shared one to expose the service through
    /// a wire server, or [`Telemetry::disabled`] to strip the
    /// instrumentation down to one branch per batch).
    pub telemetry: Telemetry,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        ShardedConfig {
            policy: AssignmentPolicy::Modulo,
            replicas: 0,
            fault_plan: FaultPlan::none(),
            heartbeat_timeout: 3,
            replica_lag: 1,
            exchange: ExchangeMode::default(),
            pin: false,
            telemetry: Telemetry::default(),
        }
    }
}

/// One pooled drain dispatch: the shard value plus its recycled
/// outgoing frames (one per destination shard), moved into the worker
/// and moved back with [`DrainReply`].
struct DrainJob {
    shard: Shard,
    stage: Vec<Vec<BorderMsg>>,
    epoch: u64,
}

/// A pool worker's reply: the shard and frames travelling home, the
/// staged message count, whether the drain panicked (a primary death
/// observed at the round boundary), and the busy time for the
/// worker-utilization counters.
struct DrainReply {
    shard: Shard,
    stage: Vec<Vec<BorderMsg>>,
    staged: u64,
    panicked: bool,
    busy_nanos: u64,
}

/// A standby writer for one partition: a copy of the partition's
/// adjacency kept `applied_epoch`-current by replaying the validated
/// batch log. Estimates and the border cache are *not* replicated —
/// promotion rebuilds both from the coordinator's exact between-epoch
/// `global_core`, which is the published truth anyway.
#[derive(Debug)]
struct Replica {
    applied_epoch: u64,
    adj: AdjacencyArena,
}

/// Why a batch attempt was aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AttemptError {
    /// Shard's primary died (panic, injected kill, or heartbeat loss).
    Dead(usize),
    /// The network schedule exhausted a message's send attempts (or the
    /// round safety cap); retrying re-rolls the fates.
    Stuck,
}

/// Counters from one successful batch attempt.
struct AttemptOutcome {
    rounds: u32,
    messages: u64,
    resends: u64,
    /// Wall time of every exchange round, in microseconds.
    round_us: Vec<f64>,
    /// Summed drain time across workers (the numerator of the
    /// worker-utilization counter).
    busy_nanos: u64,
    /// Summed `round wall × dispatched workers` (the denominator).
    cap_nanos: u64,
}

/// The in-process "network" for one batch attempt: fresh, delayed and
/// duplicated copies in flight, plus a retransmit buffer with
/// exponential backoff for dropped copies. Dropped wholesale when an
/// attempt aborts, so a rolled-back epoch leaves no message in flight.
struct BorderNet {
    /// `(deliver_round, message)` copies in flight.
    inflight: Vec<(u32, BorderMsg)>,
    /// `(resend_round, failed_sends, message)` awaiting retransmission.
    retrans: Vec<(u32, u32, BorderMsg)>,
    resends: u64,
    /// Set when a message exhausts [`MAX_SEND_ATTEMPTS`].
    stuck: bool,
}

impl BorderNet {
    fn new() -> Self {
        BorderNet {
            inflight: Vec::new(),
            retrans: Vec::new(),
            resends: 0,
            stuck: false,
        }
    }

    fn idle(&self) -> bool {
        self.inflight.is_empty() && self.retrans.is_empty()
    }

    /// Routes one copy of `m` sent during `round` through the fault
    /// plan. `failed` counts this message's prior dropped sends.
    fn send(&mut self, m: BorderMsg, round: u32, faults: &mut FaultSession, failed: u32) {
        match faults.fate() {
            Fate::Deliver => self.inflight.push((round, m)),
            Fate::Duplicate => {
                self.inflight.push((round, m));
                self.inflight.push((round + 1, m));
            }
            Fate::Delay(d) => self.inflight.push((round + d, m)),
            Fate::Drop => {
                let failed = failed + 1;
                if failed >= MAX_SEND_ATTEMPTS {
                    self.stuck = true;
                } else {
                    // Exponential backoff: resend after 1, 2, 4, 8, 8 …
                    // rounds.
                    let wait = (1u32 << (failed - 1).min(3)).min(8);
                    self.retrans.push((round + wait, failed, m));
                }
            }
        }
    }

    /// Re-sends due retransmits (re-rolling their fates), then takes
    /// every copy due for delivery by `round`.
    fn pump(&mut self, round: u32, faults: &mut FaultSession) -> Vec<BorderMsg> {
        let mut i = 0;
        while i < self.retrans.len() {
            if self.retrans[i].0 <= round {
                let (_, failed, m) = self.retrans.swap_remove(i);
                self.resends += 1;
                self.send(m, round, faults, failed);
            } else {
                i += 1;
            }
        }
        let mut due = Vec::new();
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].0 <= round {
                due.push(self.inflight.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
        due
    }
}

/// Report of one applied-and-published (or deferred) batch on the
/// sharded service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedPublishReport {
    /// The epoch the batch was published as (the previous epoch when
    /// `deferred`).
    pub epoch: u64,
    /// Border-exchange rounds until quiescence (0 when nothing crossed a
    /// shard boundary).
    pub rounds: u32,
    /// Border messages exchanged (first copies; see `resends`).
    pub messages: u64,
    /// Nodes whose coreness changed.
    pub changed: usize,
    /// Time spent applying and re-converging, in microseconds.
    pub repair_micros: f64,
    /// Time spent building and swapping the stitched epoch, in
    /// microseconds.
    pub publish_micros: f64,
    /// True when the batch was validated and logged but not applied
    /// because a partition has no live writer; the published epoch is
    /// unchanged and the batch waits in the backlog.
    pub deferred: bool,
    /// Primary deaths failed over to a replica while applying this
    /// batch.
    pub failovers: u32,
    /// Log batches replayed by replica promotions for this batch.
    pub replayed: u64,
    /// Border-message retransmissions (dropped copies re-sent).
    pub resends: u64,
    /// Median exchange-round wall time of the successful attempt, in
    /// microseconds (0 when no round ran).
    pub round_us_p50: f64,
    /// p99 exchange-round wall time of the successful attempt, in
    /// microseconds (0 when no round ran).
    pub round_us_p99: f64,
    /// Drain busy time as a percentage of dispatched worker-time across
    /// the successful attempt's rounds (0 when no round ran).
    pub worker_busy_pct: f64,
}

/// The sharded multi-writer core-number service. See the
/// [module docs](self) for the protocol.
pub struct ShardedCoreService {
    shards: Vec<Shard>,
    map: Arc<ShardMap>,
    /// Coordinator mirror of the union coreness (exact between epochs;
    /// the old values feed the next batch's candidate analysis).
    global_core: Vec<u32>,
    epoch: u64,
    edges: usize,
    cell: Arc<EpochCell<StitchedSnapshot>>,
    /// Every validated batch, in order: the replicated log replicas
    /// replay and the backlog degraded mode defers
    /// (`log[epoch..]` is the backlog).
    log: Vec<EdgeBatch>,
    /// Standby replicas per partition.
    replicas: Vec<Vec<Replica>>,
    /// Partitions with no live primary (degraded mode).
    down: Vec<bool>,
    faults: FaultSession,
    replica_target: usize,
    replica_lag: u64,
    heartbeat_timeout: u32,
    health: Arc<HealthCell>,
    exchange: ExchangeMode,
    pin: bool,
    /// Persistent drain workers (`ExchangeMode::Pooled`, multi-shard
    /// only), created on first use and kept for the service's life.
    pool: Option<WorkerPool<DrainJob, DrainReply>>,
    /// Recycled border staging frames: `stage[src][dst]` holds the
    /// messages shard `src` staged for shard `dst` this round. The
    /// buffers are reused across rounds, attempts, and batches.
    stage: Vec<Vec<Vec<BorderMsg>>>,
    tel: Telemetry,
    /// Registry handles for the exchange path; the `HEALTH` suffix is
    /// derived from these same handles (see [`ExchangeMetrics`]).
    xch: ExchangeMetrics,
}

/// Registry handles for the sharded exchange/failover path, registered
/// once at construction so hot-path recording is pure atomics.
///
/// [`ExchangeHealth`] is computed from these handles in
/// `refresh_health` — `HEALTH` and `METRICS` read the same counters and
/// can never disagree (satellite: the old parallel `xch_*` bookkeeping
/// is gone).
#[derive(Debug)]
struct ExchangeMetrics {
    /// `serve.exchange.rounds` — rounds across all published epochs.
    rounds: Counter,
    /// `serve.exchange.round_us` — per-round wall time.
    round_us: Histogram,
    /// `serve.exchange.messages` — first-copy border messages.
    messages: Counter,
    /// `serve.exchange.resends` — retransmitted border messages.
    resends: Counter,
    /// `serve.exchange.busy_nanos` / `serve.exchange.cap_nanos` — the
    /// worker-utilization integrals.
    busy_nanos: Counter,
    cap_nanos: Counter,
    /// `serve.failover.count` — primary deaths failed over.
    failovers: Counter,
    /// `serve.deferred.batches` — batches accepted but deferred.
    deferred: Counter,
    /// `serve.publish.epoch` — latest published epoch.
    epoch: Gauge,
    /// `serve.pool.dispatched` / `.busy_nanos` / `.park_nanos` —
    /// bridged from [`WorkerPool::stats`] at each health refresh.
    pool_dispatched: Gauge,
    pool_busy_nanos: Gauge,
    pool_park_nanos: Gauge,
}

impl ExchangeMetrics {
    fn register(tel: &Telemetry) -> Self {
        let r = tel.registry();
        ExchangeMetrics {
            rounds: r.counter("serve.exchange.rounds", &[]),
            round_us: r.histogram("serve.exchange.round_us", &[]),
            messages: r.counter("serve.exchange.messages", &[]),
            resends: r.counter("serve.exchange.resends", &[]),
            busy_nanos: r.counter("serve.exchange.busy_nanos", &[]),
            cap_nanos: r.counter("serve.exchange.cap_nanos", &[]),
            failovers: r.counter("serve.failover.count", &[]),
            deferred: r.counter("serve.deferred.batches", &[]),
            epoch: r.gauge("serve.publish.epoch", &[]),
            pool_dispatched: r.gauge("serve.pool.dispatched", &[]),
            pool_busy_nanos: r.gauge("serve.pool.busy_nanos", &[]),
            pool_park_nanos: r.gauge("serve.pool.park_nanos", &[]),
        }
    }
}

impl Drop for ShardedCoreService {
    /// A writer thread that panics drops the service mid-unwind; flag
    /// that so readers holding health handles can observe the death
    /// instead of watching the epoch silently stop advancing.
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.health.poison_writer();
        }
    }
}

impl std::fmt::Debug for ShardedCoreService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCoreService")
            .field("shards", &self.shards.len())
            .field("epoch", &self.epoch)
            .field("edges", &self.edges)
            .finish_non_exhaustive()
    }
}

impl ShardedCoreService {
    /// Builds the service over `shard_count` partitions with the paper's
    /// default `u mod |H|` assignment and publishes epoch 0.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0`.
    pub fn new(g: &Graph, shard_count: usize) -> Self {
        Self::with_assignment(g, shard_count, &AssignmentPolicy::Modulo)
    }

    /// Builds the service with an explicit [`AssignmentPolicy`]
    /// (`BfsBlocks` cuts far fewer cross-shard edges on local graphs).
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0`.
    pub fn with_assignment(g: &Graph, shard_count: usize, policy: &AssignmentPolicy) -> Self {
        Self::with_config(
            g,
            shard_count,
            ShardedConfig {
                policy: policy.clone(),
                ..ShardedConfig::default()
            },
        )
    }

    /// Builds the service with a full [`ShardedConfig`]: assignment
    /// policy, standby replicas per partition, and a seeded fault plan.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0`.
    pub fn with_config(g: &Graph, shard_count: usize, config: ShardedConfig) -> Self {
        let n = g.node_count();
        let assignment = Assignment::new(g, shard_count, &config.policy);
        let global_core = batagelj_zaversnik(g);

        let mut owner = vec![0u32; n];
        let mut slot = vec![0u32; n];
        for h in assignment.hosts() {
            for (i, &u) in assignment.nodes_of(h).iter().enumerate() {
                owner[u.index()] = h.0;
                slot[u.index()] = i as u32;
            }
        }
        let map = Arc::new(ShardMap { owner, slot });

        let shards: Vec<Shard> = assignment
            .hosts()
            .map(|h| {
                let owned: Vec<u32> = assignment.nodes_of(h).iter().map(|u| u.0).collect();
                let adj = AdjacencyArena::from_sorted_lists(owned.iter().map(|&u| {
                    g.neighbors(NodeId(u))
                        .iter()
                        .map(|v| v.0)
                        .collect::<Vec<_>>()
                }));
                Self::build_shard(h.0, owned, adj, &global_core, &map, None)
            })
            .collect();

        let replicas: Vec<Vec<Replica>> = shards
            .iter()
            .map(|s| {
                (0..config.replicas)
                    .map(|_| Replica {
                        applied_epoch: 0,
                        adj: s.adj.clone(),
                    })
                    .collect()
            })
            .collect();

        let latest = Arc::new(StitchedSnapshot::assemble(
            0,
            n,
            g.edge_count(),
            map.clone(),
            shards.iter().map(|s| s.snapshot.clone()).collect(),
        ));
        let down = vec![false; shards.len()];
        let stage = vec![vec![Vec::new(); shards.len()]; shards.len()];
        let tel = config.telemetry;
        let xch = ExchangeMetrics::register(&tel);
        let svc = ShardedCoreService {
            shards,
            map,
            global_core,
            epoch: 0,
            edges: g.edge_count(),
            cell: Arc::new(EpochCell::new(latest)),
            log: Vec::new(),
            replicas,
            down,
            faults: FaultSession::new(config.fault_plan),
            replica_target: config.replicas,
            replica_lag: config.replica_lag.max(1),
            heartbeat_timeout: config.heartbeat_timeout,
            health: HealthCell::new(HealthReport::healthy(0, shard_count)),
            exchange: config.exchange,
            pin: config.pin,
            pool: None,
            stage,
            tel,
            xch,
        };
        svc.refresh_health();
        svc
    }

    /// Lazily creates the persistent drain pool (pooled mode,
    /// multi-shard only): one parked worker per shard, each owning a
    /// clone of the shard map and optionally pinned to a core. The pool
    /// outlives every batch — failover only swaps the shard *values*
    /// the workers are handed, never the workers themselves.
    fn ensure_pool(&mut self) {
        if self.pool.is_some() {
            return;
        }
        let map = self.map.clone();
        self.pool = Some(WorkerPool::new(
            self.shards.len(),
            self.pin,
            move |i, job: DrainJob| {
                let DrainJob {
                    mut shard,
                    mut stage,
                    epoch,
                } = job;
                let t = Instant::now();
                // A panicking drain is a primary death; catching it
                // here keeps the shard value (and the recycled frames)
                // alive so ownership returns to the coordinator, which
                // rolls back and promotes a replica.
                let result = catch_unwind(AssertUnwindSafe(|| {
                    shard.drain(&map, i as u32, epoch, &mut stage)
                }));
                let busy_nanos = t.elapsed().as_nanos() as u64;
                let (staged, panicked) = match result {
                    Ok(staged) => (staged, false),
                    Err(_) => (0, true),
                };
                DrainReply {
                    shard,
                    stage,
                    staged,
                    panicked,
                    busy_nanos,
                }
            },
        ));
    }

    /// Assembles a live [`Shard`] for partition `me` from an adjacency
    /// arena and the exact between-epoch coreness: estimates come from
    /// `global_core`, the border cache is rebuilt by scanning the arcs,
    /// and `snapshot` (when given) chains the new shard onto the
    /// partition's published snapshot history. This is the shared core
    /// of construction, replica promotion, and degraded-mode revival.
    fn build_shard(
        me: u32,
        owned: Vec<u32>,
        adj: AdjacencyArena,
        global_core: &[u32],
        map: &ShardMap,
        snapshot: Option<Arc<ShardSnapshot>>,
    ) -> Shard {
        let count = owned.len();
        let est: Vec<u32> = owned.iter().map(|&u| global_core[u as usize]).collect();
        let mut remote_est: HashMap<u32, BorderEntry> = HashMap::new();
        for s in 0..count {
            for &v in adj.neighbors(s) {
                if map.owner[v as usize] != me {
                    remote_est
                        .entry(v)
                        .or_insert(BorderEntry {
                            est: global_core[v as usize],
                            refs: 0,
                        })
                        .refs += 1;
                }
            }
        }
        let capture = snapshot.is_none();
        let mut shard = Shard {
            owned,
            adj,
            est,
            remote_est,
            queue: VecDeque::new(),
            queued: vec![false; count],
            epoch_mark: vec![u64::MAX; count],
            epoch_old: vec![0; count],
            epoch_touched: Vec::new(),
            snapshot: snapshot.unwrap_or_else(|| {
                Arc::new(ShardSnapshot {
                    coreness: ChunkedU32::default(),
                    degrees: ChunkedU32::default(),
                    adj: Vec::new(),
                    shell_sizes: vec![0],
                    index: ShellIndex::default(),
                })
            }),
        };
        if capture {
            shard.snapshot = Arc::new(ShardSnapshot::capture(&shard));
        }
        shard
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The latest published epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A new stitching reader handle.
    pub fn handle(&self) -> ShardedHandle {
        ShardedHandle {
            cell: self.cell.clone(),
            health: self.health.clone(),
            tel: self.tel.clone(),
        }
    }

    /// The telemetry bundle this service records into.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Whether the union graph *logically* has the edge `{u, v}`:
    /// the published state of the owning partition overlaid with the
    /// deferred backlog, so validation stays consistent while a
    /// partition is down.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        let n = self.map.owner.len();
        if u.index() >= n || v.index() >= n {
            return false;
        }
        // Backlog overlay, newest first: a deferred batch already
        // decided this edge's fate.
        fn has_pair(list: &[(NodeId, NodeId)], u: NodeId, v: NodeId) -> bool {
            list.iter()
                .any(|&(a, b)| (a, b) == (u, v) || (a, b) == (v, u))
        }
        for b in self.log[self.epoch as usize..].iter().rev() {
            if has_pair(b.insertions(), u, v) {
                return true;
            }
            if has_pair(b.removals(), u, v) {
                return false;
            }
        }
        let owner = self.map.owner[u.index()] as usize;
        let slot = self.map.slot[u.index()] as usize;
        if self.down[owner] {
            // The tombstoned arena is empty; answer from the published
            // local snapshot (which is what revival rebuilds from).
            self.shards[owner]
                .snapshot
                .neighbors_at(slot)
                .binary_search(&v.0)
                .is_ok()
        } else {
            self.shards[owner]
                .adj
                .neighbors(slot)
                .binary_search(&v.0)
                .is_ok()
        }
    }

    /// Validated batches not yet reflected in the published epoch
    /// (non-zero only while a partition is down).
    pub fn backlog(&self) -> usize {
        self.log.len() - self.epoch as usize
    }

    /// Standby replicas currently available for `shard`.
    pub fn replica_count(&self, shard: usize) -> usize {
        self.replicas[shard].len()
    }

    /// True when some partition has no live primary and reads are
    /// served from the last consistent stitched epoch.
    pub fn is_degraded(&self) -> bool {
        self.down.iter().any(|&d| d)
    }

    /// Kills the primary writer of `shard` at a batch boundary, exactly
    /// as an injected `kill=S@E` fault would. Returns `true` when a
    /// standby replica took over (the partition stays live), `false`
    /// when none was left and the partition entered degraded mode.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range or already down.
    pub fn kill_primary(&mut self, shard: usize) -> bool {
        assert!(!self.down[shard], "shard {shard} is already down");
        let promoted = self.promote(shard).is_some();
        self.refresh_health();
        promoted
    }

    /// Revives a downed partition: rebuilds its primary from the
    /// published snapshot chunks plus the exact between-epoch coreness,
    /// restocks its standby replicas, then drains the deferred backlog
    /// (publishing one epoch per deferred batch). Returns the number of
    /// backlog batches applied.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is not down.
    pub fn revive_shard(&mut self, shard: usize) -> u64 {
        assert!(self.down[shard], "shard {shard} has a live primary");
        let (owned, snapshot) = {
            let old = &mut self.shards[shard];
            (std::mem::take(&mut old.owned), old.snapshot.clone())
        };
        let adj = AdjacencyArena::from_sorted_lists(
            (0..owned.len()).map(|s| snapshot.neighbors_at(s).to_vec()),
        );
        self.shards[shard] = Self::build_shard(
            shard as u32,
            owned,
            adj,
            &self.global_core,
            &self.map,
            Some(snapshot),
        );
        self.down[shard] = false;
        self.restock(shard);
        let mut drained = 0u64;
        while (self.epoch as usize) < self.log.len() {
            let before = self.epoch;
            self.apply_next();
            if self.epoch == before {
                break; // went down again mid-drain
            }
            drained += 1;
        }
        self.tel.event(
            EventKind::Revive,
            shard as u32,
            self.epoch,
            drained,
            self.backlog() as u64,
        );
        self.refresh_health();
        drained
    }

    /// Applies one batch to the union graph atomically, re-converges the
    /// shards through (possibly faulty) border exchange, and publishes
    /// the next stitched epoch. On a validation error nothing is mutated
    /// and no epoch is published.
    ///
    /// Primary deaths fail over to standby replicas transparently (the
    /// attempt rolls back, a replica replays the log, the batch is
    /// re-attempted). When a partition has no live writer the batch is
    /// validated, logged, and **deferred**: the report comes back with
    /// `deferred == true`, the published epoch unchanged, and readers
    /// keep the last consistent stitched epoch until
    /// [`revive_shard`](Self::revive_shard) drains the backlog.
    ///
    /// # Errors
    ///
    /// Returns the [`MutationError`] from batch validation (the same
    /// rules as [`StreamCore::apply_batch`](dkcore::stream::StreamCore)).
    pub fn apply_batch(
        &mut self,
        batch: &EdgeBatch,
    ) -> Result<ShardedPublishReport, MutationError> {
        let n = self.map.owner.len();
        batch.validate_against(n, |u, v| self.has_edge(u, v))?;
        self.log.push(batch.clone());
        if self.is_degraded() {
            let t0 = Instant::now();
            return Ok(self.deferred_report(t0, 0, 0));
        }
        Ok(self.apply_next())
    }

    /// Applies the next logged batch: batch-boundary kills, the
    /// attempt/rollback/promote loop, then publish + replica sync.
    fn apply_next(&mut self) -> ShardedPublishReport {
        let epoch = self.epoch + 1;
        let batch = self.log[(epoch - 1) as usize].clone();
        let t0 = Instant::now();
        let mut failovers = 0u32;
        let mut replayed = 0u64;

        for s in 0..self.shards.len() {
            if self.faults.take_kill(s as u32, epoch, None) {
                match self.promote(s) {
                    Some(r) => {
                        failovers += 1;
                        replayed += r;
                    }
                    None => return self.deferred_report(t0, failovers, replayed),
                }
            }
        }

        let mut attempts = 0u32;
        let outcome = loop {
            attempts += 1;
            assert!(
                attempts <= MAX_BATCH_ATTEMPTS,
                "epoch {epoch}: batch aborted {MAX_BATCH_ATTEMPTS} times; \
                 the fault plan is unsatisfiable"
            );
            match self.attempt(epoch, &batch) {
                Ok(o) => break o,
                Err(e) => {
                    let dead = match e {
                        AttemptError::Dead(s) => Some(s),
                        AttemptError::Stuck => None,
                    };
                    self.rollback(&batch, dead);
                    if let Some(s) = dead {
                        match self.promote(s) {
                            Some(r) => {
                                failovers += 1;
                                replayed += r;
                            }
                            None => return self.deferred_report(t0, failovers, replayed),
                        }
                    }
                }
            }
        };
        let repair_micros = t0.elapsed().as_secs_f64() * 1e6;

        // --- 4. Gather the epoch's changes, publish the stitched epoch. ---
        let t1 = Instant::now();
        let n = self.map.owner.len();
        let mut changed = 0usize;
        let mut shard_snaps = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let changes = shard.epoch_changes(epoch);
            changed += changes.len();
            for &(u, _, new) in &changes {
                self.global_core[u as usize] = new;
            }
            let dirty_slots: Vec<u32> = batch
                .insertions()
                .iter()
                .chain(batch.removals())
                .flat_map(|&(u, v)| [u.0, v.0])
                .filter(|&w| self.map.owner[w as usize] as usize == i)
                .map(|w| self.map.slot[w as usize])
                .collect();
            shard.snapshot = Arc::new(shard.snapshot.advance(shard, &changes, &dirty_slots));
            shard_snaps.push(shard.snapshot.clone());
        }
        let stitched = Arc::new(StitchedSnapshot::assemble(
            epoch,
            n,
            self.edges,
            self.map.clone(),
            shard_snaps,
        ));
        self.cell.publish(stitched, epoch);
        self.epoch = epoch;
        self.sync_replicas();

        // Exchange observability: fold the successful attempt's round
        // timings into the registry handles (HEALTH and METRICS both
        // read them) and compute this batch's percentiles for the
        // report.
        let mut batch_rounds = Percentiles::new();
        for &us in &outcome.round_us {
            batch_rounds.record(us);
        }
        if self.tel.enabled() {
            for &us in &outcome.round_us {
                self.xch.round_us.record(us as u64);
            }
            self.xch.rounds.add(u64::from(outcome.rounds));
            self.xch.messages.add(outcome.messages);
            self.xch.resends.add(outcome.resends);
            self.xch.busy_nanos.add(outcome.busy_nanos);
            self.xch.cap_nanos.add(outcome.cap_nanos);
            self.xch.epoch.set(epoch as i64);
            self.tel.event(
                EventKind::BatchApplied,
                0,
                epoch,
                batch.insertions().len() as u64,
                batch.removals().len() as u64,
            );
            if outcome.resends > 0 {
                self.tel
                    .event(EventKind::Retransmit, 0, epoch, outcome.resends, 0);
            }
            self.tel.event(
                EventKind::EpochPublished,
                0,
                epoch,
                u64::from(outcome.rounds),
                outcome.messages,
            );
        }
        self.refresh_health();
        let publish_micros = t1.elapsed().as_secs_f64() * 1e6;

        ShardedPublishReport {
            epoch,
            rounds: outcome.rounds,
            messages: outcome.messages,
            changed,
            repair_micros,
            publish_micros,
            deferred: false,
            failovers,
            replayed,
            resends: outcome.resends,
            round_us_p50: if batch_rounds.is_empty() {
                0.0
            } else {
                batch_rounds.p50()
            },
            round_us_p99: if batch_rounds.is_empty() {
                0.0
            } else {
                batch_rounds.p99()
            },
            worker_busy_pct: busy_pct(outcome.busy_nanos, outcome.cap_nanos),
        }
    }

    /// One attempt at applying `batch` as `epoch`: mutations, candidate
    /// seeding over the reliable control plane, then exchange rounds
    /// over the (possibly faulty) [`BorderNet`] until quiescence —
    /// empty worklists *and* an empty network.
    fn attempt(&mut self, epoch: u64, batch: &EdgeBatch) -> Result<AttemptOutcome, AttemptError> {
        let n = self.map.owner.len();
        for shard in &mut self.shards {
            shard.epoch_touched.clear();
        }

        // --- 1. Apply the mutations to the owning shards' arenas. ---
        self.apply_mutations(batch, None);
        self.edges = self.edges + batch.insertions().len() - batch.removals().len();

        // --- 2. Candidate analysis over the union graph + seeding. ---
        let regions = {
            let shards = &self.shards;
            let map = &self.map;
            candidate_regions(
                n,
                batch.insertions(),
                batch.removals(),
                &self.global_core,
                |x| {
                    let shard = &shards[map.owner[x as usize] as usize];
                    shard
                        .adj
                        .neighbors(map.slot[x as usize] as usize)
                        .iter()
                        .copied()
                },
            )
        };
        let mut seeds: Vec<(u32, u32)> = Vec::new(); // (node, bound)
        let mut bumped: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for region in &regions {
            // Removal-only regions are grown for the merge/slack analysis
            // but need no bump: only their endpoints are seeded (below)
            // and drop cascades reach the rest, exactly like the
            // single-writer removal phase.
            if region.insertions == 0 {
                continue;
            }
            for &w in &region.members {
                let deg = self.degree_of(w);
                let bound = (self.global_core[w as usize] + region.insertions).min(deg);
                seeds.push((w, bound));
                bumped.insert(w);
            }
        }
        // Removal endpoints outside every bumped region still need
        // examination (their coreness can only drop; the degree cap may
        // bind immediately).
        for &(u, v) in batch.removals() {
            for w in [u.0, v.0] {
                if !bumped.contains(&w) {
                    let bound = self.global_core[w as usize].min(self.degree_of(w));
                    seeds.push((w, bound));
                }
            }
        }
        let mut pending: Vec<BorderMsg> = Vec::new();
        for (w, bound) in seeds {
            let me = self.map.owner[w as usize];
            let slot = self.map.slot[w as usize];
            let map = self.map.clone();
            self.shards[me as usize].seed(&map, me, slot, bound, epoch, &mut pending);
        }
        let mut messages = pending.len() as u64;

        // Seed messages raise cached bounds back to safe upper bounds;
        // they ride the reliable control plane (never faulted — see the
        // module docs) and are delivered before any lossy round runs.
        for m in pending.drain(..) {
            let shard = &mut self.shards[m.dest as usize];
            shard
                .remote_est
                .get_mut(&m.source)
                .expect("border message for a cached neighbor")
                .est = m.est;
            shard.enqueue(m.target_slot);
        }

        // --- 3. Border-exchange rounds until quiescence. ---
        let shard_count = self.shards.len();
        // Recycled frames may still hold messages staged by an aborted
        // attempt (including a drain that panicked mid-stage); they
        // must not leak into this one.
        for row in &mut self.stage {
            for frame in row {
                frame.clear();
            }
        }
        if self.exchange == ExchangeMode::Pooled && shard_count > 1 {
            self.ensure_pool();
        }
        let mut stall: Vec<u32> = vec![0; shard_count];
        for (s, slot) in stall.iter_mut().enumerate() {
            *slot = self.faults.take_stall(s as u32, epoch).unwrap_or(0);
        }
        let mut missed: Vec<u32> = vec![0; shard_count];
        let mut net = BorderNet::new();
        let lossless = self.faults.lossless();
        let mut round = 0u32;
        let mut round_us: Vec<f64> = Vec::new();
        let mut busy_nanos = 0u64;
        let mut cap_nanos = 0u64;
        loop {
            // Deliver barrier: lower the border caches (min — duplicates
            // and reordered stale copies are no-ops), enqueue the
            // targets unconditionally (one drop fans out to several
            // targets with the same estimate, and only the first
            // arrival lowers the cache). The cache entry must exist:
            // messages are only generated for edges present in the
            // sender's arena, which the receiver mirrors, and no
            // eviction happens during rounds. On a lossless plan last
            // round's staged frames are applied wholesale and their
            // buffers recycled; under a fault plan the frames were
            // unpacked into the BorderNet at the flush barrier and
            // delivery pumps the due copies individually.
            if lossless {
                let shards = &mut self.shards;
                for row in &mut self.stage {
                    for (dst, frame) in row.iter_mut().enumerate() {
                        if frame.is_empty() {
                            continue;
                        }
                        let shard = &mut shards[dst];
                        for m in frame.iter() {
                            let entry = shard
                                .remote_est
                                .get_mut(&m.source)
                                .expect("border message for a cached neighbor");
                            entry.est = entry.est.min(m.est);
                            shard.enqueue(m.target_slot);
                        }
                        frame.clear();
                    }
                }
            } else {
                for m in net.pump(round, &mut self.faults) {
                    let shard = &mut self.shards[m.dest as usize];
                    let entry = shard
                        .remote_est
                        .get_mut(&m.source)
                        .expect("border message for a cached neighbor");
                    entry.est = entry.est.min(m.est);
                    shard.enqueue(m.target_slot);
                }
                if net.stuck {
                    return Err(AttemptError::Stuck);
                }
            }
            // Every frame is empty here (applied above, or unpacked at
            // the flush barrier), so quiescence is worklists + network.
            if self.shards.iter().all(|s| s.queue.is_empty()) && net.idle() {
                return Ok(AttemptOutcome {
                    rounds: round,
                    messages,
                    resends: net.resends,
                    round_us,
                    busy_nanos,
                    cap_nanos,
                });
            }
            round += 1;
            if round > MAX_ROUNDS {
                return Err(AttemptError::Stuck);
            }
            // Heartbeats: a stalled shard skips its drain and misses
            // this round's heartbeat; past the timeout it is declared
            // dead (the failover path — even if it was only slow).
            let stalled: Vec<bool> = stall.iter().map(|&r| r > 0).collect();
            for s in 0..shard_count {
                if stalled[s] {
                    stall[s] -= 1;
                    missed[s] += 1;
                    if missed[s] > self.heartbeat_timeout {
                        return Err(AttemptError::Dead(s));
                    }
                }
            }
            // Flush barrier: drain every live shard into its staging
            // frames. Stalled shards are skipped *before* dispatch —
            // no job, no thread — but still receive deliveries above.
            let t_round = Instant::now();
            let mut staged = 0u64;
            let mut dispatched = 0u64;
            let mut dead: Option<usize> = None;
            match (shard_count, self.exchange) {
                (1, _) => {
                    // Single shard: nothing ever crosses a border;
                    // drain inline on the coordinator.
                    let map = &self.map;
                    let shard = &mut self.shards[0];
                    let stage = &mut self.stage[0];
                    dispatched = 1;
                    match catch_unwind(AssertUnwindSafe(|| shard.drain(map, 0, epoch, stage))) {
                        Ok(n) => staged += n,
                        Err(_) => dead = Some(0),
                    }
                }
                (_, ExchangeMode::Pooled) => {
                    // Ownership round trip: move each live shard (and
                    // its frames) to its persistent worker, collect
                    // them back in shard order.
                    let pool = self.pool.as_ref().expect("pool created above");
                    let mut sent: Vec<usize> = Vec::with_capacity(shard_count);
                    for (s, _) in stalled.iter().enumerate().filter(|&(_, &st)| !st) {
                        let shard = std::mem::replace(&mut self.shards[s], Shard::placeholder());
                        let stage = std::mem::take(&mut self.stage[s]);
                        pool.dispatch(
                            s,
                            DrainJob {
                                shard,
                                stage,
                                epoch,
                            },
                        );
                        sent.push(s);
                    }
                    for &s in &sent {
                        let reply = pool.collect(s);
                        self.shards[s] = reply.shard;
                        self.stage[s] = reply.stage;
                        dispatched += 1;
                        staged += reply.staged;
                        busy_nanos += reply.busy_nanos;
                        // First panicking shard by index, reported only
                        // after every shard is home again.
                        if reply.panicked && dead.is_none() {
                            dead = Some(s);
                        }
                    }
                }
                (_, ExchangeMode::Spawn) => {
                    // The spawn-per-round baseline, on the same staged
                    // message flow as the pool.
                    let map = &self.map;
                    let joined: Vec<(usize, u64, u64, bool)> = std::thread::scope(|scope| {
                        let handles: Vec<_> = self
                            .shards
                            .iter_mut()
                            .zip(self.stage.iter_mut())
                            .enumerate()
                            .filter(|(i, _)| !stalled[*i])
                            .map(|(i, (shard, stage))| {
                                let h = scope.spawn(move || {
                                    let t = Instant::now();
                                    let r = catch_unwind(AssertUnwindSafe(|| {
                                        shard.drain(map, i as u32, epoch, stage)
                                    }));
                                    let busy = t.elapsed().as_nanos() as u64;
                                    match r {
                                        Ok(n) => (n, busy, false),
                                        Err(_) => (0, busy, true),
                                    }
                                });
                                (i, h)
                            })
                            .collect();
                        handles
                            .into_iter()
                            .map(|(i, h)| {
                                let (n, busy, panicked) =
                                    h.join().expect("drain panic caught inside");
                                (i, n, busy, panicked)
                            })
                            .collect()
                    });
                    for (i, n, busy, panicked) in joined {
                        dispatched += 1;
                        staged += n;
                        busy_nanos += busy;
                        if panicked && dead.is_none() {
                            dead = Some(i);
                        }
                    }
                }
            }
            let wall = t_round.elapsed();
            round_us.push(wall.as_secs_f64() * 1e6);
            cap_nanos += wall.as_nanos() as u64 * dispatched;
            if shard_count == 1 {
                // The inline drain's wall time is its busy time.
                busy_nanos += wall.as_nanos() as u64;
            }
            // A drain panic is a primary death observed at the round
            // boundary.
            if let Some(s) = dead {
                return Err(AttemptError::Dead(s));
            }
            // Injected kills pinned to this exchange round fire before
            // the dead shard's round output reaches the network.
            for s in 0..shard_count {
                if self.faults.take_kill(s as u32, epoch, Some(round)) {
                    return Err(AttemptError::Dead(s));
                }
            }
            messages += staged;
            if !lossless {
                // Unpack the staged frames through the per-message
                // fault machinery in (src, dst) frame order: every
                // message still rolls its own fate.
                for row in &mut self.stage {
                    for frame in row {
                        for m in frame.drain(..) {
                            net.send(m, round, &mut self.faults, 0);
                        }
                    }
                }
            }
        }
    }

    /// Rolls the whole in-flight batch attempt back to the published
    /// epoch: inverse mutations, estimates restored from the epoch
    /// change log, worklists cleared, and every border cache reset to
    /// the exact between-epoch coreness (`global_core`), which is what
    /// each entry held before the attempt. The `dead` shard (if any) is
    /// skipped — promotion replaces its state wholesale.
    fn rollback(&mut self, batch: &EdgeBatch, dead: Option<usize>) {
        self.apply_mutations(&batch.inverse(), dead);
        self.edges = self.edges + batch.removals().len() - batch.insertions().len();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            if dead == Some(i) {
                continue;
            }
            for s in std::mem::take(&mut shard.epoch_touched) {
                let s = s as usize;
                shard.est[s] = shard.epoch_old[s];
                shard.epoch_mark[s] = u64::MAX;
            }
            shard.queue.clear();
            shard.queued.fill(false);
            for (v, entry) in shard.remote_est.iter_mut() {
                entry.est = self.global_core[*v as usize];
            }
        }
    }

    /// Promotes the freshest standby replica of `shard` to primary:
    /// replays the validated log from the replica's applied epoch to the
    /// published epoch vector, then rebuilds estimates and border cache
    /// from the exact between-epoch coreness. Returns the number of log
    /// batches replayed, or `None` when no replica is left — in which
    /// case the partition is tombstoned and marked down.
    fn promote(&mut self, shard: usize) -> Option<u64> {
        if self.tel.enabled() {
            self.xch.failovers.inc();
            self.tel
                .event(EventKind::Failover, shard as u32, self.epoch, 0, 0);
        }
        let reps = &mut self.replicas[shard];
        let Some(best) = (0..reps.len()).max_by_key(|&i| reps[i].applied_epoch) else {
            self.tombstone(shard);
            self.down[shard] = true;
            let backlog = self.log.len() as u64 - self.epoch;
            self.tel
                .event(EventKind::Degraded, shard as u32, self.epoch, backlog, 0);
            return None;
        };
        let mut rep = reps.swap_remove(best);
        let replayed = self.epoch - rep.applied_epoch;
        for e in rep.applied_epoch..self.epoch {
            Self::replay_into(&mut rep.adj, &self.log[e as usize], &self.map, shard as u32);
        }
        let (owned, snapshot) = {
            let old = &mut self.shards[shard];
            (std::mem::take(&mut old.owned), old.snapshot.clone())
        };
        self.shards[shard] = Self::build_shard(
            shard as u32,
            owned,
            rep.adj,
            &self.global_core,
            &self.map,
            Some(snapshot),
        );
        self.tel.event(
            EventKind::Promotion,
            shard as u32,
            self.epoch,
            replayed,
            self.replicas[shard].len() as u64,
        );
        Some(replayed)
    }

    /// Empties a dead partition's writer state (its published snapshot
    /// and owned-node list survive for degraded reads and revival).
    fn tombstone(&mut self, shard: usize) {
        let sh = &mut self.shards[shard];
        sh.adj = AdjacencyArena::from_sorted_lists(sh.owned.iter().map(|_| Vec::<u32>::new()));
        sh.est.fill(0);
        sh.remote_est.clear();
        sh.queue.clear();
        sh.queued.fill(false);
        sh.epoch_mark.fill(u64::MAX);
        sh.epoch_touched.clear();
    }

    /// Replays one logged batch's arcs owned by shard `me` into a
    /// replica's adjacency.
    fn replay_into(adj: &mut AdjacencyArena, batch: &EdgeBatch, map: &ShardMap, me: u32) {
        for &(u, v) in batch.removals() {
            if map.owner[u.index()] == me {
                let ok = adj.remove_arc(map.slot[u.index()] as usize, v.0);
                debug_assert!(ok, "replayed removal");
            }
            if map.owner[v.index()] == me {
                let ok = adj.remove_arc(map.slot[v.index()] as usize, u.0);
                debug_assert!(ok, "replayed removal");
            }
        }
        for &(u, v) in batch.insertions() {
            if map.owner[u.index()] == me {
                let ok = adj.insert_arc(map.slot[u.index()] as usize, v.0);
                debug_assert!(ok, "replayed insertion");
            }
            if map.owner[v.index()] == me {
                let ok = adj.insert_arc(map.slot[v.index()] as usize, u.0);
                debug_assert!(ok, "replayed insertion");
            }
        }
    }

    /// Applies a batch's arc mutations to the owning shards' arenas,
    /// skipping arcs owned by `skip` (a dead shard about to be rebuilt).
    fn apply_mutations(&mut self, batch: &EdgeBatch, skip: Option<usize>) {
        let skip = skip.map(|s| s as u32);
        for &(u, v) in batch.removals() {
            if skip != Some(self.map.owner[u.index()]) {
                self.arc_remove(u.0, v.0);
            }
            if skip != Some(self.map.owner[v.index()]) {
                self.arc_remove(v.0, u.0);
            }
        }
        for &(u, v) in batch.insertions() {
            if skip != Some(self.map.owner[u.index()]) {
                self.arc_insert(u.0, v.0);
            }
            if skip != Some(self.map.owner[v.index()]) {
                self.arc_insert(v.0, u.0);
            }
        }
    }

    /// Brings lagging replicas up to the published epoch by replaying
    /// the log suffix (triggered once they trail by `replica_lag`).
    fn sync_replicas(&mut self) {
        for s in 0..self.shards.len() {
            for rep in &mut self.replicas[s] {
                if rep.applied_epoch + self.replica_lag <= self.epoch {
                    while rep.applied_epoch < self.epoch {
                        Self::replay_into(
                            &mut rep.adj,
                            &self.log[rep.applied_epoch as usize],
                            &self.map,
                            s as u32,
                        );
                        rep.applied_epoch += 1;
                    }
                }
            }
        }
    }

    /// Restocks `shard`'s standby replicas to the configured target by
    /// cloning the (healthy) primary's adjacency.
    fn restock(&mut self, shard: usize) {
        while self.replicas[shard].len() < self.replica_target {
            self.replicas[shard].push(Replica {
                applied_epoch: self.epoch,
                adj: self.shards[shard].adj.clone(),
            });
        }
    }

    /// Publishes the current liveness/lag picture to the health cell.
    fn refresh_health(&self) {
        let backlog = self.log.len() as u64 - self.epoch;
        let shards = (0..self.shards.len())
            .map(|s| ShardHealth {
                shard: s as u32,
                primary_alive: !self.down[s],
                replicas: self.replicas[s].len(),
                epoch_lag: if self.down[s] { backlog } else { 0 },
            })
            .collect();
        // The exchange suffix is a *view over the registry*: HEALTH
        // and METRICS read the same handles, so they cannot drift.
        if let Some(pool) = &self.pool {
            let s = pool.stats();
            self.xch.pool_dispatched.set(s.dispatched as i64);
            self.xch.pool_busy_nanos.set(s.busy_nanos as i64);
            self.xch.pool_park_nanos.set(s.park_nanos as i64);
        }
        self.health.store(HealthReport {
            writer_alive: true,
            epoch: self.epoch,
            shards,
            exchange: Some(ExchangeHealth {
                rounds: self.xch.rounds.value(),
                round_p50_us: if self.xch.round_us.count() == 0 {
                    0
                } else {
                    self.xch.round_us.quantile(0.5)
                },
                round_p99_us: if self.xch.round_us.count() == 0 {
                    0
                } else {
                    self.xch.round_us.quantile(0.99)
                },
                worker_busy_pct: busy_pct(self.xch.busy_nanos.value(), self.xch.cap_nanos.value())
                    as u32,
            }),
        });
    }

    /// The report for a batch accepted into the log but deferred
    /// because a partition has no live writer.
    fn deferred_report(
        &mut self,
        t0: Instant,
        failovers: u32,
        replayed: u64,
    ) -> ShardedPublishReport {
        if self.tel.enabled() {
            self.xch.deferred.inc();
            self.tel.event(
                EventKind::Deferred,
                0,
                self.epoch,
                self.log.len() as u64 - self.epoch,
                0,
            );
        }
        self.refresh_health();
        ShardedPublishReport {
            epoch: self.epoch,
            rounds: 0,
            messages: 0,
            changed: 0,
            repair_micros: t0.elapsed().as_secs_f64() * 1e6,
            publish_micros: 0.0,
            deferred: true,
            failovers,
            replayed,
            resends: 0,
            round_us_p50: 0.0,
            round_us_p99: 0.0,
            worker_busy_pct: 0.0,
        }
    }

    /// Removes the arc `u → v` from `u`'s owning shard, dropping the
    /// border-cache reference when `v` is remote (the entry is evicted
    /// once no owned arc points at `v` anymore, so churn cannot grow the
    /// cache past the live border).
    fn arc_remove(&mut self, u: u32, v: u32) {
        let su = self.map.owner[u as usize];
        let shard = &mut self.shards[su as usize];
        let removed = shard.adj.remove_arc(self.map.slot[u as usize] as usize, v);
        debug_assert!(removed, "validated removal");
        if self.map.owner[v as usize] != su {
            let entry = shard
                .remote_est
                .get_mut(&v)
                .expect("border cache covers every remote neighbor");
            entry.refs -= 1;
            if entry.refs == 0 {
                shard.remote_est.remove(&v);
            }
        }
    }

    /// Inserts the arc `u → v` into `u`'s owning shard, priming (or
    /// re-referencing) the border cache when `v` is remote. The primed
    /// value is the exact pre-batch coreness; the seeding pass overwrites
    /// it for bumped candidates before any round reads it.
    fn arc_insert(&mut self, u: u32, v: u32) {
        let su = self.map.owner[u as usize];
        let shard = &mut self.shards[su as usize];
        let inserted = shard.adj.insert_arc(self.map.slot[u as usize] as usize, v);
        debug_assert!(inserted, "validated insertion");
        if self.map.owner[v as usize] != su {
            let entry = shard.remote_est.entry(v).or_insert(BorderEntry {
                est: self.global_core[v as usize],
                refs: 0,
            });
            entry.refs += 1;
            // A re-referenced surviving entry may hold a stale (higher)
            // announcement; reset it to the authoritative pre-batch value.
            entry.est = self.global_core[v as usize];
        }
    }

    /// Current degree of global node `w`.
    fn degree_of(&self, w: u32) -> u32 {
        self.shards[self.map.owner[w as usize] as usize]
            .adj
            .degree(self.map.slot[w as usize] as usize)
    }
}

/// A consistent vector of per-shard epochs, published atomically: every
/// query runs against the same union-graph batch boundary on every
/// shard. Immutable; holding one pins all of its shards' chunked state.
#[derive(Debug)]
pub struct StitchedSnapshot {
    epoch: u64,
    nodes: usize,
    edges: usize,
    map: Arc<ShardMap>,
    shards: Vec<Arc<ShardSnapshot>>,
    /// Union shell-size histogram (sum of the shard histograms, trailing
    /// zeros trimmed).
    shell_sizes: Vec<usize>,
    /// Memoized union k-core subgraphs for hot `k` values; invalidated
    /// for free at the epoch flip (the next stitched vector is a new
    /// snapshot with an empty cache).
    subgraphs: Mutex<crate::view::SubgraphMemo>,
    /// Lazily materialized flat coreness (query-side, once per epoch).
    full_values: OnceLock<Vec<u32>>,
    /// Lazily materialized union graph (query-side, once per epoch).
    full_graph: OnceLock<Graph>,
}

impl StitchedSnapshot {
    fn assemble(
        epoch: u64,
        nodes: usize,
        edges: usize,
        map: Arc<ShardMap>,
        shards: Vec<Arc<ShardSnapshot>>,
    ) -> Self {
        let kmax = shards
            .iter()
            .map(|s| s.shell_sizes.len())
            .max()
            .unwrap_or(1);
        let mut shell_sizes = vec![0usize; kmax];
        for s in &shards {
            for (k, &c) in s.shell_sizes.iter().enumerate() {
                shell_sizes[k] += c;
            }
        }
        trim_shells(&mut shell_sizes);
        StitchedSnapshot {
            epoch,
            nodes,
            edges,
            map,
            shards,
            shell_sizes,
            subgraphs: Mutex::new(HashMap::new()),
            full_values: OnceLock::new(),
            full_graph: OnceLock::new(),
        }
    }

    /// The epoch this stitched vector was published as.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards stitched together.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of nodes in the union graph.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of edges in the union graph.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Coreness of `v` in the union graph, or `None` when out of range.
    pub fn coreness(&self, v: NodeId) -> Option<u32> {
        if v.index() >= self.nodes {
            return None;
        }
        let shard = &self.shards[self.map.owner[v.index()] as usize];
        Some(shard.coreness_at(self.map.slot[v.index()] as usize))
    }

    /// Degree of `v` in the union graph, or `None` when out of range.
    pub fn degree(&self, v: NodeId) -> Option<u32> {
        if v.index() >= self.nodes {
            return None;
        }
        let shard = &self.shards[self.map.owner[v.index()] as usize];
        Some(shard.degree_at(self.map.slot[v.index()] as usize))
    }

    /// Sorted neighbors of `v` (global ids), or `None` when out of range.
    pub fn neighbors(&self, v: NodeId) -> Option<&[u32]> {
        if v.index() >= self.nodes {
            return None;
        }
        let shard = &self.shards[self.map.owner[v.index()] as usize];
        Some(shard.neighbors_at(self.map.slot[v.index()] as usize))
    }

    /// The largest coreness of this epoch.
    pub fn max_coreness(&self) -> u32 {
        (self.shell_sizes.len() - 1) as u32
    }

    /// Union shell-size histogram (`max_coreness() + 1` entries).
    pub fn histogram(&self) -> &[usize] {
        &self.shell_sizes
    }

    /// Number of nodes with coreness at least `k`.
    pub fn kcore_size(&self, k: u32) -> usize {
        self.shell_sizes
            .iter()
            .skip(k as usize)
            .copied()
            .sum::<usize>()
    }

    /// The members of the union k-core in ascending global id order: a
    /// k-way merge of the per-shard shell indexes, O(answer · log S)
    /// instead of a scan of the global id space.
    pub fn kcore_members(&self, k: u32) -> Vec<NodeId> {
        self.kcore_members_page(k, 0, usize::MAX).collect()
    }

    /// One page of the union k-core members: positions `offset ..
    /// offset + limit` of the ascending-global-id member sequence.
    /// Pages concatenate to exactly [`kcore_members`](Self::kcore_members).
    pub fn kcore_members_page(
        &self,
        k: u32,
        offset: usize,
        limit: usize,
    ) -> Box<dyn Iterator<Item = NodeId> + '_> {
        match &self.shards[..] {
            // Single shard: its index pages directly (chunk-skipping
            // offset instead of an element-wise merge skip).
            [only] => Box::new(only.index.members_page(k, offset, limit).map(NodeId)),
            shards => Box::new(
                MergedMembers::new(shards.iter().map(|s| s.index.members(k)))
                    .skip(offset)
                    .take(limit)
                    .map(NodeId),
            ),
        }
    }

    /// Extracts the union k-core subgraph with the compact-id mapping,
    /// identical to [`CoreSnapshot::kcore_subgraph`](crate::CoreSnapshot::kcore_subgraph):
    /// O(answer) member enumeration off the shard indexes, then the
    /// shared member-fed extraction. Clones out of the per-snapshot
    /// memo; [`kcore_subgraph_cached`](Self::kcore_subgraph_cached)
    /// shares it instead.
    pub fn kcore_subgraph(&self, k: u32) -> (Graph, Vec<NodeId>) {
        (*self.kcore_subgraph_cached(k)).clone()
    }

    /// The memoized union k-core subgraph: first call per `k` extracts
    /// and caches; epochs are immutable, so the cache can never go
    /// stale.
    pub fn kcore_subgraph_cached(&self, k: u32) -> Arc<(Graph, Vec<NodeId>)> {
        let mut memo = self
            .subgraphs
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(memo.entry(k).or_insert_with(|| {
            Arc::new(crate::view::kcore_subgraph_from_members(
                self,
                self.kcore_members_page(k, 0, usize::MAX),
            ))
        }))
    }

    /// The `n` nodes of largest coreness, ordered by descending coreness
    /// then ascending global id — same contract as the single-writer
    /// snapshot's `top_k`, emitted by a rank-order merge of the shard
    /// indexes in O(answer · log S).
    pub fn top_k(&self, n: usize) -> Vec<(NodeId, u32)> {
        self.top_page(0, n).collect()
    }

    /// One page of the full union coreness ranking: positions `offset
    /// .. offset + limit` of the (coreness desc, global id asc)
    /// sequence. Pages concatenate to the whole ranking.
    pub fn top_page(
        &self,
        offset: usize,
        limit: usize,
    ) -> Box<dyn Iterator<Item = (NodeId, u32)> + '_> {
        Box::new(
            MergedTop::new(self.shards.iter().map(|s| s.index.top()))
                .skip(offset)
                .take(limit)
                .map(|(u, c)| (NodeId(u), c)),
        )
    }

    /// Coreness of every node in the union graph, materialized lazily on
    /// first use and cached for the snapshot's lifetime.
    pub fn values(&self) -> &[u32] {
        self.full_values.get_or_init(|| {
            (0..self.nodes as u32)
                .map(|u| self.coreness(NodeId(u)).expect("in range"))
                .collect()
        })
    }

    /// The union graph, materialized lazily on first use and cached for
    /// the snapshot's lifetime. Cross-shard edges appear once.
    pub fn graph(&self) -> &Graph {
        self.full_graph.get_or_init(|| {
            let mut edges: Vec<(u32, u32)> = Vec::new();
            for u in 0..self.nodes as u32 {
                for &v in self.neighbors(NodeId(u)).expect("in range") {
                    if u < v {
                        edges.push((u, v));
                    }
                }
            }
            Graph::from_edges(self.nodes, edges).expect("stitched adjacency is a valid graph")
        })
    }
}

/// Cloneable stitching reader handle over the sharded service: pins one
/// consistent vector of per-shard epochs per `snapshot()` call.
#[derive(Debug, Clone)]
pub struct ShardedHandle {
    cell: Arc<EpochCell<StitchedSnapshot>>,
    health: Arc<HealthCell>,
    tel: Telemetry,
}

impl ShardedHandle {
    /// The latest published stitched epoch. The returned `Arc` pins every
    /// shard's state for that epoch.
    pub fn snapshot(&self) -> Arc<StitchedSnapshot> {
        self.cell.load()
    }

    /// The latest published epoch number, without loading a snapshot.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// The writer's latest health report: per-partition liveness,
    /// standby counts, and deferred-batch lag. Degraded or not, queries
    /// through [`snapshot`](Self::snapshot) keep working — this is how
    /// a reader learns the epoch has stopped advancing.
    pub fn health(&self) -> HealthReport {
        self.health.load()
    }

    /// The writer's telemetry bundle (registry + flight recorder).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore_graph::generators::{gnp, path};
    use rand::prelude::*;

    fn random_batch(svc: &ShardedCoreService, n: u32, size: usize, rng: &mut StdRng) -> EdgeBatch {
        let mut b = EdgeBatch::new();
        let mut seen: Vec<(u32, u32)> = Vec::new();
        let mut tries = 0;
        while b.len() < size && tries < size * 40 {
            tries += 1;
            let x = rng.random_range(0..n);
            let y = rng.random_range(0..n);
            if x == y {
                continue;
            }
            let key = (x.min(y), x.max(y));
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            if svc.has_edge(NodeId(key.0), NodeId(key.1)) {
                b.remove(NodeId(key.0), NodeId(key.1));
            } else {
                b.insert(NodeId(key.0), NodeId(key.1));
            }
        }
        b
    }

    #[test]
    fn stitched_epochs_match_union_ground_truth() {
        for shards in [1usize, 2, 4] {
            let g = gnp(240, 0.03, 11 + shards as u64);
            let mut svc = ShardedCoreService::new(&g, shards);
            let handle = svc.handle();
            assert_eq!(
                handle.snapshot().values(),
                batagelj_zaversnik(&g).as_slice()
            );
            let mut rng = StdRng::seed_from_u64(99 + shards as u64);
            for step in 1..=10u64 {
                let b = random_batch(&svc, 240, 10, &mut rng);
                let report = svc.apply_batch(&b).unwrap();
                assert_eq!(report.epoch, step);
                let snap = handle.snapshot();
                assert_eq!(snap.epoch(), step);
                assert_eq!(
                    snap.values(),
                    batagelj_zaversnik(snap.graph()).as_slice(),
                    "shards {shards}, step {step}: stitched epoch must equal \
                     fresh BZ on the union graph"
                );
                assert_eq!(snap.graph().edge_count(), snap.edge_count());
            }
        }
    }

    #[test]
    fn stitched_queries_agree_with_single_writer_service() {
        let g = gnp(200, 0.04, 23);
        let mut sharded = ShardedCoreService::new(&g, 3);
        let mut single = crate::CoreService::new(&g);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..6 {
            let b = random_batch(&sharded, 200, 8, &mut rng);
            sharded.apply_batch(&b).unwrap();
            single.apply_batch(&b).unwrap();
        }
        let s = sharded.handle().snapshot();
        let c = single.handle().snapshot();
        assert_eq!(s.values(), c.values());
        assert_eq!(s.histogram(), c.histogram());
        assert_eq!(s.max_coreness(), c.max_coreness());
        assert_eq!(s.edge_count(), c.edge_count());
        for k in 0..=s.max_coreness() + 1 {
            assert_eq!(s.kcore_members(k), c.kcore_members(k), "members k={k}");
            assert_eq!(s.kcore_size(k), c.kcore_size(k));
            let (ss, sb) = s.kcore_subgraph(k);
            let (cs, cb) = c.kcore_subgraph(k);
            assert_eq!(ss, cs, "subgraph k={k}");
            assert_eq!(sb, cb);
        }
        for n in [0usize, 1, 5, 50, 200] {
            assert_eq!(s.top_k(n), c.top_k(n), "top_k {n}");
        }
        for u in 0..200u32 {
            assert_eq!(s.coreness(NodeId(u)), c.coreness(NodeId(u)));
            assert_eq!(s.degree(NodeId(u)), c.degree(NodeId(u)));
        }
        assert_eq!(s.graph(), c.graph());
    }

    #[test]
    fn pinned_stitched_epochs_survive_further_churn() {
        let g = gnp(150, 0.04, 3);
        let mut svc = ShardedCoreService::with_assignment(&g, 2, &AssignmentPolicy::BfsBlocks);
        let handle = svc.handle();
        let mut pinned = vec![handle.snapshot()];
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..8 {
            let b = random_batch(&svc, 150, 6, &mut rng);
            svc.apply_batch(&b).unwrap();
            pinned.push(handle.snapshot());
        }
        for (i, snap) in pinned.iter().enumerate() {
            assert_eq!(snap.epoch(), i as u64);
            assert_eq!(
                snap.values(),
                batagelj_zaversnik(snap.graph()).as_slice(),
                "pinned epoch {i}"
            );
        }
    }

    #[test]
    fn failed_validation_publishes_nothing() {
        let g = path(6);
        let mut svc = ShardedCoreService::new(&g, 2);
        let handle = svc.handle();
        let mut b = EdgeBatch::new();
        b.remove(NodeId(0), NodeId(5)); // not an edge
        assert!(svc.apply_batch(&b).is_err());
        assert_eq!(svc.epoch(), 0);
        assert_eq!(handle.epoch(), 0);
        assert_eq!(handle.snapshot().graph(), &g);
    }

    fn config(replicas: usize, plan: &str) -> ShardedConfig {
        ShardedConfig {
            replicas,
            fault_plan: FaultPlan::parse(plan).expect("test plan parses"),
            ..ShardedConfig::default()
        }
    }

    #[test]
    fn failover_to_replica_keeps_every_epoch_exact() {
        // Kill each partition's primary in turn between batches; the
        // replica must replay to the published epoch and rejoin so
        // cleanly that every stitched epoch still equals fresh BZ.
        let g = gnp(160, 0.04, 31);
        let mut svc = ShardedCoreService::with_config(&g, 3, config(1, "none"));
        let handle = svc.handle();
        let mut rng = StdRng::seed_from_u64(41);
        for step in 1..=9u64 {
            let b = random_batch(&svc, 160, 8, &mut rng);
            svc.apply_batch(&b).unwrap();
            if step % 3 == 0 {
                let victim = (step / 3 - 1) as usize;
                assert_eq!(svc.replica_count(victim), 1);
                assert!(svc.kill_primary(victim), "replica takes over");
                assert_eq!(svc.replica_count(victim), 0);
                assert!(!svc.is_degraded());
            }
            let snap = handle.snapshot();
            assert_eq!(snap.epoch(), step);
            assert_eq!(
                snap.values(),
                batagelj_zaversnik(snap.graph()).as_slice(),
                "step {step}: failover must not perturb results"
            );
        }
        assert!(svc.handle().health().shards.iter().all(|s| s.primary_alive));
    }

    #[test]
    fn lagging_replica_replays_the_log_suffix_on_promotion() {
        // With a large replica_lag the standby never syncs, so promotion
        // must replay the whole log suffix from its own applied epoch.
        let g = gnp(120, 0.05, 7);
        let mut cfg = config(1, "none");
        cfg.replica_lag = 100; // never proactively sync
        let mut svc = ShardedCoreService::with_config(&g, 2, cfg);
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..5 {
            let b = random_batch(&svc, 120, 6, &mut rng);
            svc.apply_batch(&b).unwrap();
        }
        assert!(svc.kill_primary(1), "promotion replays 5 epochs");
        let b = random_batch(&svc, 120, 6, &mut rng);
        svc.apply_batch(&b).unwrap();
        let snap = svc.handle().snapshot();
        assert_eq!(snap.epoch(), 6);
        assert_eq!(snap.values(), batagelj_zaversnik(snap.graph()).as_slice());
    }

    #[test]
    fn exhausted_partition_degrades_then_revives_from_the_snapshot() {
        let g = gnp(100, 0.05, 19);
        let mut svc = ShardedCoreService::with_config(&g, 2, config(0, "none"));
        let handle = svc.handle();
        let mut rng = StdRng::seed_from_u64(23);
        let b = random_batch(&svc, 100, 6, &mut rng);
        svc.apply_batch(&b).unwrap();

        assert!(!svc.kill_primary(0), "no replica: partition goes down");
        assert!(svc.is_degraded());

        // Batches still validate (against the logical edge set) and are
        // logged, but the published epoch is frozen.
        for lag in 1..=3u64 {
            let b = random_batch(&svc, 100, 6, &mut rng);
            let report = svc.apply_batch(&b).unwrap();
            assert!(report.deferred, "degraded batches defer");
            assert_eq!(report.epoch, 1, "epoch frozen while degraded");
            assert_eq!(svc.backlog(), lag as usize);
            let health = handle.health();
            assert_eq!(
                health.status_line(),
                format!("status=degraded down=0:{lag}")
            );
        }
        // Readers keep answering from the last consistent epoch.
        let snap = handle.snapshot();
        assert_eq!(snap.epoch(), 1);
        assert_eq!(snap.values(), batagelj_zaversnik(snap.graph()).as_slice());

        // Revival rebuilds the partition from the published snapshot and
        // drains the whole backlog.
        assert_eq!(svc.revive_shard(0), 3);
        assert!(!svc.is_degraded());
        assert_eq!(svc.backlog(), 0);
        let snap = handle.snapshot();
        assert_eq!(snap.epoch(), 4);
        assert_eq!(snap.values(), batagelj_zaversnik(snap.graph()).as_slice());
        assert_eq!(handle.health().status_line(), "status=healthy");
    }

    #[test]
    fn flight_recorder_replays_the_failover_chain_in_order() {
        // Drive a full lifecycle on shard 1 — kill (replica promotes),
        // kill again (exhausted: degraded), defer a batch, revive — and
        // assert the flight recorder replays exactly that chain, in
        // order, with gapless sequence numbers.
        let g = gnp(100, 0.05, 19);
        let mut svc = ShardedCoreService::with_config(&g, 2, config(1, "none"));
        let mut rng = StdRng::seed_from_u64(5);
        let b = random_batch(&svc, 100, 6, &mut rng);
        svc.apply_batch(&b).unwrap();

        assert!(svc.kill_primary(1), "first kill: replica promotes");
        assert!(!svc.kill_primary(1), "second kill: shard exhausted");
        let b = random_batch(&svc, 100, 6, &mut rng);
        assert!(svc.apply_batch(&b).unwrap().deferred);
        assert_eq!(svc.revive_shard(1), 1);

        let events = svc.telemetry().events_since(0, usize::MAX);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64 + 1, "gapless seqs from 1");
        }
        let lifecycle: Vec<(EventKind, u32)> = events
            .iter()
            .filter(|e| {
                !matches!(
                    e.kind,
                    EventKind::BatchApplied | EventKind::EpochPublished | EventKind::Retransmit
                )
            })
            .map(|e| (e.kind, e.shard))
            .collect();
        assert_eq!(
            lifecycle,
            vec![
                (EventKind::Failover, 1),
                (EventKind::Promotion, 1),
                (EventKind::Failover, 1),
                (EventKind::Degraded, 1),
                (EventKind::Deferred, 0),
                (EventKind::Revive, 1),
            ],
            "full events: {events:?}"
        );
        // The revive drains the deferred batch, so the final published
        // epoch in the event stream is 2.
        assert_eq!(events.last().unwrap().kind, EventKind::Revive);
        assert_eq!(svc.telemetry().recorder().last_seq(), events.len() as u64);
    }

    #[test]
    fn message_faults_force_resends_but_never_wrong_answers() {
        // 20% drops plus duplicates and delay spikes on the border
        // exchange: retransmission must absorb all of it.
        let g = gnp(140, 0.05, 47);
        let plan = "seed=9,drop=20,dup=10,delay=10:3";
        let mut svc = ShardedCoreService::with_config(&g, 2, config(0, plan));
        let mut rng = StdRng::seed_from_u64(53);
        let mut resends = 0u64;
        for step in 1..=10u64 {
            let b = random_batch(&svc, 140, 8, &mut rng);
            let report = svc.apply_batch(&b).unwrap();
            resends += report.resends;
            let snap = svc.handle().snapshot();
            assert_eq!(
                snap.values(),
                batagelj_zaversnik(snap.graph()).as_slice(),
                "step {step} under plan {plan}"
            );
        }
        assert!(resends > 0, "a 20% drop rate must trigger retransmits");
    }

    #[test]
    fn scheduled_kill_fails_over_mid_stream() {
        let g = gnp(120, 0.05, 61);
        let mut svc = ShardedCoreService::with_config(&g, 2, config(1, "kill=0@2"));
        let mut rng = StdRng::seed_from_u64(67);
        for step in 1..=4u64 {
            let b = random_batch(&svc, 120, 6, &mut rng);
            let report = svc.apply_batch(&b).unwrap();
            assert_eq!(report.failovers, u32::from(step == 2), "step {step}");
            let snap = svc.handle().snapshot();
            assert_eq!(snap.epoch(), step);
            assert_eq!(snap.values(), batagelj_zaversnik(snap.graph()).as_slice());
        }
        assert_eq!(svc.replica_count(0), 0, "the standby was consumed");
    }

    #[test]
    fn short_stall_rides_through_long_stall_fails_over() {
        // A stall below the heartbeat timeout is just a slow shard; one
        // above it is indistinguishable from death and must fail over.
        let g = path(40);
        for (plan, expect_failover) in [("stall=1@1:2", false), ("stall=1@1:30", true)] {
            let mut svc = ShardedCoreService::with_config(&g, 2, config(1, plan));
            let mut b = EdgeBatch::new();
            b.insert(NodeId(0), NodeId(39)); // cascade crosses every border
            let report = svc.apply_batch(&b).unwrap();
            assert_eq!(
                report.failovers > 0,
                expect_failover,
                "plan {plan}: failovers={}",
                report.failovers
            );
            let snap = svc.handle().snapshot();
            assert!(snap.values().iter().all(|&c| c == 2), "plan {plan}");
        }
    }

    #[test]
    fn cross_shard_cascades_converge() {
        // A path sharded modulo 2 makes *every* edge a border edge: any
        // repair must flow entirely through border exchange.
        let g = path(40);
        let mut svc = ShardedCoreService::new(&g, 2);
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(39)); // close the cycle: all coreness 2
        let report = svc.apply_batch(&b).unwrap();
        assert!(report.rounds >= 1, "border exchange must run");
        let snap = svc.handle().snapshot();
        assert!(snap.values().iter().all(|&c| c == 2));
        // Cut it again: everyone drops back to 1, purely via borders.
        let mut b = EdgeBatch::new();
        b.remove(NodeId(20), NodeId(21));
        svc.apply_batch(&b).unwrap();
        let snap = svc.handle().snapshot();
        assert_eq!(snap.values(), batagelj_zaversnik(snap.graph()).as_slice());
    }
}
