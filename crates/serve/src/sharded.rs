//! Sharded multi-writer serving: one [`CoreService`]-style writer per
//! partition, cross-shard coreness agreement via border-estimate
//! exchange, and a stitching query front end.
//!
//! # Architecture
//!
//! The union graph is partitioned over `S` shards with the one-to-many
//! deployment's [`Assignment`] policies (§3.2.2 of the paper). Each
//! [`Shard`] owns its partition's nodes: their adjacency (an
//! [`AdjacencyArena`] whose slots are shard-local, values global node
//! ids), their estimates, and a **border cache** of the last announced
//! estimate of every remote neighbor — exactly the state a host of the
//! one-to-many protocol keeps.
//!
//! Applying a batch ([`ShardedCoreService::apply_batch`]) is the
//! protocol's re-convergence, warm-started:
//!
//! 1. mutations are applied to the owning shards' arenas (a cross-shard
//!    edge updates one arc in each shard);
//! 2. the coordinator grows merged insertion/removal
//!    [`candidate_regions`] over the *union* graph through a
//!    shard-backed neighbor closure, and seeds every candidate and
//!    removal endpoint with the proven upper bound
//!    `min(old + region insertions, new degree)`;
//! 3. synchronous rounds run until quiescence: every shard drains its
//!    worklist in parallel (recomputing Algorithm 2's `computeIndex`
//!    from owned estimates plus the border cache, cascading drops
//!    locally), then the coordinator routes each dropped **border**
//!    estimate to the shards owning a neighbor of the dropped node —
//!    the `⟨S⟩` exchange of the host protocol;
//! 4. at the fixpoint every estimate is locally justified, which makes
//!    the stitched vector the *exact* coreness of the union graph (the
//!    estimates started as upper bounds and only ever descended — the
//!    same safety/convergence argument as the paper's Theorems 2/3,
//!    checked end-to-end against Batagelj–Zaveršnik by
//!    `tests/sharded_oracle.rs` at shard counts {1, 2, 4});
//! 5. each shard publishes its local epoch **incrementally** (chunked
//!    copy-on-write state exactly like
//!    [`CoreSnapshot`](crate::CoreSnapshot)), and the coordinator swaps
//!    the assembled [`StitchedSnapshot`] — a consistent vector of
//!    per-shard epochs — into the publication cell in one atomic flip,
//!    so readers can never observe shards from different epochs.
//!
//! [`ShardedHandle`] is the stitching front end: every query family of
//! the single-writer service (point coreness, membership, histograms,
//! top-k, induced subgraphs) is answered against one pinned stitched
//! epoch, with cross-shard results merged in global id order.
//!
//! [`CoreService`]: crate::CoreService

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use dkcore::compute_index;
use dkcore::dynamic::MutationError;
use dkcore::one_to_many::{Assignment, AssignmentPolicy};
use dkcore::seq::batagelj_zaversnik;
use dkcore::stream::{candidate_regions, AdjacencyArena, EdgeBatch};
use dkcore_graph::{Graph, NodeId};

use crate::service::EpochCell;
use crate::snapshot::{apply_shell_change, trim_shells, AdjChunk, ChunkedU32, ADJ_CHUNK};

/// Node → (shard, local slot) tables shared by the shards, the
/// coordinator, and every stitched snapshot.
#[derive(Debug)]
struct ShardMap {
    /// Owning shard of each node.
    owner: Vec<u32>,
    /// Local slot of each node within its owning shard.
    slot: Vec<u32>,
}

/// One estimate-drop message of the border exchange: `source` (owned by
/// the sending shard) dropped to `est`; `target` (owned by the receiving
/// shard) neighbors it and must be re-examined.
struct BorderMsg {
    dest: u32,
    target: u32,
    source: u32,
    est: u32,
}

/// One border-cache entry: the cached estimate plus the number of owned
/// arcs referencing the remote node (eviction at zero).
#[derive(Debug, Clone, Copy)]
struct BorderEntry {
    est: u32,
    refs: u32,
}

/// The per-shard writer state: the partition's slice of the union graph
/// plus the border cache. See the [module docs](self).
struct Shard {
    /// Sorted global ids of the owned nodes (slot `i` ↔ `owned[i]`).
    owned: Vec<u32>,
    /// Slot-indexed adjacency; values are global node ids.
    adj: AdjacencyArena,
    /// Per-slot estimate: exact coreness between epochs.
    est: Vec<u32>,
    /// Border cache: last announced estimate of every *current* remote
    /// neighbor (global id), refcounted by how many owned arcs point at
    /// it so churn that removes the last cross-shard edge to a node also
    /// evicts its entry (no unbounded growth under sliding-window
    /// workloads).
    remote_est: HashMap<u32, BorderEntry>,
    /// Worklist of local slots (deduplicated by `queued`).
    queue: VecDeque<u32>,
    queued: Vec<bool>,
    /// Epoch-change log: slot → pre-epoch estimate, stamped per epoch;
    /// `epoch_touched` lists the stamped slots so the publish-side
    /// change gather is `O(|touched|)`, not a full slot scan.
    epoch_mark: Vec<u64>,
    epoch_old: Vec<u32>,
    epoch_touched: Vec<u32>,
    /// Latest published local snapshot (the chain `advance` extends).
    snapshot: Arc<ShardSnapshot>,
}

impl Shard {
    /// Enqueues a local slot for (re-)examination.
    fn enqueue(&mut self, slot: u32) {
        if !self.queued[slot as usize] {
            self.queued[slot as usize] = true;
            self.queue.push_back(slot);
        }
    }

    /// Records the pre-epoch value of a slot once per epoch. The caller
    /// (the coordinator) clears `epoch_touched` at every batch start.
    fn mark(&mut self, slot: u32, epoch: u64) {
        if self.epoch_mark[slot as usize] != epoch {
            self.epoch_mark[slot as usize] = epoch;
            self.epoch_old[slot as usize] = self.est[slot as usize];
            self.epoch_touched.push(slot);
        }
    }

    /// Sets a seeded estimate and notifies the neighbors: local ones are
    /// enqueued, remote ones produce border messages (which both refresh
    /// the destination's cache and enqueue the target).
    fn seed(
        &mut self,
        map: &ShardMap,
        me: u32,
        slot: u32,
        value: u32,
        epoch: u64,
        out: &mut Vec<BorderMsg>,
    ) {
        self.mark(slot, epoch);
        let changed = self.est[slot as usize] != value;
        self.est[slot as usize] = value;
        self.enqueue(slot);
        if !changed {
            return;
        }
        let u = self.owned[slot as usize];
        for i in 0..self.adj.degree(slot as usize) as usize {
            let v = self.adj.neighbors(slot as usize)[i];
            let owner = map.owner[v as usize];
            if owner == me {
                self.enqueue(map.slot[v as usize]);
            } else {
                out.push(BorderMsg {
                    dest: owner,
                    target: v,
                    source: u,
                    est: value,
                });
            }
        }
    }

    /// Drains the worklist to its local fixpoint: Algorithm 2 over owned
    /// estimates plus the border cache, cascading drops through owned
    /// neighbors immediately and emitting one border message per remote
    /// neighbor of every net-dropped node.
    fn drain(&mut self, map: &ShardMap, me: u32, epoch: u64) -> Vec<BorderMsg> {
        let mut dropped: Vec<u32> = Vec::new();
        while let Some(s) = self.queue.pop_front() {
            self.queued[s as usize] = false;
            let cap = self.est[s as usize];
            if cap == 0 {
                continue;
            }
            let new = {
                let nbrs = self.adj.neighbors(s as usize);
                compute_index(
                    nbrs.iter().map(|&v| {
                        if map.owner[v as usize] == me {
                            self.est[map.slot[v as usize] as usize]
                        } else {
                            self.remote_est
                                .get(&v)
                                .expect("border cache covers every remote neighbor")
                                .est
                        }
                    }),
                    cap,
                )
            };
            if new < cap {
                self.mark(s, epoch);
                self.est[s as usize] = new;
                dropped.push(s);
                // Owned neighbors re-examine immediately (same round).
                for i in 0..self.adj.degree(s as usize) as usize {
                    let v = self.adj.neighbors(s as usize)[i];
                    if map.owner[v as usize] == me {
                        self.enqueue(map.slot[v as usize]);
                    }
                }
            }
        }
        // One message per (dropped node, remote neighbor), carrying the
        // node's final value for this round.
        let mut out = Vec::new();
        dropped.sort_unstable();
        dropped.dedup();
        for s in dropped {
            let u = self.owned[s as usize];
            let value = self.est[s as usize];
            for &v in self.adj.neighbors(s as usize) {
                let owner = map.owner[v as usize];
                if owner != me {
                    out.push(BorderMsg {
                        dest: owner,
                        target: v,
                        source: u,
                        est: value,
                    });
                }
            }
        }
        out
    }

    /// The (global, old, new) coreness changes of this epoch, gathered
    /// from the touched-slot log in `O(|touched|)`.
    fn epoch_changes(&self, epoch: u64) -> Vec<(u32, u32, u32)> {
        let mut out = Vec::new();
        for &s in &self.epoch_touched {
            let s = s as usize;
            if self.epoch_mark[s] == epoch && self.epoch_old[s] != self.est[s] {
                out.push((self.owned[s], self.epoch_old[s], self.est[s]));
            }
        }
        out
    }
}

/// One shard's published epoch: chunked copy-on-write coreness, degrees
/// and adjacency over the shard's local slots (values are global ids).
#[derive(Debug)]
pub(crate) struct ShardSnapshot {
    coreness: ChunkedU32,
    degrees: ChunkedU32,
    adj: Vec<Arc<AdjChunk>>,
    /// Local shell-size histogram (trailing zeros trimmed).
    shell_sizes: Vec<usize>,
}

impl ShardSnapshot {
    fn capture(shard: &Shard) -> Self {
        let n = shard.owned.len();
        let coreness = ChunkedU32::from_iter(n, shard.est.iter().copied());
        let degrees = ChunkedU32::from_iter(n, (0..n).map(|s| shard.adj.degree(s)));
        let adj = (0..n.div_ceil(ADJ_CHUNK))
            .map(|ci| {
                let base = ci * ADJ_CHUNK;
                Arc::new(AdjChunk::pack(&shard.adj, base, ADJ_CHUNK.min(n - base)))
            })
            .collect();
        let max_core = shard.est.iter().copied().max().unwrap_or(0) as usize;
        let mut shell_sizes = vec![0usize; max_core + 1];
        for &k in &shard.est {
            shell_sizes[k as usize] += 1;
        }
        ShardSnapshot {
            coreness,
            degrees,
            adj,
            shell_sizes,
        }
    }

    /// Incremental successor: copy-on-write rewrites of the chunks
    /// holding a changed coreness or a mutated adjacency slot, all other
    /// chunks shared with `self`.
    fn advance(&self, shard: &Shard, changes: &[(u32, u32, u32)], dirty_slots: &[u32]) -> Self {
        let n = shard.owned.len();
        let mut next = ShardSnapshot {
            coreness: self.coreness.clone(),
            degrees: self.degrees.clone(),
            adj: self.adj.clone(),
            shell_sizes: self.shell_sizes.clone(),
        };
        for &(u, old, new) in changes {
            let s = shard_slot(shard, u);
            next.coreness.set(s, new);
            apply_shell_change(&mut next.shell_sizes, old, new);
        }
        trim_shells(&mut next.shell_sizes);
        let mut dirty_chunks: Vec<usize> = Vec::new();
        for &s in dirty_slots {
            next.degrees.set(s as usize, shard.adj.degree(s as usize));
            let ci = s as usize / ADJ_CHUNK;
            if !dirty_chunks.contains(&ci) {
                dirty_chunks.push(ci);
            }
        }
        for ci in dirty_chunks {
            let base = ci * ADJ_CHUNK;
            next.adj[ci] = Arc::new(AdjChunk::pack(&shard.adj, base, ADJ_CHUNK.min(n - base)));
        }
        next
    }

    #[inline]
    fn coreness_at(&self, slot: usize) -> u32 {
        self.coreness.get(slot).expect("slot in range")
    }

    #[inline]
    fn degree_at(&self, slot: usize) -> u32 {
        self.degrees.get(slot).expect("slot in range")
    }

    #[inline]
    fn neighbors_at(&self, slot: usize) -> &[u32] {
        self.adj[slot / ADJ_CHUNK].neighbors(slot % ADJ_CHUNK)
    }
}

/// The slot of global node `u` inside `shard` (binary search over the
/// sorted owned list — used only on the publish path).
fn shard_slot(shard: &Shard, u: u32) -> usize {
    shard
        .owned
        .binary_search(&u)
        .expect("change log only names owned nodes")
}

/// Report of one applied-and-published batch on the sharded service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardedPublishReport {
    /// The epoch the batch was published as.
    pub epoch: u64,
    /// Border-exchange rounds until quiescence (0 when nothing crossed a
    /// shard boundary).
    pub rounds: u32,
    /// Border messages exchanged.
    pub messages: u64,
    /// Nodes whose coreness changed.
    pub changed: usize,
    /// Time spent applying and re-converging, in microseconds.
    pub repair_micros: f64,
    /// Time spent building and swapping the stitched epoch, in
    /// microseconds.
    pub publish_micros: f64,
}

/// The sharded multi-writer core-number service. See the
/// [module docs](self) for the protocol.
pub struct ShardedCoreService {
    shards: Vec<Shard>,
    map: Arc<ShardMap>,
    /// Coordinator mirror of the union coreness (exact between epochs;
    /// the old values feed the next batch's candidate analysis).
    global_core: Vec<u32>,
    epoch: u64,
    edges: usize,
    cell: Arc<EpochCell<StitchedSnapshot>>,
}

impl std::fmt::Debug for ShardedCoreService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedCoreService")
            .field("shards", &self.shards.len())
            .field("epoch", &self.epoch)
            .field("edges", &self.edges)
            .finish_non_exhaustive()
    }
}

impl ShardedCoreService {
    /// Builds the service over `shard_count` partitions with the paper's
    /// default `u mod |H|` assignment and publishes epoch 0.
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0`.
    pub fn new(g: &Graph, shard_count: usize) -> Self {
        Self::with_assignment(g, shard_count, &AssignmentPolicy::Modulo)
    }

    /// Builds the service with an explicit [`AssignmentPolicy`]
    /// (`BfsBlocks` cuts far fewer cross-shard edges on local graphs).
    ///
    /// # Panics
    ///
    /// Panics if `shard_count == 0`.
    pub fn with_assignment(g: &Graph, shard_count: usize, policy: &AssignmentPolicy) -> Self {
        let n = g.node_count();
        let assignment = Assignment::new(g, shard_count, policy);
        let global_core = batagelj_zaversnik(g);

        let mut owner = vec![0u32; n];
        let mut slot = vec![0u32; n];
        for h in assignment.hosts() {
            for (i, &u) in assignment.nodes_of(h).iter().enumerate() {
                owner[u.index()] = h.0;
                slot[u.index()] = i as u32;
            }
        }
        let map = Arc::new(ShardMap { owner, slot });

        let shards: Vec<Shard> = assignment
            .hosts()
            .map(|h| {
                let owned: Vec<u32> = assignment.nodes_of(h).iter().map(|u| u.0).collect();
                let adj = AdjacencyArena::from_sorted_lists(owned.iter().map(|&u| {
                    g.neighbors(NodeId(u))
                        .iter()
                        .map(|v| v.0)
                        .collect::<Vec<_>>()
                }));
                let est: Vec<u32> = owned.iter().map(|&u| global_core[u as usize]).collect();
                let mut remote_est: HashMap<u32, BorderEntry> = HashMap::new();
                for &u in &owned {
                    for &v in g.neighbors(NodeId(u)) {
                        if map.owner[v.index()] != h.0 {
                            remote_est
                                .entry(v.0)
                                .or_insert(BorderEntry {
                                    est: global_core[v.index()],
                                    refs: 0,
                                })
                                .refs += 1;
                        }
                    }
                }
                let count = owned.len();
                let mut shard = Shard {
                    owned,
                    adj,
                    est,
                    remote_est,
                    queue: VecDeque::new(),
                    queued: vec![false; count],
                    epoch_mark: vec![u64::MAX; count],
                    epoch_old: vec![0; count],
                    epoch_touched: Vec::new(),
                    snapshot: Arc::new(ShardSnapshot {
                        coreness: ChunkedU32::default(),
                        degrees: ChunkedU32::default(),
                        adj: Vec::new(),
                        shell_sizes: vec![0],
                    }),
                };
                shard.snapshot = Arc::new(ShardSnapshot::capture(&shard));
                shard
            })
            .collect();

        let latest = Arc::new(StitchedSnapshot::assemble(
            0,
            n,
            g.edge_count(),
            map.clone(),
            shards.iter().map(|s| s.snapshot.clone()).collect(),
        ));
        ShardedCoreService {
            shards,
            map,
            global_core,
            epoch: 0,
            edges: g.edge_count(),
            cell: Arc::new(EpochCell::new(latest)),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The latest published epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// A new stitching reader handle.
    pub fn handle(&self) -> ShardedHandle {
        ShardedHandle {
            cell: self.cell.clone(),
        }
    }

    /// Whether the union graph currently has the edge `{u, v}`.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u.index() >= self.map.owner.len() {
            return false;
        }
        let shard = &self.shards[self.map.owner[u.index()] as usize];
        shard
            .adj
            .neighbors(self.map.slot[u.index()] as usize)
            .binary_search(&v.0)
            .is_ok()
    }

    /// Applies one batch to the union graph atomically, re-converges the
    /// shards through border exchange, and publishes the next stitched
    /// epoch. On a validation error nothing is mutated and no epoch is
    /// published.
    ///
    /// # Errors
    ///
    /// Returns the [`MutationError`] from batch validation (the same
    /// rules as [`StreamCore::apply_batch`](dkcore::stream::StreamCore)).
    pub fn apply_batch(
        &mut self,
        batch: &EdgeBatch,
    ) -> Result<ShardedPublishReport, MutationError> {
        let n = self.map.owner.len();
        batch.validate_against(n, |u, v| self.has_edge(u, v))?;
        let t0 = Instant::now();
        self.epoch += 1;
        let epoch = self.epoch;
        for shard in &mut self.shards {
            shard.epoch_touched.clear();
        }

        // --- 1. Apply the mutations to the owning shards' arenas. ---
        for &(u, v) in batch.removals() {
            self.arc_remove(u.0, v.0);
            self.arc_remove(v.0, u.0);
        }
        for &(u, v) in batch.insertions() {
            self.arc_insert(u.0, v.0);
            self.arc_insert(v.0, u.0);
        }
        self.edges = self.edges + batch.insertions().len() - batch.removals().len();

        // --- 2. Candidate analysis over the union graph + seeding. ---
        let regions = {
            let shards = &self.shards;
            let map = &self.map;
            candidate_regions(
                n,
                batch.insertions(),
                batch.removals(),
                &self.global_core,
                |x| {
                    let shard = &shards[map.owner[x as usize] as usize];
                    shard
                        .adj
                        .neighbors(map.slot[x as usize] as usize)
                        .iter()
                        .copied()
                },
            )
        };
        let mut seeds: Vec<(u32, u32)> = Vec::new(); // (node, bound)
        let mut bumped: std::collections::HashSet<u32> = std::collections::HashSet::new();
        for region in &regions {
            // Removal-only regions are grown for the merge/slack analysis
            // but need no bump: only their endpoints are seeded (below)
            // and drop cascades reach the rest, exactly like the
            // single-writer removal phase.
            if region.insertions == 0 {
                continue;
            }
            for &w in &region.members {
                let deg = self.degree_of(w);
                let bound = (self.global_core[w as usize] + region.insertions).min(deg);
                seeds.push((w, bound));
                bumped.insert(w);
            }
        }
        // Removal endpoints outside every bumped region still need
        // examination (their coreness can only drop; the degree cap may
        // bind immediately).
        for &(u, v) in batch.removals() {
            for w in [u.0, v.0] {
                if !bumped.contains(&w) {
                    let bound = self.global_core[w as usize].min(self.degree_of(w));
                    seeds.push((w, bound));
                }
            }
        }
        let mut pending: Vec<BorderMsg> = Vec::new();
        for (w, bound) in seeds {
            let me = self.map.owner[w as usize];
            let slot = self.map.slot[w as usize];
            let map = self.map.clone();
            self.shards[me as usize].seed(&map, me, slot, bound, epoch, &mut pending);
        }

        // --- 3. Synchronous border-exchange rounds until quiescence. ---
        let mut rounds = 0u32;
        let mut messages = pending.len() as u64;
        loop {
            // Deliver: refresh border caches, enqueue the targets. The
            // entry must exist — messages are only generated for edges
            // present in the sender's arena, which the receiver mirrors.
            for m in pending.drain(..) {
                let shard = &mut self.shards[m.dest as usize];
                shard
                    .remote_est
                    .get_mut(&m.source)
                    .expect("border message for a cached neighbor")
                    .est = m.est;
                let slot = self.map.slot[m.target as usize];
                shard.enqueue(slot);
            }
            if self.shards.iter().all(|s| s.queue.is_empty()) {
                break;
            }
            rounds += 1;
            let map = &self.map;
            if self.shards.len() == 1 {
                pending = self.shards[0].drain(map, 0, epoch);
            } else {
                let outs: Vec<Vec<BorderMsg>> = std::thread::scope(|scope| {
                    let handles: Vec<_> = self
                        .shards
                        .iter_mut()
                        .enumerate()
                        .map(|(i, shard)| scope.spawn(move || shard.drain(map, i as u32, epoch)))
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("shard drain"))
                        .collect()
                });
                pending = outs.into_iter().flatten().collect();
            }
            messages += pending.len() as u64;
        }
        let repair_micros = t0.elapsed().as_secs_f64() * 1e6;

        // --- 4. Gather the epoch's changes, publish the stitched epoch. ---
        let t1 = Instant::now();
        let mut changed = 0usize;
        let mut shard_snaps = Vec::with_capacity(self.shards.len());
        for (i, shard) in self.shards.iter_mut().enumerate() {
            let changes = shard.epoch_changes(epoch);
            changed += changes.len();
            for &(u, _, new) in &changes {
                self.global_core[u as usize] = new;
            }
            let dirty_slots: Vec<u32> = batch
                .insertions()
                .iter()
                .chain(batch.removals())
                .flat_map(|&(u, v)| [u.0, v.0])
                .filter(|&w| self.map.owner[w as usize] as usize == i)
                .map(|w| self.map.slot[w as usize])
                .collect();
            shard.snapshot = Arc::new(shard.snapshot.advance(shard, &changes, &dirty_slots));
            shard_snaps.push(shard.snapshot.clone());
        }
        let stitched = Arc::new(StitchedSnapshot::assemble(
            epoch,
            n,
            self.edges,
            self.map.clone(),
            shard_snaps,
        ));
        self.cell.publish(stitched, epoch);
        let publish_micros = t1.elapsed().as_secs_f64() * 1e6;

        Ok(ShardedPublishReport {
            epoch,
            rounds,
            messages,
            changed,
            repair_micros,
            publish_micros,
        })
    }

    /// Removes the arc `u → v` from `u`'s owning shard, dropping the
    /// border-cache reference when `v` is remote (the entry is evicted
    /// once no owned arc points at `v` anymore, so churn cannot grow the
    /// cache past the live border).
    fn arc_remove(&mut self, u: u32, v: u32) {
        let su = self.map.owner[u as usize];
        let shard = &mut self.shards[su as usize];
        let removed = shard.adj.remove_arc(self.map.slot[u as usize] as usize, v);
        debug_assert!(removed, "validated removal");
        if self.map.owner[v as usize] != su {
            let entry = shard
                .remote_est
                .get_mut(&v)
                .expect("border cache covers every remote neighbor");
            entry.refs -= 1;
            if entry.refs == 0 {
                shard.remote_est.remove(&v);
            }
        }
    }

    /// Inserts the arc `u → v` into `u`'s owning shard, priming (or
    /// re-referencing) the border cache when `v` is remote. The primed
    /// value is the exact pre-batch coreness; the seeding pass overwrites
    /// it for bumped candidates before any round reads it.
    fn arc_insert(&mut self, u: u32, v: u32) {
        let su = self.map.owner[u as usize];
        let shard = &mut self.shards[su as usize];
        let inserted = shard.adj.insert_arc(self.map.slot[u as usize] as usize, v);
        debug_assert!(inserted, "validated insertion");
        if self.map.owner[v as usize] != su {
            let entry = shard.remote_est.entry(v).or_insert(BorderEntry {
                est: self.global_core[v as usize],
                refs: 0,
            });
            entry.refs += 1;
            // A re-referenced surviving entry may hold a stale (higher)
            // announcement; reset it to the authoritative pre-batch value.
            entry.est = self.global_core[v as usize];
        }
    }

    /// Current degree of global node `w`.
    fn degree_of(&self, w: u32) -> u32 {
        self.shards[self.map.owner[w as usize] as usize]
            .adj
            .degree(self.map.slot[w as usize] as usize)
    }
}

/// A consistent vector of per-shard epochs, published atomically: every
/// query runs against the same union-graph batch boundary on every
/// shard. Immutable; holding one pins all of its shards' chunked state.
#[derive(Debug)]
pub struct StitchedSnapshot {
    epoch: u64,
    nodes: usize,
    edges: usize,
    map: Arc<ShardMap>,
    shards: Vec<Arc<ShardSnapshot>>,
    /// Union shell-size histogram (sum of the shard histograms, trailing
    /// zeros trimmed).
    shell_sizes: Vec<usize>,
    /// Lazily materialized flat coreness (query-side, once per epoch).
    full_values: OnceLock<Vec<u32>>,
    /// Lazily materialized union graph (query-side, once per epoch).
    full_graph: OnceLock<Graph>,
}

impl StitchedSnapshot {
    fn assemble(
        epoch: u64,
        nodes: usize,
        edges: usize,
        map: Arc<ShardMap>,
        shards: Vec<Arc<ShardSnapshot>>,
    ) -> Self {
        let kmax = shards
            .iter()
            .map(|s| s.shell_sizes.len())
            .max()
            .unwrap_or(1);
        let mut shell_sizes = vec![0usize; kmax];
        for s in &shards {
            for (k, &c) in s.shell_sizes.iter().enumerate() {
                shell_sizes[k] += c;
            }
        }
        trim_shells(&mut shell_sizes);
        StitchedSnapshot {
            epoch,
            nodes,
            edges,
            map,
            shards,
            shell_sizes,
            full_values: OnceLock::new(),
            full_graph: OnceLock::new(),
        }
    }

    /// The epoch this stitched vector was published as.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards stitched together.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of nodes in the union graph.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// Number of edges in the union graph.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Coreness of `v` in the union graph, or `None` when out of range.
    pub fn coreness(&self, v: NodeId) -> Option<u32> {
        if v.index() >= self.nodes {
            return None;
        }
        let shard = &self.shards[self.map.owner[v.index()] as usize];
        Some(shard.coreness_at(self.map.slot[v.index()] as usize))
    }

    /// Degree of `v` in the union graph, or `None` when out of range.
    pub fn degree(&self, v: NodeId) -> Option<u32> {
        if v.index() >= self.nodes {
            return None;
        }
        let shard = &self.shards[self.map.owner[v.index()] as usize];
        Some(shard.degree_at(self.map.slot[v.index()] as usize))
    }

    /// Sorted neighbors of `v` (global ids), or `None` when out of range.
    pub fn neighbors(&self, v: NodeId) -> Option<&[u32]> {
        if v.index() >= self.nodes {
            return None;
        }
        let shard = &self.shards[self.map.owner[v.index()] as usize];
        Some(shard.neighbors_at(self.map.slot[v.index()] as usize))
    }

    /// The largest coreness of this epoch.
    pub fn max_coreness(&self) -> u32 {
        (self.shell_sizes.len() - 1) as u32
    }

    /// Union shell-size histogram (`max_coreness() + 1` entries).
    pub fn histogram(&self) -> &[usize] {
        &self.shell_sizes
    }

    /// Number of nodes with coreness at least `k`.
    pub fn kcore_size(&self, k: u32) -> usize {
        self.shell_sizes
            .iter()
            .skip(k as usize)
            .copied()
            .sum::<usize>()
    }

    /// The members of the union k-core in ascending global id order:
    /// one linear scan over the global id space, each node answered by
    /// its owning shard's chunks.
    pub fn kcore_members(&self, k: u32) -> Vec<NodeId> {
        (0..self.nodes as u32)
            .filter(|&u| self.coreness(NodeId(u)).expect("in range") >= k)
            .map(NodeId)
            .collect()
    }

    /// Extracts the union k-core subgraph with the compact-id mapping,
    /// identical to [`CoreSnapshot::kcore_subgraph`](crate::CoreSnapshot::kcore_subgraph)
    /// (both run the shared [`EpochView`](crate::EpochView)-generic
    /// extraction).
    pub fn kcore_subgraph(&self, k: u32) -> (Graph, Vec<NodeId>) {
        crate::view::kcore_subgraph_of(self, k)
    }

    /// The `n` nodes of largest coreness, ordered by descending coreness
    /// then ascending global id — same contract (and shared
    /// implementation) as the single-writer snapshot's `top_k`.
    pub fn top_k(&self, n: usize) -> Vec<(NodeId, u32)> {
        crate::view::top_k_of(self, n)
    }

    /// Coreness of every node in the union graph, materialized lazily on
    /// first use and cached for the snapshot's lifetime.
    pub fn values(&self) -> &[u32] {
        self.full_values.get_or_init(|| {
            (0..self.nodes as u32)
                .map(|u| self.coreness(NodeId(u)).expect("in range"))
                .collect()
        })
    }

    /// The union graph, materialized lazily on first use and cached for
    /// the snapshot's lifetime. Cross-shard edges appear once.
    pub fn graph(&self) -> &Graph {
        self.full_graph.get_or_init(|| {
            let mut edges: Vec<(u32, u32)> = Vec::new();
            for u in 0..self.nodes as u32 {
                for &v in self.neighbors(NodeId(u)).expect("in range") {
                    if u < v {
                        edges.push((u, v));
                    }
                }
            }
            Graph::from_edges(self.nodes, edges).expect("stitched adjacency is a valid graph")
        })
    }
}

/// Cloneable stitching reader handle over the sharded service: pins one
/// consistent vector of per-shard epochs per `snapshot()` call.
#[derive(Debug, Clone)]
pub struct ShardedHandle {
    cell: Arc<EpochCell<StitchedSnapshot>>,
}

impl ShardedHandle {
    /// The latest published stitched epoch. The returned `Arc` pins every
    /// shard's state for that epoch.
    pub fn snapshot(&self) -> Arc<StitchedSnapshot> {
        self.cell.load()
    }

    /// The latest published epoch number, without loading a snapshot.
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore_graph::generators::{gnp, path};
    use rand::prelude::*;

    fn random_batch(svc: &ShardedCoreService, n: u32, size: usize, rng: &mut StdRng) -> EdgeBatch {
        let mut b = EdgeBatch::new();
        let mut seen: Vec<(u32, u32)> = Vec::new();
        let mut tries = 0;
        while b.len() < size && tries < size * 40 {
            tries += 1;
            let x = rng.random_range(0..n);
            let y = rng.random_range(0..n);
            if x == y {
                continue;
            }
            let key = (x.min(y), x.max(y));
            if seen.contains(&key) {
                continue;
            }
            seen.push(key);
            if svc.has_edge(NodeId(key.0), NodeId(key.1)) {
                b.remove(NodeId(key.0), NodeId(key.1));
            } else {
                b.insert(NodeId(key.0), NodeId(key.1));
            }
        }
        b
    }

    #[test]
    fn stitched_epochs_match_union_ground_truth() {
        for shards in [1usize, 2, 4] {
            let g = gnp(240, 0.03, 11 + shards as u64);
            let mut svc = ShardedCoreService::new(&g, shards);
            let handle = svc.handle();
            assert_eq!(
                handle.snapshot().values(),
                batagelj_zaversnik(&g).as_slice()
            );
            let mut rng = StdRng::seed_from_u64(99 + shards as u64);
            for step in 1..=10u64 {
                let b = random_batch(&svc, 240, 10, &mut rng);
                let report = svc.apply_batch(&b).unwrap();
                assert_eq!(report.epoch, step);
                let snap = handle.snapshot();
                assert_eq!(snap.epoch(), step);
                assert_eq!(
                    snap.values(),
                    batagelj_zaversnik(snap.graph()).as_slice(),
                    "shards {shards}, step {step}: stitched epoch must equal \
                     fresh BZ on the union graph"
                );
                assert_eq!(snap.graph().edge_count(), snap.edge_count());
            }
        }
    }

    #[test]
    fn stitched_queries_agree_with_single_writer_service() {
        let g = gnp(200, 0.04, 23);
        let mut sharded = ShardedCoreService::new(&g, 3);
        let mut single = crate::CoreService::new(&g);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..6 {
            let b = random_batch(&sharded, 200, 8, &mut rng);
            sharded.apply_batch(&b).unwrap();
            single.apply_batch(&b).unwrap();
        }
        let s = sharded.handle().snapshot();
        let c = single.handle().snapshot();
        assert_eq!(s.values(), c.values());
        assert_eq!(s.histogram(), c.histogram());
        assert_eq!(s.max_coreness(), c.max_coreness());
        assert_eq!(s.edge_count(), c.edge_count());
        for k in 0..=s.max_coreness() + 1 {
            assert_eq!(s.kcore_members(k), c.kcore_members(k), "members k={k}");
            assert_eq!(s.kcore_size(k), c.kcore_size(k));
            let (ss, sb) = s.kcore_subgraph(k);
            let (cs, cb) = c.kcore_subgraph(k);
            assert_eq!(ss, cs, "subgraph k={k}");
            assert_eq!(sb, cb);
        }
        for n in [0usize, 1, 5, 50, 200] {
            assert_eq!(s.top_k(n), c.top_k(n), "top_k {n}");
        }
        for u in 0..200u32 {
            assert_eq!(s.coreness(NodeId(u)), c.coreness(NodeId(u)));
            assert_eq!(s.degree(NodeId(u)), c.degree(NodeId(u)));
        }
        assert_eq!(s.graph(), c.graph());
    }

    #[test]
    fn pinned_stitched_epochs_survive_further_churn() {
        let g = gnp(150, 0.04, 3);
        let mut svc = ShardedCoreService::with_assignment(&g, 2, &AssignmentPolicy::BfsBlocks);
        let handle = svc.handle();
        let mut pinned = vec![handle.snapshot()];
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..8 {
            let b = random_batch(&svc, 150, 6, &mut rng);
            svc.apply_batch(&b).unwrap();
            pinned.push(handle.snapshot());
        }
        for (i, snap) in pinned.iter().enumerate() {
            assert_eq!(snap.epoch(), i as u64);
            assert_eq!(
                snap.values(),
                batagelj_zaversnik(snap.graph()).as_slice(),
                "pinned epoch {i}"
            );
        }
    }

    #[test]
    fn failed_validation_publishes_nothing() {
        let g = path(6);
        let mut svc = ShardedCoreService::new(&g, 2);
        let handle = svc.handle();
        let mut b = EdgeBatch::new();
        b.remove(NodeId(0), NodeId(5)); // not an edge
        assert!(svc.apply_batch(&b).is_err());
        assert_eq!(svc.epoch(), 0);
        assert_eq!(handle.epoch(), 0);
        assert_eq!(handle.snapshot().graph(), &g);
    }

    #[test]
    fn cross_shard_cascades_converge() {
        // A path sharded modulo 2 makes *every* edge a border edge: any
        // repair must flow entirely through border exchange.
        let g = path(40);
        let mut svc = ShardedCoreService::new(&g, 2);
        let mut b = EdgeBatch::new();
        b.insert(NodeId(0), NodeId(39)); // close the cycle: all coreness 2
        let report = svc.apply_batch(&b).unwrap();
        assert!(report.rounds >= 1, "border exchange must run");
        let snap = svc.handle().snapshot();
        assert!(snap.values().iter().all(|&c| c == 2));
        // Cut it again: everyone drops back to 1, purely via borders.
        let mut b = EdgeBatch::new();
        b.remove(NodeId(20), NodeId(21));
        svc.apply_batch(&b).unwrap();
        let snap = svc.handle().snapshot();
        assert_eq!(snap.values(), batagelj_zaversnik(snap.graph()).as_slice());
    }
}
