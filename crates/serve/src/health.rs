//! Writer-health reporting for the serving layer.
//!
//! Readers are lock-free and keep answering from the last published
//! epoch no matter what happens to the writer — which means writer
//! death is otherwise *invisible* to them: queries succeed, the epoch
//! just silently stops advancing. The [`HealthReport`] published here
//! (and exposed over the wire `HEALTH` verb) makes that state
//! observable: a panicked writer poisons the report, and the sharded
//! service reports per-partition liveness, replica counts, and how many
//! validated batches a downed partition is lagging behind.

use std::sync::{Arc, Mutex, PoisonError};

/// Health of one shard partition of the sharded service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHealth {
    /// Partition index.
    pub shard: u32,
    /// Whether the partition currently has a live primary writer.
    pub primary_alive: bool,
    /// Standby replicas remaining for this partition.
    pub replicas: usize,
    /// Validated batches accepted into the log but not yet reflected in
    /// the published epoch because this partition is down. Zero for a
    /// healthy partition.
    pub epoch_lag: u64,
}

/// Cumulative border-exchange observability of the sharded writer:
/// round counts, per-round wall-time percentiles, and drain-worker
/// utilization. `None` for the single-writer service (it has no
/// exchange). Integer microseconds keep the report `Eq`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExchangeHealth {
    /// Exchange rounds executed across all published epochs.
    pub rounds: u64,
    /// Median round wall time, in whole microseconds.
    pub round_p50_us: u64,
    /// p99 round wall time, in whole microseconds.
    pub round_p99_us: u64,
    /// Drain busy time as a percentage (0–100) of dispatched
    /// worker-time.
    pub worker_busy_pct: u32,
}

impl ExchangeHealth {
    /// The wire `HEALTH` suffix:
    /// `exchange=rounds:<n>,p50us:<a>,p99us:<b>,util:<c>%`.
    pub fn summary(&self) -> String {
        format!(
            "exchange=rounds:{},p50us:{},p99us:{},util:{}%",
            self.rounds, self.round_p50_us, self.round_p99_us, self.worker_busy_pct
        )
    }
}

/// Point-in-time health of a serving backend, as published by the
/// writer and observed through `ServiceHandle::health` /
/// `ShardedHandle::health` or the wire `HEALTH` verb.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthReport {
    /// False once the owning writer has panicked (the epoch will never
    /// advance again).
    pub writer_alive: bool,
    /// The epoch the report describes.
    pub epoch: u64,
    /// Per-partition health; empty for the single-writer service.
    pub shards: Vec<ShardHealth>,
    /// Border-exchange counters (sharded service only).
    pub exchange: Option<ExchangeHealth>,
}

impl HealthReport {
    /// A fresh all-healthy report at `epoch` with `shards` partitions
    /// (`0` for the single-writer service).
    pub(crate) fn healthy(epoch: u64, shards: usize) -> Self {
        HealthReport {
            writer_alive: true,
            epoch,
            shards: (0..shards as u32)
                .map(|shard| ShardHealth {
                    shard,
                    primary_alive: true,
                    replicas: 0,
                    epoch_lag: 0,
                })
                .collect(),
            exchange: None,
        }
    }

    /// True when reads are served from a stale-but-consistent epoch:
    /// the writer is dead, or some partition has no live primary.
    pub fn is_degraded(&self) -> bool {
        !self.writer_alive || self.shards.iter().any(|s| !s.primary_alive)
    }

    /// The wire-protocol status payload (everything after `epoch=`):
    /// `status=healthy`, `status=writer-dead`, or
    /// `status=degraded down=<shard>:<lag>[,...]` naming every partition
    /// without a live primary and its epoch lag.
    pub fn status_line(&self) -> String {
        if !self.writer_alive {
            return "status=writer-dead".to_string();
        }
        let down: Vec<String> = self
            .shards
            .iter()
            .filter(|s| !s.primary_alive)
            .map(|s| format!("{}:{}", s.shard, s.epoch_lag))
            .collect();
        if down.is_empty() {
            "status=healthy".to_string()
        } else {
            format!("status=degraded down={}", down.join(","))
        }
    }
}

/// Shared health slot between a writer and its reader handles. A plain
/// mutex is fine here: health is read on demand (one wire verb, tests),
/// not on the query fast path.
#[derive(Debug)]
pub(crate) struct HealthCell {
    inner: Mutex<HealthReport>,
}

impl HealthCell {
    pub(crate) fn new(report: HealthReport) -> Arc<Self> {
        Arc::new(HealthCell {
            inner: Mutex::new(report),
        })
    }

    pub(crate) fn load(&self) -> HealthReport {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    pub(crate) fn store(&self, report: HealthReport) {
        *self.inner.lock().unwrap_or_else(PoisonError::into_inner) = report;
    }

    /// Marks the owning writer as dead; called from panic paths, so it
    /// must not itself panic on a poisoned lock.
    pub(crate) fn poison_writer(&self) {
        self.inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .writer_alive = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_lines_cover_all_states() {
        let mut r = HealthReport::healthy(3, 2);
        assert!(!r.is_degraded());
        assert_eq!(r.status_line(), "status=healthy");

        r.shards[1].primary_alive = false;
        r.shards[1].epoch_lag = 4;
        assert!(r.is_degraded());
        assert_eq!(r.status_line(), "status=degraded down=1:4");

        r.writer_alive = false;
        assert_eq!(r.status_line(), "status=writer-dead");
    }

    #[test]
    fn cell_poisoning_is_visible_to_loads() {
        let cell = HealthCell::new(HealthReport::healthy(0, 0));
        assert!(cell.load().writer_alive);
        cell.poison_writer();
        assert!(!cell.load().writer_alive);
        assert!(cell.load().is_degraded());
    }
}
