//! Concurrent core-number query service over the streaming engine — the
//! serving layer between "repairs fast" (`dkcore::stream`) and a system
//! that answers coreness queries for live traffic while the graph churns.
//!
//! # Architecture
//!
//! One **writer**, any number of **readers**:
//!
//! * [`CoreService`] owns the mutable [`StreamCore`](dkcore::stream::StreamCore)
//!   and is the single writer: every
//!   [`apply_batch`](CoreService::apply_batch) validates and applies an
//!   [`EdgeBatch`](dkcore::stream::EdgeBatch), repairs the decomposition,
//!   and *publishes* a fresh immutable [`CoreSnapshot`] as the next
//!   **epoch**.
//! * [`ServiceHandle`] is the cloneable reader handle: `snapshot()`
//!   returns an `Arc<CoreSnapshot>` of the latest published epoch.
//!   Publication is double-buffered — the writer builds the new snapshot
//!   off to the side, installs it into the *inactive* buffer, and flips
//!   an atomic index. A reader's critical section is a single `Arc`
//!   clone of the *active* buffer, so readers never wait on a repair in
//!   progress and the writer never waits for readers to finish a query:
//!   queries of arbitrary duration run against the pinned `Arc` entirely
//!   outside any lock.
//! * [`CoreSnapshot`] answers every query against one consistent epoch:
//!   point coreness, k-core membership, k-core subgraph extraction,
//!   shell-size histograms, and top-k max-coreness. A snapshot is
//!   immutable; holding one pins that epoch's entire state regardless of
//!   how far the writer has advanced. Snapshots live on **chunked
//!   copy-on-write storage**: publishing an epoch rebuilds only the
//!   chunks the batch touched and `Arc`-shares everything else with the
//!   predecessor, so publish cost is `O(|touched| + N/C)` instead of the
//!   former `O(N + M)` rebuild (invariants in the [`snapshot`-module
//!   docs](CoreSnapshot); ratio gated by `bench_pr5`).
//!
//! Consistency guarantee (checked end-to-end by `tests/serve_oracle.rs`):
//! every snapshot a reader can observe is the *exact* decomposition of
//! that epoch's graph — equal to a fresh Batagelj–Zaveršnik pass — never
//! a torn or partially-repaired state, because snapshots are built only
//! at batch boundaries where [`StreamCore`](dkcore::stream::StreamCore)
//! estimates are exact.
//!
//! # Scale-out: the sharded multi-writer service
//!
//! [`ShardedCoreService`] partitions the graph over `S` shard writers
//! (the one-to-many deployment's `Assignment` policies) and repairs
//! batches through **border-estimate exchange**: each shard re-converges
//! its own nodes from owned estimates plus a cache of its remote
//! neighbors' last announcements, rounds run shard-parallel until
//! quiescence, and the resulting [`StitchedSnapshot`] — a consistent
//! vector of per-shard epochs — is published in one atomic flip.
//! [`ShardedHandle`] answers the same query families by stitching across
//! shards; `tests/sharded_oracle.rs` pins every observable stitched
//! epoch to fresh Batagelj–Zaveršnik on the union graph at shard counts
//! {1, 2, 4}. See the [`sharded`] module docs for the protocol.
//!
//! A minimal std-only TCP front end ([`wire`]) exposes the same queries
//! as a line protocol plus a binary pipelined mode (`dkcore serve
//! [--shards S]` / `dkcore query` in the CLI), generic over either
//! backend through [`SnapshotSource`] / [`CoreQuery`] / [`CoreScan`];
//! the in-process handles are what benches and embedding applications
//! use directly. Bulk queries (`members`, `top_k`, subgraphs) answer in
//! **O(answer)** off incrementally-maintained per-shell membership
//! indexes — maintained through the same per-batch coreness delta that
//! drives incremental publishing, gated by `bench_pr7`.
//!
//! # Fault tolerance
//!
//! The sharded service is built to keep answering — exactly — through
//! writer failures. Each partition can run standby [`sharded::Replica`
//! writers](sharded#failure-model) (configured via [`ShardedConfig`]):
//! when a primary dies (panic, injected kill, or missed heartbeats) the
//! in-flight batch rolls back to the published epoch, a replica replays
//! the validated batch log up to the published per-shard epoch vector,
//! and the batch is re-attempted. The border-estimate exchange runs
//! over a fault-injectable transport ([`FaultPlan`]: seeded
//! deterministic drop / duplicate / delay / kill / stall schedules)
//! with retransmission and exponential backoff. When a partition has no
//! writer left the service **degrades instead of blocking**: batches
//! are validated and deferred, readers keep the last consistent
//! stitched epoch, and the condition is observable through
//! [`HealthReport`] (handles' `health()`, the wire `HEALTH` verb).
//! `tests/chaos_oracle.rs` asserts that under every seeded fault plan
//! all observable epochs still equal fresh Batagelj–Zaveršnik on the
//! union graph. The full failure model — and why seed messages must be
//! reliable while round messages may be lossy — is documented in the
//! [`sharded`] and [`fault`] module docs.
//!
//! # Observability
//!
//! Every layer of the stack records into one shared
//! [`Telemetry`](dkcore_metrics::Telemetry) bundle — a lock-free
//! metrics [`Registry`](dkcore_metrics::Registry) plus a bounded
//! [`FlightRecorder`](dkcore_metrics::FlightRecorder) event ring —
//! threaded writer-side at construction
//! ([`CoreService::with_telemetry`], [`ShardedConfig`]`::telemetry`)
//! and readable from either handle via `telemetry()`:
//!
//! * **Publish path** — `serve.publish.*` batch counters, epoch gauge,
//!   and publish/repair latency histograms, with the repair further
//!   split into removal / region-descent / insertion / export phase
//!   histograms (`serve.repair.*`) from the engine's opt-in
//!   `PhaseTimes`.
//! * **Exchange and failover** — `serve.exchange.*` round / message /
//!   resend counters and per-round latency, `serve.pool.*` worker-pool
//!   dispatch and park/busy time, `serve.failover.count`, and
//!   `serve.deferred.batches`. [`ExchangeHealth`] is a *view over the
//!   registry*, so `HEALTH` and `METRICS` can never disagree.
//! * **Wire front end** — per-verb request counters and latency
//!   histograms (`serve.wire.requests{verb=…}`,
//!   `serve.wire.latency_us{verb=…}`) plus response-cache
//!   hit / miss / eviction counters (`serve.wire.cache.*`).
//! * **Events** — structured records (batch-applied, epoch-published,
//!   exchange-round, retransmit, failover, promotion, degraded,
//!   revive, cache-evicted, deferred) with gapless monotonic sequence
//!   numbers, drainable without stopping writers and replayable by
//!   cursor.
//!
//! Both are exported over the wire in text and binary modes: `METRICS`
//! renders the registry in Prometheus exposition format, and `EVENTS
//! [SINCE s] [LIMIT n]` pages the flight recorder (`dkcore query
//! metrics` / `dkcore query events` in the CLI). Instrumentation is
//! branch-gated on a disabled bundle and `bench_pr9` holds the enabled
//! cost to ≤2% of the uninstrumented writer with bit-identical
//! results; grammar and ordering are pinned by the wire-module tests
//! and the sharded flight-recorder failover-chain test.
//!
//! # Example
//!
//! ```
//! use dkcore_serve::CoreService;
//! use dkcore::stream::EdgeBatch;
//! use dkcore_graph::{generators::path, NodeId};
//!
//! let mut svc = CoreService::new(&path(6));
//! let handle = svc.handle();
//! let before = handle.snapshot(); // pin epoch 0
//!
//! let mut batch = EdgeBatch::new();
//! batch.insert(NodeId(0), NodeId(5)); // close the cycle
//! svc.apply_batch(&batch).unwrap();
//!
//! let after = handle.snapshot();
//! assert_eq!(before.epoch(), 0);
//! assert_eq!(after.epoch(), 1);
//! assert_eq!(before.coreness(NodeId(0)), Some(1)); // pinned epoch is immutable
//! assert_eq!(after.coreness(NodeId(0)), Some(2));
//! assert_eq!(after.kcore_members(2).len(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
mod health;
mod index;
pub mod machine;
mod service;
pub mod sharded;
mod snapshot;
mod view;
pub mod wire;

pub use fault::{FaultPlan, KillSpec, StallSpec};
pub use health::{ExchangeHealth, HealthReport, ShardHealth};
pub use machine::{PublishAction, PublishModel, PublishScenario, PublishState};
pub use service::{CoreService, PublishReport, ServiceHandle};
pub use sharded::{
    ExchangeMode, ShardedConfig, ShardedCoreService, ShardedHandle, ShardedPublishReport,
    StitchedSnapshot,
};
pub use snapshot::CoreSnapshot;
// Re-exporting the deprecated trait keeps pre-PR-7 imports compiling;
// the deprecation warning still fires at the downstream use site.
#[allow(deprecated)]
pub use view::EpochView;
#[doc(hidden)]
pub use view::{kcore_members_scan, kcore_subgraph_scan, top_k_scan};
pub use view::{CoreQuery, CoreScan, SnapshotSource};
pub use wire::{
    serve, BinRequest, BinResponse, BinaryWireClient, CacheStats, RetryPolicy, WireClient,
    WireServer,
};
