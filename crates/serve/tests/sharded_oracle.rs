//! Sharded-serve oracle: every stitched epoch a reader can observe must
//! be *exactly* the Batagelj–Zaveršnik decomposition of the union graph
//! at that epoch — across shard counts {1, 2, 4}, assignment policies,
//! churn workloads, and concurrent readers. The per-shard epochs inside
//! one stitched snapshot must always belong to the same union batch
//! boundary (no mixed-epoch stitching).
//!
//! The CI determinism matrix re-runs this suite with
//! `DKCORE_TEST_THREADS` forcing the reader-thread count and
//! `DKCORE_TEST_SEED` re-randomizing the churn streams;
//! `DKCORE_TEST_SHARDS` can pin a single shard count (default: all of
//! {1, 2, 4}).

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dkcore::one_to_many::AssignmentPolicy;
use dkcore::seq::batagelj_zaversnik;
use dkcore_data::{churn_stream, ChurnWorkload};
use dkcore_graph::generators::{gnp, worst_case};
use dkcore_graph::NodeId;
use dkcore_serve::{ShardedCoreService, ShardedHandle, StitchedSnapshot};

/// Reader-thread count: `DKCORE_TEST_THREADS` override, default 3.
fn reader_threads() -> usize {
    std::env::var("DKCORE_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(3)
}

/// Shard counts under test: `DKCORE_TEST_SHARDS` pins one, default all.
fn shard_counts() -> Vec<usize> {
    std::env::var("DKCORE_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or_else(|| vec![1, 2, 4], |s| vec![s])
}

/// Offset mixed into every stream seed, from `DKCORE_TEST_SEED`.
fn seed_offset() -> u64 {
    std::env::var("DKCORE_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Exhaustive check of one observed stitched epoch against ground truth
/// recomputed from its own pinned union graph.
fn verify_stitched(snap: &StitchedSnapshot) {
    let truth = batagelj_zaversnik(snap.graph());
    assert_eq!(
        snap.values(),
        truth.as_slice(),
        "epoch {}: stitched coreness must equal fresh BZ on the union \
         graph (torn or mixed-epoch stitching observed)",
        snap.epoch()
    );
    assert_eq!(snap.graph().edge_count(), snap.edge_count());
    let hist = snap.histogram();
    assert_eq!(hist.iter().sum::<usize>(), snap.node_count());
    let kmax = snap.max_coreness();
    assert!(hist[kmax as usize] > 0, "top shell non-empty");
    for u in snap.graph().nodes() {
        assert_eq!(snap.degree(u), Some(snap.graph().degree(u)));
    }
    for k in [0, 1, kmax, kmax + 1] {
        let members = snap.kcore_members(k);
        assert_eq!(members.len(), snap.kcore_size(k), "epoch {}", snap.epoch());
        assert!(members
            .iter()
            .all(|&v| snap.coreness(v).expect("member in range") >= k));
    }
    // Paginated pages of the cross-shard merge concatenate to exactly
    // the unpaginated answer — the wire pagination contract holds for
    // stitched views too.
    for k in [0, 1, kmax] {
        let full = snap.kcore_members(k);
        let mut paged = Vec::new();
        let mut offset = 0;
        loop {
            let chunk: Vec<_> = snap.kcore_members_page(k, offset, 7).collect();
            let got = chunk.len();
            paged.extend(chunk);
            offset += got;
            if got < 7 {
                break;
            }
        }
        assert_eq!(paged, full, "epoch {} k={k}", snap.epoch());
    }
    let windowed: Vec<_> = snap.top_page(3, 4).collect();
    assert_eq!(
        windowed,
        snap.top_k(7).into_iter().skip(3).collect::<Vec<_>>(),
        "epoch {}",
        snap.epoch()
    );
    let (sub, _) = snap.kcore_subgraph(kmax);
    assert!(sub.nodes().all(|u| sub.degree(u) >= kmax));
    let top = snap.top_k(8);
    for w in top.windows(2) {
        assert!(w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
    }
    for &(v, c) in &top {
        assert_eq!(snap.coreness(v), Some(c));
    }
}

/// Drives one graph + workload through the sharded service while reader
/// threads continuously observe and verify stitched snapshots.
#[allow(clippy::too_many_arguments)]
fn run_oracle(
    name: &str,
    graph: &dkcore_graph::Graph,
    shards: usize,
    policy: &AssignmentPolicy,
    workload: ChurnWorkload,
    batches: usize,
    batch_size: usize,
    seed: u64,
) {
    let stream = churn_stream(graph, workload, batches, batch_size, seed);
    let mut svc = ShardedCoreService::with_assignment(graph, shards, policy);
    let handle = svc.handle();
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..reader_threads())
        .map(|_| {
            let handle: ShardedHandle = handle.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut verified: Vec<u64> = Vec::new();
                loop {
                    let snap = handle.snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epochs must be monotone per reader: {} then {}",
                        last_epoch,
                        snap.epoch()
                    );
                    if snap.epoch() > last_epoch || verified.is_empty() {
                        verify_stitched(&snap);
                        verified.push(snap.epoch());
                        last_epoch = snap.epoch();
                    }
                    if done.load(Ordering::Acquire) && handle.epoch() == last_epoch {
                        return verified;
                    }
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    for (i, batch) in stream.iter().enumerate() {
        svc.apply_batch(batch)
            .unwrap_or_else(|e| panic!("{name}: batch {i} invalid: {e}"));
    }
    done.store(true, Ordering::Release);

    let mut distinct: HashSet<u64> = HashSet::new();
    for r in readers {
        let verified = r.join().expect("reader panicked (oracle violation)");
        assert!(!verified.is_empty(), "{name}: reader observed no epoch");
        distinct.extend(verified);
    }
    let final_snap = handle.snapshot();
    assert_eq!(final_snap.epoch(), stream.len() as u64);
    assert_eq!(final_snap.shard_count(), shards);
    verify_stitched(&final_snap);
}

#[test]
fn stitched_epochs_match_union_bz_under_mixed_churn() {
    let seed = 0x5AD + seed_offset();
    for shards in shard_counts() {
        let g = gnp(220, 0.035, seed + shards as u64);
        run_oracle(
            &format!("mixed/gnp220/s{shards}"),
            &g,
            shards,
            &AssignmentPolicy::Modulo,
            ChurnWorkload::Mixed { insert_pct: 55 },
            25,
            8,
            seed + shards as u64,
        );
    }
}

#[test]
fn stitched_epochs_match_union_bz_under_sliding_window() {
    let seed = 0x51DE + seed_offset();
    for shards in shard_counts() {
        let g = gnp(180, 0.045, seed + shards as u64);
        run_oracle(
            &format!("sliding/gnp180/s{shards}"),
            &g,
            shards,
            &AssignmentPolicy::BfsBlocks,
            ChurnWorkload::SlidingWindow { window: 24 },
            20,
            8,
            seed + shards as u64,
        );
    }
}

#[test]
fn stitched_epochs_match_union_bz_under_adversarial_churn() {
    // §4.2 worst-case chain toggles: repairs cascade across the whole
    // graph and — under modulo assignment — across every shard boundary,
    // the hardest case for border-estimate exchange.
    let seed = 7 + seed_offset();
    for shards in shard_counts() {
        let g = worst_case(60);
        run_oracle(
            &format!("adversarial/worst60/s{shards}"),
            &g,
            shards,
            &AssignmentPolicy::Modulo,
            ChurnWorkload::Adversarial,
            15,
            5,
            seed + shards as u64,
        );
    }
}

#[test]
fn pinned_stitched_epochs_stay_valid_while_writer_races_ahead() {
    let seed = 0xAB + seed_offset();
    for shards in shard_counts() {
        let g = gnp(160, 0.05, seed + shards as u64);
        let stream = churn_stream(
            &g,
            ChurnWorkload::Mixed { insert_pct: 50 },
            18,
            10,
            seed + shards as u64,
        );
        let mut svc = ShardedCoreService::new(&g, shards);
        let handle = svc.handle();
        let mut pinned = vec![handle.snapshot()];
        for b in &stream {
            svc.apply_batch(b).unwrap();
            pinned.push(handle.snapshot());
        }
        for snap in &pinned {
            verify_stitched(snap);
        }
        assert_eq!(pinned.last().unwrap().epoch(), stream.len() as u64);
        // A pinned early epoch still answers point queries from its own
        // era even after heavy further churn.
        let first = &pinned[0];
        let bz0 = batagelj_zaversnik(&g);
        for u in 0..g.node_count() as u32 {
            assert_eq!(first.coreness(NodeId(u)), Some(bz0[u as usize]));
        }
    }
}
