//! Bit-identity oracle for the persistent exchange pool: the same churn
//! stream driven through a [`ExchangeMode::Pooled`] service and a
//! [`ExchangeMode::Spawn`] (spawn-per-round, the pre-pool baseline)
//! service must publish identical epochs, identical per-batch
//! convergence counters (rounds / messages / changed), and identical
//! stitched coreness — the pool is an execution strategy, never an
//! algorithm change. A pinned pool must in turn be bit-identical to an
//! unpinned one.
//!
//! The CI determinism matrix re-runs this suite with
//! `DKCORE_TEST_SEED` shifting the churn streams and
//! `DKCORE_TEST_SHARDS` pinning one shard count (default: all of
//! {1, 2, 4, 8}).

use dkcore::one_to_many::AssignmentPolicy;
use dkcore::seq::batagelj_zaversnik;
use dkcore_data::{churn_stream, ChurnWorkload};
use dkcore_graph::generators::{gnp, worst_case};
use dkcore_graph::Graph;
use dkcore_serve::{ExchangeMode, ShardedConfig, ShardedCoreService, ShardedPublishReport};

/// Shard counts under test: `DKCORE_TEST_SHARDS` pins one, default all.
fn shard_counts() -> Vec<usize> {
    std::env::var("DKCORE_TEST_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or_else(|| vec![1, 2, 4, 8], |s| vec![s])
}

/// Offset mixed into every stream seed, from `DKCORE_TEST_SEED`.
fn seed_offset() -> u64 {
    std::env::var("DKCORE_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// The deterministic slice of a publish report — everything except the
/// wall-clock timings, which legitimately differ between strategies.
fn counters(r: &ShardedPublishReport) -> (u64, u32, u64, usize, bool, u32, u64) {
    (
        r.epoch,
        r.rounds,
        r.messages,
        r.changed,
        r.deferred,
        r.failovers,
        r.replayed,
    )
}

fn config(exchange: ExchangeMode, pin: bool) -> ShardedConfig {
    ShardedConfig {
        policy: AssignmentPolicy::Modulo,
        exchange,
        pin,
        ..ShardedConfig::default()
    }
}

/// Drives the same stream through every configuration in `configs`
/// lockstep, asserting batch-by-batch counter identity against the
/// first configuration and final-snapshot identity against fresh BZ.
// One parameter per experiment axis, same shape as the sharded oracle.
#[allow(clippy::too_many_arguments)]
fn run_lockstep(
    name: &str,
    g: &Graph,
    shards: usize,
    configs: &[(&str, ShardedConfig)],
    workload: ChurnWorkload,
    batches: usize,
    batch_size: usize,
    seed: u64,
) {
    let stream = churn_stream(g, workload, batches, batch_size, seed);
    let mut services: Vec<_> = configs
        .iter()
        .map(|(_, c)| ShardedCoreService::with_config(g, shards, c.clone()))
        .collect();
    for (i, batch) in stream.iter().enumerate() {
        let mut base = None;
        for (svc, (label, _)) in services.iter_mut().zip(configs) {
            let report = svc
                .apply_batch(batch)
                .unwrap_or_else(|e| panic!("{name}/{label}: batch {i} invalid: {e}"));
            let got = counters(&report);
            match &base {
                None => base = Some(got),
                Some(want) => assert_eq!(
                    &got, want,
                    "{name}/{label}: batch {i} counters diverged from {}",
                    configs[0].0
                ),
            }
        }
    }
    let reference = services[0].handle().snapshot();
    let truth = batagelj_zaversnik(reference.graph());
    for (svc, (label, _)) in services.iter().zip(configs) {
        let snap = svc.handle().snapshot();
        assert_eq!(snap.epoch(), stream.len() as u64, "{name}/{label}");
        assert_eq!(
            snap.values(),
            reference.values(),
            "{name}/{label}: stitched coreness diverged from {}",
            configs[0].0
        );
        assert_eq!(
            snap.values(),
            truth.as_slice(),
            "{name}/{label}: stitched coreness diverged from fresh BZ"
        );
    }
}

#[test]
fn pooled_exchange_is_bit_identical_to_spawn_per_round() {
    let seed = 0xF001 + seed_offset();
    for shards in shard_counts() {
        let g = gnp(200, 0.04, seed + shards as u64);
        run_lockstep(
            &format!("mixed/gnp200/s{shards}"),
            &g,
            shards,
            &[
                ("pooled", config(ExchangeMode::Pooled, false)),
                ("spawn", config(ExchangeMode::Spawn, false)),
            ],
            ChurnWorkload::Mixed { insert_pct: 55 },
            20,
            8,
            seed + shards as u64,
        );
    }
}

#[test]
fn pinned_pool_is_bit_identical_to_unpinned_pool_and_spawn() {
    let seed = 0x9188 + seed_offset();
    for shards in shard_counts() {
        let g = gnp(150, 0.05, seed + shards as u64);
        run_lockstep(
            &format!("pinned/gnp150/s{shards}"),
            &g,
            shards,
            &[
                ("pooled", config(ExchangeMode::Pooled, false)),
                ("pinned", config(ExchangeMode::Pooled, true)),
                ("spawn", config(ExchangeMode::Spawn, false)),
            ],
            ChurnWorkload::Mixed { insert_pct: 50 },
            15,
            10,
            seed + shards as u64,
        );
    }
}

#[test]
fn pooled_exchange_matches_spawn_under_adversarial_churn() {
    // §4.2 chain toggles cascade repairs across every shard boundary —
    // the maximum-round case where a pool scheduling bug (a stale
    // barrier, a worker reading a previous round's staging) would show
    // up as a counter or coreness divergence.
    let seed = 3 + seed_offset();
    for shards in shard_counts() {
        let g = worst_case(56);
        run_lockstep(
            &format!("adversarial/worst56/s{shards}"),
            &g,
            shards,
            &[
                ("pooled", config(ExchangeMode::Pooled, false)),
                ("spawn", config(ExchangeMode::Spawn, false)),
            ],
            ChurnWorkload::Adversarial,
            12,
            5,
            seed + shards as u64,
        );
    }
}
