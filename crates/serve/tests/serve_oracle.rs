//! Snapshot-consistency oracle: under concurrent churn and queries,
//! every reader-observed epoch must be *exactly* the decomposition of
//! that epoch's graph — readers never see a torn or partially-repaired
//! state, epochs only move forward, and every query family agrees with
//! ground truth recomputed from the snapshot's own graph.
//!
//! The CI determinism matrix re-runs this suite with
//! `DKCORE_TEST_THREADS` forcing the reader-thread count to 1, 2 and 8
//! and `DKCORE_TEST_SEED` re-randomizing the churn streams.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dkcore::seq::batagelj_zaversnik;
use dkcore_data::{churn_stream, ChurnWorkload};
use dkcore_graph::generators::{gnp, worst_case};
use dkcore_serve::{CoreService, CoreSnapshot, ServiceHandle};

/// Reader-thread count: `DKCORE_TEST_THREADS` override, default 4.
fn reader_threads() -> usize {
    std::env::var("DKCORE_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4)
}

/// Offset mixed into every stream seed, from `DKCORE_TEST_SEED` (the CI
/// determinism matrix varies it).
fn seed_offset() -> u64 {
    std::env::var("DKCORE_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Exhaustive consistency check of one observed snapshot against ground
/// truth recomputed from the snapshot's own pinned graph.
fn verify_snapshot(snap: &CoreSnapshot) {
    let truth = batagelj_zaversnik(snap.graph());
    assert_eq!(
        snap.values(),
        truth.as_slice(),
        "epoch {}: published coreness must equal a fresh BZ pass on the \
         epoch's graph (torn state observed)",
        snap.epoch()
    );
    // Degrees match the pinned graph.
    for u in snap.graph().nodes() {
        assert_eq!(snap.degree(u), Some(snap.graph().degree(u)));
    }
    // Histogram totals and k-core sizes are internally consistent.
    let hist = snap.histogram();
    assert_eq!(hist.iter().sum::<usize>(), snap.node_count());
    let kmax = snap.max_coreness();
    assert!(hist[kmax as usize] > 0);
    for k in [0, 1, kmax, kmax + 1] {
        let members = snap.kcore_members(k);
        assert_eq!(members.len(), snap.kcore_size(k), "epoch {}", snap.epoch());
        assert!(members
            .iter()
            .all(|&v| snap.coreness(v).expect("member in range") >= k));
    }
    // Paginated MEMBERS pages concatenate to exactly the unpaginated
    // answer at every observed epoch — the wire pagination contract.
    for k in [0, 1, kmax] {
        let full = snap.kcore_members(k);
        for page in [3usize, 64] {
            let mut paged = Vec::new();
            let mut offset = 0;
            loop {
                let chunk: Vec<_> = snap.kcore_members_page(k, offset, page).collect();
                let got = chunk.len();
                paged.extend(chunk);
                offset += got;
                if got < page {
                    break;
                }
            }
            assert_eq!(paged, full, "epoch {} k={k} page={page}", snap.epoch());
        }
    }
    // top_page is a windowed view of the top_k sequence.
    let full_top = snap.top_k(16);
    let windowed: Vec<_> = snap.top_page(5, 6).collect();
    assert_eq!(
        windowed,
        full_top.iter().copied().skip(5).take(6).collect::<Vec<_>>(),
        "epoch {}",
        snap.epoch()
    );
    // The max-core subgraph has min internal degree ≥ kmax.
    let (sub, _) = snap.kcore_subgraph(kmax);
    assert!(sub.nodes().all(|u| sub.degree(u) >= kmax));
    // Top-k agrees with the coreness values.
    let top = snap.top_k(8);
    for w in top.windows(2) {
        assert!(w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0));
    }
    for &(v, c) in &top {
        assert_eq!(snap.coreness(v), Some(c));
    }
    if let Some(&(_, weakest)) = top.last() {
        let in_top: HashSet<u32> = top.iter().map(|&(v, _)| v.0).collect();
        for (u, &c) in snap.values().iter().enumerate() {
            assert!(in_top.contains(&(u as u32)) || c <= weakest);
        }
    }
}

/// Drives one graph + workload through the service while `readers`
/// threads continuously observe and verify snapshots. Returns the number
/// of distinct epochs the readers verified.
fn run_oracle(
    name: &str,
    graph: &dkcore_graph::Graph,
    workload: ChurnWorkload,
    batches: usize,
    batch_size: usize,
    seed: u64,
) -> usize {
    let stream = churn_stream(graph, workload, batches, batch_size, seed);
    let mut svc = CoreService::new(graph);
    let handle = svc.handle();
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..reader_threads())
        .map(|_| {
            let handle: ServiceHandle = handle.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut verified: Vec<u64> = Vec::new();
                loop {
                    let snap = handle.snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epochs must be monotone per reader: {} then {}",
                        last_epoch,
                        snap.epoch()
                    );
                    if snap.epoch() > last_epoch || verified.is_empty() {
                        verify_snapshot(&snap);
                        verified.push(snap.epoch());
                        last_epoch = snap.epoch();
                    }
                    if done.load(Ordering::Acquire) && handle.epoch() == last_epoch {
                        return verified;
                    }
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    for (i, batch) in stream.iter().enumerate() {
        svc.apply_batch(batch)
            .unwrap_or_else(|e| panic!("{name}: batch {i} invalid: {e}"));
    }
    done.store(true, Ordering::Release);

    let mut distinct: HashSet<u64> = HashSet::new();
    for r in readers {
        let verified = r.join().expect("reader panicked (oracle violation)");
        assert!(!verified.is_empty(), "{name}: reader observed no epoch");
        distinct.extend(verified);
    }
    // The writer-side final epoch is also exactly verifiable.
    let final_snap = handle.snapshot();
    assert_eq!(final_snap.epoch(), stream.len() as u64);
    verify_snapshot(&final_snap);
    distinct.len()
}

#[test]
fn concurrent_readers_never_observe_torn_state_mixed_churn() {
    let seed = 0xC0DE + seed_offset();
    let g = gnp(300, 0.03, seed);
    let epochs = run_oracle(
        "mixed/gnp300",
        &g,
        ChurnWorkload::Mixed { insert_pct: 55 },
        40,
        8,
        seed,
    );
    assert!(epochs >= 2, "readers verified {epochs} distinct epochs");
}

#[test]
fn concurrent_readers_never_observe_torn_state_sliding_window() {
    let seed = 0x51DE + seed_offset();
    let g = gnp(250, 0.04, seed);
    run_oracle(
        "sliding/gnp250",
        &g,
        ChurnWorkload::SlidingWindow { window: 32 },
        30,
        10,
        seed,
    );
}

#[test]
fn concurrent_readers_never_observe_torn_state_adversarial() {
    // §4.2 worst-case family: chain-edge toggles whose repairs cascade
    // across the whole graph — the hardest case for snapshot isolation
    // because nearly every publish changes nearly every value.
    let g = worst_case(80);
    run_oracle(
        "adversarial/worst80",
        &g,
        ChurnWorkload::Adversarial,
        20,
        6,
        7 + seed_offset(),
    );
}

#[test]
fn snapshot_after_apply_batch_always_sees_the_new_epoch() {
    // Publication-ordering property: once `apply_batch` has returned in
    // the writer, *any* subsequently started `ServiceHandle::snapshot()`
    // — from any reader thread — must observe that epoch or a later one.
    // The synchronization edge under test is the atomic slot flip of the
    // epoch cell: the writer's `Release` store of the published epoch
    // must happen-after the snapshot installation, and a reader's
    // `Acquire` load must see a fully published snapshot.
    //
    // Randomized over batches and re-run by the CI determinism matrix at
    // 1/2/8 reader threads (`DKCORE_TEST_THREADS`) × seeds
    // (`DKCORE_TEST_SEED`).
    use std::sync::atomic::AtomicU64;

    let seed = 0xF11 + seed_offset();
    let g = gnp(250, 0.035, seed);
    let stream = churn_stream(&g, ChurnWorkload::Mixed { insert_pct: 55 }, 60, 6, seed);
    let mut svc = CoreService::new(&g);
    let handle = svc.handle();
    // The writer's side channel: the last epoch whose `apply_batch` call
    // has *returned*. `Release`/`Acquire` pairs give readers a
    // happens-after edge to the publish, so any lag they then observe in
    // `snapshot()` would be a real publication-ordering bug.
    let published = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..reader_threads())
        .map(|_| {
            let handle: ServiceHandle = handle.clone();
            let published = published.clone();
            let done = done.clone();
            std::thread::spawn(move || {
                let mut observations = 0u64;
                while !done.load(Ordering::Acquire) {
                    let floor = published.load(Ordering::Acquire);
                    let snap = handle.snapshot();
                    assert!(
                        snap.epoch() >= floor,
                        "snapshot observed epoch {} after epoch {floor} was \
                         already published (writer→reader ordering violated)",
                        snap.epoch()
                    );
                    // The cheap epoch getter must obey the same ordering.
                    let floor = published.load(Ordering::Acquire);
                    assert!(handle.epoch() >= floor);
                    observations += 1;
                }
                observations
            })
        })
        .collect();

    for batch in &stream {
        let report = svc.apply_batch(batch).unwrap();
        published.store(report.epoch, Ordering::Release);
    }
    done.store(true, Ordering::Release);
    for r in readers {
        let observations = r.join().expect("reader panicked (ordering violation)");
        assert!(observations > 0, "reader made no observations");
    }
    assert_eq!(handle.epoch(), stream.len() as u64);
}

#[test]
fn pinned_epochs_stay_valid_while_writer_races_ahead() {
    // A slow reader pins early snapshots; after heavy further churn all
    // pinned epochs still verify against their own graphs.
    let seed = 0xAB + seed_offset();
    let g = gnp(200, 0.05, seed);
    let stream = churn_stream(&g, ChurnWorkload::Mixed { insert_pct: 50 }, 25, 12, seed);
    let mut svc = CoreService::new(&g);
    let handle = svc.handle();
    let mut pinned = vec![handle.snapshot()];
    for b in &stream {
        svc.apply_batch(b).unwrap();
        pinned.push(handle.snapshot());
    }
    for snap in &pinned {
        verify_snapshot(snap);
    }
    assert_eq!(pinned.last().unwrap().epoch(), stream.len() as u64);
}
