//! Chaos oracle for the fault-tolerant sharded serve stack: under every
//! seeded fault plan — primary kills (with and without standbys), up to
//! 20% border-message drops, duplicate storms, delay spikes, and shard
//! stalls — every stitched epoch a reader can observe must still be
//! *exactly* the Batagelj–Zaveršnik decomposition of the union graph at
//! that epoch, epochs must stay monotone per reader, and a killed
//! primary's partition must recover within a bounded number of batches
//! (same-batch for a standby takeover, one `revive_shard` call after
//! replica exhaustion).
//!
//! The CI chaos job re-runs this suite across a seed × plan matrix:
//! `DKCORE_TEST_SEED` offsets every stream seed and fault seed, and
//! `DKCORE_FAULT_PLAN` pins a single message-fault plan (default: all
//! built-in plans). `DKCORE_TEST_THREADS` forces the reader count for
//! the failover publication-ordering property (default: 1, 2 and 8).

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use dkcore::seq::batagelj_zaversnik;
use dkcore_data::{churn_stream, ChurnWorkload};
use dkcore_graph::generators::gnp;
use dkcore_serve::{FaultPlan, ShardedConfig, ShardedCoreService, ShardedHandle, StitchedSnapshot};

/// Offset mixed into every stream seed and fault seed, from
/// `DKCORE_TEST_SEED`.
fn seed_offset() -> u64 {
    std::env::var("DKCORE_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Reader-thread counts for the failover publication-ordering property:
/// `DKCORE_TEST_THREADS` pins one, default {1, 2, 8}.
fn reader_counts() -> Vec<usize> {
    std::env::var("DKCORE_TEST_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .map_or_else(|| vec![1, 2, 8], |t| vec![t])
}

/// Message-fault plans under test: `DKCORE_FAULT_PLAN` pins one,
/// default all. Seeds inside the spec are offset by `DKCORE_TEST_SEED`.
fn message_plans() -> Vec<String> {
    if let Ok(plan) = std::env::var("DKCORE_FAULT_PLAN") {
        return vec![plan];
    }
    let s = seed_offset();
    vec![
        format!("seed={},drop=20", 11 + s),
        format!("seed={},drop=10,dup=10,delay=10:4", 12 + s),
        format!("seed={},delay=30:5", 13 + s),
        format!("seed={},drop=15,stall=1@3:2", 14 + s),
    ]
}

fn config(replicas: usize, plan: &str) -> ShardedConfig {
    ShardedConfig {
        replicas,
        fault_plan: FaultPlan::parse(plan).expect("oracle plan parses"),
        ..ShardedConfig::default()
    }
}

/// One observed stitched epoch against ground truth recomputed from its
/// own pinned union graph — the "never torn, never stale-mixed" check.
fn verify_stitched(snap: &StitchedSnapshot, context: &str) {
    let truth = batagelj_zaversnik(snap.graph());
    assert_eq!(
        snap.values(),
        truth.as_slice(),
        "{context}: epoch {}: stitched coreness must equal fresh BZ on \
         the union graph (torn or mixed-epoch stitching observed)",
        snap.epoch()
    );
    assert_eq!(snap.graph().edge_count(), snap.edge_count());
    assert_eq!(
        snap.histogram().iter().sum::<usize>(),
        snap.node_count(),
        "{context}"
    );
}

/// Drives `batches` churn batches through `svc` while reader threads
/// continuously observe and verify stitched snapshots; `between` runs
/// after each publish (for mid-stream kills/revives) and returns extra
/// epochs it published itself. Returns the distinct epochs verified.
fn run_chaos(
    context: &str,
    svc: &mut ShardedCoreService,
    graph: &dkcore_graph::Graph,
    readers: usize,
    batches: usize,
    seed: u64,
    mut between: impl FnMut(&mut ShardedCoreService, u64),
) -> HashSet<u64> {
    let stream = churn_stream(
        graph,
        ChurnWorkload::Mixed { insert_pct: 55 },
        batches,
        8,
        seed,
    );
    let handle = svc.handle();
    let done = Arc::new(AtomicBool::new(false));
    let threads: Vec<_> = (0..readers)
        .map(|_| {
            let handle: ShardedHandle = handle.clone();
            let done = done.clone();
            let context = context.to_string();
            std::thread::spawn(move || {
                let mut last_epoch = 0u64;
                let mut verified: Vec<u64> = Vec::new();
                loop {
                    let snap = handle.snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "{context}: epochs must be monotone per reader: \
                         {last_epoch} then {}",
                        snap.epoch()
                    );
                    if snap.epoch() > last_epoch || verified.is_empty() {
                        verify_stitched(&snap, &context);
                        verified.push(snap.epoch());
                        last_epoch = snap.epoch();
                    }
                    if done.load(Ordering::Acquire) && handle.epoch() == last_epoch {
                        return verified;
                    }
                    std::thread::yield_now();
                }
            })
        })
        .collect();

    for (i, batch) in stream.iter().enumerate() {
        svc.apply_batch(batch)
            .unwrap_or_else(|e| panic!("{context}: batch {i} invalid: {e}"));
        between(svc, i as u64 + 1);
    }
    done.store(true, Ordering::Release);

    let mut distinct: HashSet<u64> = HashSet::new();
    for t in threads {
        let verified = t.join().expect("reader panicked (oracle violation)");
        assert!(!verified.is_empty(), "{context}: reader observed no epoch");
        distinct.extend(verified);
    }
    verify_stitched(&handle.snapshot(), context);
    distinct
}

#[test]
fn killing_each_primary_in_turn_recovers_within_the_same_batch() {
    // One standby per partition; a scheduled kill at the start of epochs
    // 2, 4, 6 and 8 consumes each standby in turn. Takeover is bounded:
    // the killing epoch itself still publishes, so the epoch counter
    // never skips or stalls.
    let s = seed_offset();
    let g = gnp(200, 0.04, 0xC0DE + s);
    let plan = format!("seed={},kill=0@2,kill=1@4,kill=2@6,kill=3@8", 5 + s);
    let mut svc = ShardedCoreService::with_config(&g, 4, config(1, &plan));
    let distinct = run_chaos(
        "kill-each-shard",
        &mut svc,
        &g,
        3,
        10,
        0xC0DE + s,
        |_, _| {},
    );
    assert_eq!(svc.epoch(), 10, "every epoch published despite 4 kills");
    assert!(distinct.contains(&10));
    for shard in 0..4 {
        assert_eq!(svc.replica_count(shard), 0, "standby {shard} consumed");
    }
    assert!(!svc.is_degraded());
}

#[test]
fn message_chaos_never_corrupts_an_observable_epoch() {
    // Drops (≤20%), duplicates, delay spikes and sub-timeout stalls on
    // the border exchange: retransmission and the monotone-descent
    // min-cache semantics must absorb all of it with zero effect on
    // observable results.
    let s = seed_offset();
    for (i, plan) in message_plans().iter().enumerate() {
        let g = gnp(180, 0.045, 0xFA17 + s + i as u64);
        for shards in [2usize, 4] {
            let mut svc = ShardedCoreService::with_config(&g, shards, config(0, plan));
            let context = format!("chaos[{plan}]/s{shards}");
            run_chaos(
                &context,
                &mut svc,
                &g,
                3,
                12,
                0xFA17 + s + i as u64,
                |_, _| {},
            );
            assert_eq!(svc.epoch(), 12, "{context}: all epochs published");
        }
    }
}

#[test]
fn replica_exhaustion_degrades_gracefully_and_revival_is_bounded() {
    // No standbys: killing a primary mid-stream downs the partition.
    // Readers must keep getting consistent answers from the frozen
    // epoch, health must name the partition and its growing lag, and a
    // single revive must drain the entire deferred backlog.
    let s = seed_offset();
    let g = gnp(160, 0.05, 0xDE6 + s);
    let mut svc = ShardedCoreService::with_config(&g, 2, config(0, "none"));
    let handle = svc.handle();
    run_chaos(
        "degrade-revive",
        &mut svc,
        &g,
        3,
        12,
        0xDE6 + s,
        |svc, epoch| {
            if epoch == 4 {
                assert!(!svc.kill_primary(0), "no standby: partition downs");
                assert!(svc.is_degraded());
            }
            if epoch == 8 {
                // Epochs 5..=8 were deferred while degraded.
                assert_eq!(svc.epoch(), 4, "published epoch frozen");
                assert_eq!(svc.backlog(), 4);
                let h = svc.handle().health();
                assert_eq!(h.status_line(), "status=degraded down=0:4");
                // Bounded recovery: one revive drains the whole backlog.
                assert_eq!(svc.revive_shard(0), 4);
                assert_eq!(svc.epoch(), 8);
                assert!(!svc.is_degraded());
            }
        },
    );
    assert_eq!(svc.epoch(), 12);
    assert_eq!(handle.health().status_line(), "status=healthy");
}

#[test]
fn epoch_vector_is_monotone_and_never_torn_across_failover() {
    // The PR 5 publication-ordering property, extended to the
    // replica-takeover path: at 1, 2 and 8 concurrent readers, a
    // failover in the middle of the stream must never let any reader
    // observe a non-monotone epoch or a torn per-shard epoch vector
    // (verify_stitched's BZ equality fails on any mixed-epoch stitch).
    let s = seed_offset();
    for readers in reader_counts() {
        let g = gnp(170, 0.045, 0xF417 + s + readers as u64);
        let plan = format!("seed={},drop=10,kill=1@5", 21 + s);
        let mut svc = ShardedCoreService::with_config(&g, 3, config(1, &plan));
        let context = format!("failover-ordering/r{readers}");
        let distinct = run_chaos(
            &context,
            &mut svc,
            &g,
            readers,
            10,
            0xF417 + s + readers as u64,
            |_, _| {},
        );
        assert_eq!(svc.epoch(), 10, "{context}");
        assert!(distinct.contains(&10), "{context}: final epoch observed");
        assert!(!svc.is_degraded(), "{context}");
    }
}
