//! Differential conformance: [`PublishModel`] pinned to the real
//! [`ShardedCoreService`] on matching event scripts.
//!
//! The model checker proves publish/failover properties of the
//! *abstraction*; this suite proves the abstraction tracks the shipped
//! service: each scenario drives the service through batches, primary
//! kills, and revivals while stepping the model through the
//! corresponding action script, comparing every shared observable —
//! published epoch, deferred backlog, degradation, per-shard replica
//! counts — after every event.
//!
//! The CI determinism matrix re-runs this suite with `DKCORE_TEST_SEED`
//! shifting the churn streams, so conformance covers fresh batch
//! contents (the model abstracts batches to counters — the comparison
//! must hold for *any* batch payload).

use dkcore::stream::EdgeBatch;
use dkcore_data::{churn_stream, ChurnWorkload};
use dkcore_graph::generators::gnp;
use dkcore_model::Machine;
use dkcore_serve::{
    PublishAction, PublishModel, PublishScenario, PublishState, ShardedConfig, ShardedCoreService,
};

/// Offset mixed into every churn seed, from `DKCORE_TEST_SEED` (the CI
/// determinism matrix); 0 when unset.
fn seed_offset() -> u64 {
    std::env::var("DKCORE_TEST_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(0, |s| s.wrapping_mul(0x9E37_79B9))
}

/// Steps `state` by `action`, first asserting the model actually enables
/// it there — a script drifting out of the model's enabled set is itself
/// a conformance failure.
fn act(model: &PublishModel, state: &PublishState, action: PublishAction) -> PublishState {
    let mut enabled = Vec::new();
    model.actions(state, &mut enabled);
    assert!(
        enabled.contains(&action),
        "script action {action:?} not enabled in {}",
        model.render_state(state)
    );
    model.step(state, &action)
}

/// The model script for one healthy published batch on `shards` shards.
fn publish_one(model: &PublishModel, mut s: PublishState, shards: usize) -> PublishState {
    s = act(model, &s, PublishAction::BeginAttempt);
    for shard in 0..shards {
        s = act(model, &s, PublishAction::Advance { shard });
    }
    act(model, &s, PublishAction::Flip)
}

/// Every shared observable, compared after every event.
fn assert_conforms(svc: &ShardedCoreService, s: &PublishState, shards: usize, context: &str) {
    assert_eq!(svc.epoch(), s.published(), "{context}: published epoch");
    assert_eq!(svc.backlog() as u64, s.backlog(), "{context}: backlog");
    assert_eq!(svc.is_degraded(), s.is_degraded(), "{context}: degraded");
    for shard in 0..shards {
        assert_eq!(
            svc.replica_count(shard) as u32,
            s.replica_count(shard),
            "{context}: replicas of shard {shard}"
        );
    }
}

fn batches(seed: u64, n: usize) -> Vec<EdgeBatch> {
    let g = gnp(40, 0.1, seed);
    churn_stream(
        &g,
        ChurnWorkload::Mixed { insert_pct: 60 },
        n,
        12,
        seed ^ 0xC0DE,
    )
}

fn service(shards: usize, replicas: usize, seed: u64) -> (ShardedCoreService, Vec<EdgeBatch>) {
    let g = gnp(40, 0.1, seed);
    let svc = ShardedCoreService::with_config(
        &g,
        shards,
        ShardedConfig {
            replicas,
            ..ShardedConfig::default()
        },
    );
    (svc, batches(seed, 6))
}

#[test]
fn healthy_service_tracks_the_model() {
    let seed = 7 ^ seed_offset();
    for shards in [1usize, 2, 3] {
        let (mut svc, stream) = service(shards, 1, seed + shards as u64);
        let model = PublishModel::new(PublishScenario {
            shards,
            replicas: 1,
            batches: stream.len() as u64,
            readers: 0,
            kills: 0,
            ..PublishScenario::default()
        });
        let mut s = model.initial();
        assert_conforms(&svc, &s, shards, "initial");
        for (i, batch) in stream.iter().enumerate() {
            svc.apply_batch(batch).expect("healthy batch applies");
            s = act(&model, &s, PublishAction::Ack);
            s = publish_one(&model, s, shards);
            assert_conforms(&svc, &s, shards, &format!("shards={shards} batch {i}"));
        }
    }
}

#[test]
fn standby_takeover_tracks_the_model() {
    let seed = 21 ^ seed_offset();
    let shards = 2;
    for replicas in [1usize, 2] {
        let (mut svc, stream) = service(shards, replicas, seed + replicas as u64);
        let model = PublishModel::new(PublishScenario {
            shards,
            replicas: replicas as u32,
            batches: stream.len() as u64,
            readers: 0,
            kills: replicas as u32,
            ..PublishScenario::default()
        });
        let mut s = model.initial();
        for (i, batch) in stream.iter().enumerate() {
            // Burn one standby per kill budget entry, at batch boundaries.
            if i < replicas {
                let promoted = svc.kill_primary(i % shards);
                assert!(promoted, "standby must take over while stocked");
                s = act(&model, &s, PublishAction::Kill { shard: i % shards });
                s = act(&model, &s, PublishAction::Promote { shard: i % shards });
                assert_conforms(&svc, &s, shards, &format!("after takeover {i}"));
            }
            svc.apply_batch(batch)
                .expect("batch applies after takeover");
            s = act(&model, &s, PublishAction::Ack);
            s = publish_one(&model, s, shards);
            assert_conforms(&svc, &s, shards, &format!("replicas={replicas} batch {i}"));
        }
    }
}

#[test]
fn degraded_defer_and_revive_track_the_model() {
    let seed = 35 ^ seed_offset();
    let shards = 2;
    let (mut svc, stream) = service(shards, 0, seed);
    let model = PublishModel::new(PublishScenario {
        shards,
        replicas: 0,
        batches: stream.len() as u64,
        readers: 0,
        kills: 1,
        ..PublishScenario::default()
    });
    let mut s = model.initial();

    // One healthy batch first, then lose shard 1 with no standby left.
    svc.apply_batch(&stream[0]).expect("healthy batch");
    s = act(&model, &s, PublishAction::Ack);
    s = publish_one(&model, s, shards);

    let promoted = svc.kill_primary(1);
    assert!(!promoted, "no standby: partition must enter degraded mode");
    s = act(&model, &s, PublishAction::Kill { shard: 1 });
    s = act(&model, &s, PublishAction::Tombstone);
    assert_conforms(&svc, &s, shards, "after tombstone");

    // Degraded mode validates and defers: the log grows, the epoch holds.
    for (i, batch) in stream.iter().enumerate().skip(1) {
        let report = svc.apply_batch(batch).expect("deferred batch still acks");
        assert!(report.deferred, "batch {i} must defer while degraded");
        s = act(&model, &s, PublishAction::Ack);
        assert_conforms(&svc, &s, shards, &format!("deferred batch {i}"));
    }

    // Revival drains the whole backlog; the model drains it batch by
    // batch through ordinary attempts.
    let drained = svc.revive_shard(1);
    assert_eq!(drained, s.backlog(), "revive must drain the full backlog");
    s = act(&model, &s, PublishAction::Revive);
    while s.backlog() > 0 {
        s = publish_one(&model, s, shards);
    }
    assert_conforms(&svc, &s, shards, "after revive");
    assert_eq!(svc.backlog(), 0);
}
