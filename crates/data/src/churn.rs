//! Churn-stream workload generators: deterministic sequences of valid
//! [`EdgeBatch`]es modeling how a live overlay's edge set evolves (the
//! paper's §1 scenario — "the k-core organization of the network can
//! vary" while the system inspects itself).
//!
//! Three families, mirroring the batched-maintenance evaluation
//! literature (see `PAPERS.md`):
//!
//! * [`ChurnWorkload::SlidingWindow`] — the streaming-graph staple: every
//!   batch inserts fresh random edges and expires the oldest streamed
//!   ones once the window is full, so insert and remove rates balance in
//!   steady state.
//! * [`ChurnWorkload::InsertHeavy`] — a growing overlay: almost all
//!   insertions, with an occasional removal (failures are rare compared
//!   to joins).
//! * [`ChurnWorkload::Adversarial`] — §4.2-style churn: batches toggle
//!   the lowest-id chain edges, which on the paper's worst-case family
//!   are exactly the mutations whose repair cascades across the whole
//!   graph. On other graphs it concentrates churn on a few hot edges.
//! * [`ChurnWorkload::Hotspot`] — churn confined to one flaky region of
//!   an otherwise stable overlay, the showcase for warm-started
//!   distributed re-convergence.
//! * [`ChurnWorkload::Mixed`] — fully interleaved inserts and removals
//!   with a configurable skew, the mutation side of a read-mostly serving
//!   workload (`dkcore-serve`'s load generator pairs it with a query-side
//!   read:write ratio).
//!
//! Every generated batch is **valid** against the graph state produced by
//! applying the previous batches in order (removals target live edges,
//! insertions target absent ones, no edge is mutated twice in one batch),
//! so streams can be fed directly to
//! [`StreamCore::apply_batch`](dkcore::stream::StreamCore::apply_batch)
//! or replayed per-edge through
//! [`DynamicCore`](dkcore::dynamic::DynamicCore).

use std::collections::{HashSet, VecDeque};

use dkcore::stream::EdgeBatch;
use dkcore_graph::{Graph, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// A churn-stream family. See the [module docs](self).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChurnWorkload {
    /// Insert fresh random edges; once more than `window` streamed edges
    /// are live, expire the oldest so the window stays bounded.
    SlidingWindow {
        /// Maximum number of streamed (inserted-by-the-stream) edges kept
        /// alive.
        window: usize,
    },
    /// Random insertions with one removal every `remove_every` mutations
    /// (`0` disables removals entirely).
    InsertHeavy {
        /// Period of removals among the mutations; `0` = never remove.
        remove_every: usize,
    },
    /// Toggle the lowest-id chain edges `{i, i+1}` — the §4.2 cascade
    /// sources on the worst-case family.
    Adversarial,
    /// Churn confined to the first `span` node ids — a flaky region of an
    /// otherwise stable overlay. This is the workload where warm-started
    /// re-convergence shines: only the hotspot's candidate regions ever
    /// reactivate, so the rest of the system confirms its coreness
    /// immediately.
    Hotspot {
        /// Node-id prefix the churn is confined to.
        span: usize,
        /// Period of removals among the mutations; `0` = never remove.
        remove_every: usize,
    },
    /// Fully interleaved inserts and removals: each mutation is an
    /// insertion with probability `insert_pct`% (else a removal), decided
    /// independently per mutation — no phase structure, no period. When
    /// the preferred kind has no legal edge left (e.g. a removal on an
    /// empty graph), the other kind is tried so batches stay full as long
    /// as any mutation is legal.
    Mixed {
        /// Percentage of mutations that are insertions (clamped to 100).
        /// `50` is balanced steady-state churn; higher skews toward
        /// growth.
        insert_pct: u32,
    },
}

/// Generates `batches` valid batches of `batch_size` mutations each for
/// `workload`, starting from `g`. Deterministic in `seed`.
///
/// A batch may come out smaller than `batch_size` when the graph runs out
/// of legal mutations (e.g. removals requested on an empty graph).
///
/// # Panics
///
/// Panics if `g` has fewer than two nodes and mutations are requested.
pub fn churn_stream(
    g: &Graph,
    workload: ChurnWorkload,
    batches: usize,
    batch_size: usize,
    seed: u64,
) -> Vec<EdgeBatch> {
    assert!(
        batches == 0 || batch_size == 0 || g.node_count() >= 2,
        "churn needs at least two nodes"
    );
    let mut state = EdgeState::new(g);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut streamed: VecDeque<(u32, u32)> = VecDeque::new();
    let mut mutation_clock = 0usize;
    let mut out = Vec::with_capacity(batches);

    for _ in 0..batches {
        let mut batch = EdgeBatch::new();
        let mut used: HashSet<(u32, u32)> = HashSet::new();
        match workload {
            ChurnWorkload::SlidingWindow { window } => {
                // Fill the insert half first, then expire the oldest
                // streamed edges beyond the window.
                let inserts = batch_size.div_ceil(2);
                for _ in 0..inserts {
                    if let Some(e) = state.random_absent(&mut rng, &used) {
                        used.insert(e);
                        state.insert(e);
                        streamed.push_back(e);
                        batch.insert(NodeId(e.0), NodeId(e.1));
                    }
                }
                // Edges skipped because they were already churned this
                // batch stay tracked (re-queued at the front afterwards);
                // only genuinely expired duplicates are dropped.
                let mut deferred: Vec<(u32, u32)> = Vec::new();
                while streamed.len() + deferred.len() > window && batch.len() < batch_size {
                    let Some(e) = streamed.pop_front() else { break };
                    if used.contains(&e) {
                        deferred.push(e);
                        continue;
                    }
                    if !state.contains(e) {
                        continue; // stale entry: this edge already expired
                    }
                    used.insert(e);
                    state.remove(e);
                    batch.remove(NodeId(e.0), NodeId(e.1));
                }
                for e in deferred.into_iter().rev() {
                    streamed.push_front(e);
                }
            }
            ChurnWorkload::InsertHeavy { remove_every } => {
                for _ in 0..batch_size {
                    mutation_clock += 1;
                    let do_remove = remove_every > 0 && mutation_clock.is_multiple_of(remove_every);
                    if do_remove {
                        if let Some(e) = state.random_present(&mut rng, &used) {
                            used.insert(e);
                            state.remove(e);
                            batch.remove(NodeId(e.0), NodeId(e.1));
                            continue;
                        }
                    }
                    if let Some(e) = state.random_absent(&mut rng, &used) {
                        used.insert(e);
                        state.insert(e);
                        batch.insert(NodeId(e.0), NodeId(e.1));
                    }
                }
            }
            ChurnWorkload::Hotspot { span, remove_every } => {
                let span = span.clamp(2, g.node_count()) as u32;
                for _ in 0..batch_size {
                    mutation_clock += 1;
                    let do_remove = remove_every > 0 && mutation_clock.is_multiple_of(remove_every);
                    if do_remove {
                        if let Some(e) = state.random_present_within(&mut rng, &used, span) {
                            used.insert(e);
                            state.remove(e);
                            batch.remove(NodeId(e.0), NodeId(e.1));
                            continue;
                        }
                    }
                    if let Some(e) = state.random_absent_within(&mut rng, &used, span) {
                        used.insert(e);
                        state.insert(e);
                        batch.insert(NodeId(e.0), NodeId(e.1));
                    }
                }
            }
            ChurnWorkload::Mixed { insert_pct } => {
                let pct = insert_pct.min(100);
                for _ in 0..batch_size {
                    let prefer_insert = rng.random_range(0..100u32) < pct;
                    let mut done = false;
                    if prefer_insert {
                        if let Some(e) = state.random_absent(&mut rng, &used) {
                            used.insert(e);
                            state.insert(e);
                            batch.insert(NodeId(e.0), NodeId(e.1));
                            done = true;
                        }
                    } else if let Some(e) = state.random_present(&mut rng, &used) {
                        used.insert(e);
                        state.remove(e);
                        batch.remove(NodeId(e.0), NodeId(e.1));
                        done = true;
                    }
                    if !done {
                        // The preferred kind ran dry: fall back to the
                        // other so the batch stays as full as possible.
                        if prefer_insert {
                            if let Some(e) = state.random_present(&mut rng, &used) {
                                used.insert(e);
                                state.remove(e);
                                batch.remove(NodeId(e.0), NodeId(e.1));
                            }
                        } else if let Some(e) = state.random_absent(&mut rng, &used) {
                            used.insert(e);
                            state.insert(e);
                            batch.insert(NodeId(e.0), NodeId(e.1));
                        }
                    }
                }
            }
            ChurnWorkload::Adversarial => {
                let n = g.node_count() as u32;
                for i in 0..batch_size as u32 {
                    let e = (i % (n - 1), i % (n - 1) + 1);
                    if used.contains(&e) {
                        continue;
                    }
                    used.insert(e);
                    if state.contains(e) {
                        state.remove(e);
                        batch.remove(NodeId(e.0), NodeId(e.1));
                    } else {
                        state.insert(e);
                        batch.insert(NodeId(e.0), NodeId(e.1));
                    }
                }
            }
        }
        out.push(batch);
    }
    out
}

/// Live edge set with O(1) membership and uniform sampling of both
/// present and absent edges.
struct EdgeState {
    nodes: u32,
    present: HashSet<(u32, u32)>,
    /// Present edges as a sampling pool (swap-removed on removal).
    pool: Vec<(u32, u32)>,
}

impl EdgeState {
    fn new(g: &Graph) -> Self {
        let pool: Vec<(u32, u32)> = g.edges().map(|(u, v)| ordered(u.0, v.0)).collect();
        EdgeState {
            nodes: g.node_count() as u32,
            present: pool.iter().copied().collect(),
            pool,
        }
    }

    fn contains(&self, e: (u32, u32)) -> bool {
        self.present.contains(&e)
    }

    fn insert(&mut self, e: (u32, u32)) {
        if self.present.insert(e) {
            self.pool.push(e);
        }
    }

    fn remove(&mut self, e: (u32, u32)) {
        if self.present.remove(&e) {
            let i = self
                .pool
                .iter()
                .position(|&x| x == e)
                .expect("pool mirrors set");
            self.pool.swap_remove(i);
        }
    }

    /// A uniform random absent edge not yet used in this batch, or `None`
    /// if none is found after bounded rejection sampling.
    fn random_absent(&self, rng: &mut StdRng, used: &HashSet<(u32, u32)>) -> Option<(u32, u32)> {
        self.random_absent_within(rng, used, self.nodes)
    }

    /// As [`random_absent`](Self::random_absent), confined to node ids
    /// below `span`.
    fn random_absent_within(
        &self,
        rng: &mut StdRng,
        used: &HashSet<(u32, u32)>,
        span: u32,
    ) -> Option<(u32, u32)> {
        for _ in 0..200 {
            let a = rng.random_range(0..span);
            let b = rng.random_range(0..span);
            if a == b {
                continue;
            }
            let e = ordered(a, b);
            if !self.present.contains(&e) && !used.contains(&e) {
                return Some(e);
            }
        }
        None
    }

    /// A uniform random present edge not yet used in this batch.
    fn random_present(&self, rng: &mut StdRng, used: &HashSet<(u32, u32)>) -> Option<(u32, u32)> {
        if self.pool.is_empty() {
            return None;
        }
        for _ in 0..200 {
            let e = self.pool[rng.random_range(0..self.pool.len())];
            if !used.contains(&e) {
                return Some(e);
            }
        }
        None
    }

    /// A random present edge with both endpoints below `span`, not yet
    /// used in this batch.
    fn random_present_within(
        &self,
        rng: &mut StdRng,
        used: &HashSet<(u32, u32)>,
        span: u32,
    ) -> Option<(u32, u32)> {
        if self.pool.is_empty() {
            return None;
        }
        for _ in 0..200 {
            let e = self.pool[rng.random_range(0..self.pool.len())];
            if e.1 < span && !used.contains(&e) {
                return Some(e);
            }
        }
        None
    }
}

fn ordered(a: u32, b: u32) -> (u32, u32) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore::seq::batagelj_zaversnik;
    use dkcore::stream::StreamCore;
    use dkcore_graph::generators::{gnp, worst_case};

    fn replay_and_verify(g: &Graph, stream: &[EdgeBatch]) {
        let mut sc = StreamCore::new(g);
        for (i, batch) in stream.iter().enumerate() {
            sc.apply_batch(batch)
                .unwrap_or_else(|e| panic!("batch {i} invalid: {e}"));
        }
        assert_eq!(sc.values(), batagelj_zaversnik(&sc.to_graph()).as_slice());
    }

    #[test]
    fn sliding_window_batches_are_valid_and_bounded() {
        let g = gnp(300, 0.02, 4);
        let stream = churn_stream(&g, ChurnWorkload::SlidingWindow { window: 40 }, 12, 16, 7);
        assert_eq!(stream.len(), 12);
        // Early batches are insert-only; steady-state batches remove too.
        assert!(stream[0].removals().is_empty());
        assert!(!stream.last().unwrap().removals().is_empty());
        replay_and_verify(&g, &stream);
    }

    #[test]
    fn insert_heavy_is_mostly_insertions() {
        let g = gnp(200, 0.02, 9);
        let stream = churn_stream(
            &g,
            ChurnWorkload::InsertHeavy { remove_every: 8 },
            10,
            16,
            3,
        );
        let (ins, rem): (usize, usize) = stream.iter().fold((0, 0), |(i, r), b| {
            (i + b.insertions().len(), r + b.removals().len())
        });
        assert!(
            ins > 6 * rem,
            "insert-heavy mix: {ins} inserts, {rem} removals"
        );
        assert!(rem > 0, "removals do occur");
        replay_and_verify(&g, &stream);
    }

    #[test]
    fn adversarial_toggles_cascade_edges_on_worst_case() {
        let g = worst_case(60);
        let stream = churn_stream(&g, ChurnWorkload::Adversarial, 6, 4, 0);
        // The first batch removes live chain edges; the second re-inserts
        // them (toggle), so batches alternate direction.
        assert!(!stream[0].removals().is_empty());
        assert!(!stream[1].insertions().is_empty());
        for b in &stream {
            for &(u, v) in b.removals().iter().chain(b.insertions()) {
                assert_eq!(v.0, u.0 + 1, "adversarial churn stays on the chain");
            }
        }
        replay_and_verify(&g, &stream);
    }

    #[test]
    fn sliding_window_bounds_live_streamed_edges_even_with_tiny_windows() {
        // Regression: with `window < inserts-per-batch`, the expiry loop
        // pops edges inserted in the same batch; they must stay tracked
        // (deferred), not silently leak out of the window accounting.
        let g = gnp(200, 0.01, 8);
        let base_edges = g.edge_count();
        let stream = churn_stream(&g, ChurnWorkload::SlidingWindow { window: 2 }, 15, 8, 3);
        let (ins, rem) = stream.iter().fold((0, 0), |(i, r), b| {
            (i + b.insertions().len(), r + b.removals().len())
        });
        assert!(
            ins - rem <= 2 + 8,
            "live streamed edges must stay near the window: {ins} inserted, {rem} removed"
        );
        let mut sc = StreamCore::new(&g);
        for b in &stream {
            sc.apply_batch(b).unwrap();
        }
        assert!(sc.edge_count() <= base_edges + 2 + 8);
    }

    #[test]
    fn hotspot_confines_churn_to_the_span() {
        let g = gnp(400, 0.02, 5);
        let stream = churn_stream(
            &g,
            ChurnWorkload::Hotspot {
                span: 50,
                remove_every: 4,
            },
            10,
            8,
            11,
        );
        let mut saw_removal = false;
        for b in &stream {
            for &(u, v) in b.insertions().iter().chain(b.removals()) {
                assert!(u.0 < 50 && v.0 < 50, "churn escaped the hotspot");
            }
            saw_removal |= !b.removals().is_empty();
        }
        assert!(saw_removal);
        replay_and_verify(&g, &stream);
    }

    #[test]
    fn mixed_skew_controls_the_insert_ratio() {
        let g = gnp(250, 0.03, 6);
        // Heavy insert skew: inserts clearly dominate.
        let grow = churn_stream(&g, ChurnWorkload::Mixed { insert_pct: 90 }, 10, 20, 5);
        let (ins, rem) = grow.iter().fold((0usize, 0usize), |(i, r), b| {
            (i + b.insertions().len(), r + b.removals().len())
        });
        assert!(ins > 4 * rem, "90% skew: {ins} inserts vs {rem} removals");
        assert!(rem > 0, "removals still interleave");
        replay_and_verify(&g, &grow);

        // Removal skew on the same graph: removals dominate instead.
        let shrink = churn_stream(&g, ChurnWorkload::Mixed { insert_pct: 10 }, 10, 20, 5);
        let (ins, rem) = shrink.iter().fold((0usize, 0usize), |(i, r), b| {
            (i + b.insertions().len(), r + b.removals().len())
        });
        assert!(rem > 4 * ins, "10% skew: {ins} inserts vs {rem} removals");
        replay_and_verify(&g, &shrink);
    }

    #[test]
    fn mixed_interleaves_within_single_batches() {
        // No phase structure: a single balanced batch holds both kinds.
        let g = gnp(200, 0.04, 8);
        let stream = churn_stream(&g, ChurnWorkload::Mixed { insert_pct: 50 }, 6, 24, 13);
        assert!(stream
            .iter()
            .any(|b| !b.insertions().is_empty() && !b.removals().is_empty()));
        replay_and_verify(&g, &stream);
    }

    #[test]
    fn mixed_falls_back_when_a_kind_runs_dry() {
        // Pure-removal skew on a tiny graph drains it, after which the
        // fallback inserts keep batches non-empty.
        let g = gnp(20, 0.1, 3);
        let stream = churn_stream(&g, ChurnWorkload::Mixed { insert_pct: 0 }, 30, 8, 9);
        let ins: usize = stream.iter().map(|b| b.insertions().len()).sum();
        assert!(ins > 0, "fallback insertions once the graph is drained");
        replay_and_verify(&g, &stream);
    }

    #[test]
    fn mixed_streams_are_seed_deterministic() {
        let g = gnp(150, 0.03, 1);
        let w = ChurnWorkload::Mixed { insert_pct: 60 };
        assert_eq!(
            churn_stream(&g, w, 8, 12, 42),
            churn_stream(&g, w, 8, 12, 42)
        );
        assert_ne!(
            churn_stream(&g, w, 8, 12, 42),
            churn_stream(&g, w, 8, 12, 43)
        );
    }

    #[test]
    fn streams_are_seed_deterministic() {
        let g = gnp(150, 0.03, 1);
        let w = ChurnWorkload::SlidingWindow { window: 30 };
        assert_eq!(
            churn_stream(&g, w, 8, 12, 42),
            churn_stream(&g, w, 8, 12, 42)
        );
        assert_ne!(
            churn_stream(&g, w, 8, 12, 42),
            churn_stream(&g, w, 8, 12, 43)
        );
    }

    #[test]
    fn empty_and_degenerate_requests() {
        let g = gnp(50, 0.05, 2);
        assert!(churn_stream(&g, ChurnWorkload::Adversarial, 0, 8, 1).is_empty());
        let stream = churn_stream(&g, ChurnWorkload::InsertHeavy { remove_every: 0 }, 3, 0, 1);
        assert!(stream.iter().all(EdgeBatch::is_empty));
    }
}
