//! Small worked-example graphs from the paper's text.

use dkcore_graph::{Graph, GraphBuilder, NodeId};

/// The 6-node example of the paper's §3.1.1 / Figure 2.
///
/// A chain `1—2—3—4—5—6` where the middle nodes {2,3,4,5} additionally
/// form a 2-core (edges 2–4 and 3–5 give them degree 3 each). Nodes are
/// zero-based here: paper node *i* is `NodeId(i − 1)`.
///
/// The algorithm converges on it in three message rounds with final
/// coreness `[1, 2, 2, 2, 2, 1]`, as narrated in the paper.
///
/// # Example
///
/// ```
/// use dkcore_data::fixtures::figure2_graph;
/// use dkcore::seq::batagelj_zaversnik;
///
/// let g = figure2_graph();
/// assert_eq!(batagelj_zaversnik(&g), vec![1, 2, 2, 2, 2, 1]);
/// ```
pub fn figure2_graph() -> Graph {
    Graph::from_edges(
        6,
        [
            (0, 1),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5), // the chain
            (1, 3),
            (2, 4), // middle 2-core
        ],
    )
    .expect("static fixture is valid")
}

/// A graph with the three-level core structure drawn in the paper's
/// Figure 1: a 3-core (K4), a surrounding 2-shell, and pendant 1-shell
/// nodes.
///
/// Returns the graph together with the expected coreness of every node.
///
/// # Example
///
/// ```
/// use dkcore_data::fixtures::figure1_style_graph;
/// use dkcore::seq::batagelj_zaversnik;
///
/// let (g, expected) = figure1_style_graph();
/// assert_eq!(batagelj_zaversnik(&g), expected);
/// ```
pub fn figure1_style_graph() -> (Graph, Vec<u32>) {
    let mut b = GraphBuilder::new(12).expect("static fixture");
    // 3-core: K4 on nodes 0..4.
    for u in 0..4u32 {
        for v in (u + 1)..4 {
            b.add_edge(NodeId(u), NodeId(v));
        }
    }
    // 2-shell: a ring 4-5-6-7 anchored twice into the core.
    b.add_edge(NodeId(4), NodeId(5));
    b.add_edge(NodeId(5), NodeId(6));
    b.add_edge(NodeId(6), NodeId(7));
    b.add_edge(NodeId(7), NodeId(4));
    b.add_edge(NodeId(4), NodeId(0));
    b.add_edge(NodeId(6), NodeId(1));
    // 1-shell: pendants.
    b.add_edge(NodeId(8), NodeId(0));
    b.add_edge(NodeId(9), NodeId(5));
    b.add_edge(NodeId(10), NodeId(9));
    b.add_edge(NodeId(11), NodeId(2));
    let expected = vec![3, 3, 3, 3, 2, 2, 2, 2, 1, 1, 1, 1];
    (b.build(), expected)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore::seq::batagelj_zaversnik;

    #[test]
    fn figure2_shape() {
        let g = figure2_graph();
        assert_eq!(g.node_count(), 6);
        assert_eq!(g.edge_count(), 7);
        assert_eq!(g.degrees(), vec![1, 3, 3, 3, 3, 1]);
    }

    #[test]
    fn figure2_coreness_matches_narration() {
        assert_eq!(batagelj_zaversnik(&figure2_graph()), vec![1, 2, 2, 2, 2, 1]);
    }

    #[test]
    fn figure1_style_coreness() {
        let (g, expected) = figure1_style_graph();
        assert_eq!(batagelj_zaversnik(&g), expected);
        // Cores are concentric: 3-core ⊂ 2-core ⊂ 1-core.
        let d = dkcore::CoreDecomposition::compute(&g);
        assert_eq!(d.shell_sizes(), vec![0, 4, 4, 4]);
    }
}
