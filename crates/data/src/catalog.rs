//! The nine Table 1 dataset analogs.

use dkcore_graph::{generators, Graph};

use crate::builders::{collaboration, sparse_grid, with_dense_core, with_hub_clique};

/// The statistics the paper reports for the original SNAP dataset
/// (Table 1), kept for paper-vs-measured comparisons in `EXPERIMENTS.md`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperStats {
    /// `|V|` — node count.
    pub nodes: usize,
    /// `|E|` — edge count (undirected).
    pub edges: usize,
    /// Reported diameter.
    pub diameter: u32,
    /// Maximum degree `d_max`.
    pub max_degree: u32,
    /// Maximum coreness `k_max`.
    pub max_coreness: u32,
    /// Average coreness `k_avg`.
    pub avg_coreness: f64,
    /// Average execution time `t_avg` (rounds, 50 repetitions).
    pub t_avg: f64,
    /// Minimum execution time `t_min`.
    pub t_min: u32,
    /// Maximum execution time `t_max`.
    pub t_max: u32,
    /// Average messages per node `m_avg`.
    pub m_avg: f64,
    /// Maximum messages per node `m_max`.
    pub m_max: f64,
}

/// Which generator family an analog uses (drives `build`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Family {
    /// Collaboration cliques (CA-AstroPh, CA-CondMat): papers as % of
    /// authors, team size lo..=hi, plus one large collaboration (a clique
    /// among the most prolific authors) fixing `k_max`.
    Collaboration {
        paper_factor_pct: u32,
        team_lo: usize,
        team_hi: usize,
        clique: usize,
    },
    /// Sparse uniform random graph (p2p-Gnutella31): avg degree ×100.
    SparseRandom { avg_degree_x100: u32 },
    /// Preferential attachment + hub clique (Slashdot, wiki-Talk):
    /// attachment m, clique size.
    SocialHubs { m: usize, clique: usize },
    /// Planted partition (Amazon co-purchase): community size, p_in ×1000,
    /// p_out ×100000.
    Communities {
        community: usize,
        p_in_x1000: u32,
        p_out_x100000: u32,
    },
    /// R-MAT web graph + diffuse dense core + pendant chains
    /// (web-BerkStan): core size, core density ×100.
    Web {
        edges_per_node_x100: u32,
        core: usize,
        core_density_pct: u32,
        chains_pct: u32,
        chain_len: usize,
    },
    /// Degraded grid plus dead-end roads (roadNet-TX): keep fraction
    /// ×100, pendant chains per thousand nodes, chain length.
    Road {
        keep_pct: u32,
        chains_per_thousand: u32,
        chain_len: usize,
    },
}

/// One entry of the dataset catalog: a paper dataset, its reported
/// statistics, and the synthetic analog generator.
///
/// # Example
///
/// ```
/// use dkcore_data::by_name;
///
/// let spec = by_name("roadnet-like").unwrap();
/// let g = spec.build_scaled(10_000, 1);
/// // Road networks are sparse and low-core.
/// assert!(g.avg_degree() < 3.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetSpec {
    /// Name of the analog (e.g. `"astroph-like"`).
    pub name: &'static str,
    /// The SNAP dataset it stands in for (e.g. `"CA-AstroPh"`).
    pub snap_name: &'static str,
    /// The statistics the paper reports for the original.
    pub paper: PaperStats,
    /// Node count used by `build_default` (scaled down from the original
    /// where the original is large; see `DESIGN.md` §3).
    pub default_nodes: usize,
    family: Family,
}

impl DatasetSpec {
    /// Builds the analog at its default scale.
    pub fn build_default(&self, seed: u64) -> Graph {
        self.build_scaled(self.default_nodes, seed)
    }

    /// Builds the analog with approximately `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is zero.
    pub fn build_scaled(&self, nodes: usize, seed: u64) -> Graph {
        assert!(nodes > 0, "need at least one node");
        match self.family {
            Family::Collaboration {
                paper_factor_pct,
                team_lo,
                team_hi,
                clique,
            } => {
                let papers = nodes * paper_factor_pct as usize / 100;
                let base = collaboration(nodes, papers, team_lo..=team_hi, seed);
                // One "large collaboration" paper (ATLAS-style author list)
                // among the most prolific authors pins k_max, as such
                // papers do in the real CA-* graphs.
                with_hub_clique(&base, clique.min(nodes), seed ^ 0xC0AB)
            }
            Family::SparseRandom { avg_degree_x100 } => {
                let m = nodes * avg_degree_x100 as usize / 200;
                generators::gnm(nodes, m, seed)
            }
            Family::SocialHubs { m, clique } => {
                let base = generators::barabasi_albert(nodes, m, seed);
                with_hub_clique(&base, clique.min(nodes), seed ^ 0xC11C)
            }
            Family::Communities {
                community,
                p_in_x1000,
                p_out_x100000,
            } => {
                let communities = (nodes / community).max(1);
                generators::planted_partition(
                    nodes,
                    communities,
                    p_in_x1000 as f64 / 1000.0,
                    p_out_x100000 as f64 / 100_000.0,
                    seed,
                )
            }
            Family::Web {
                edges_per_node_x100,
                core,
                core_density_pct,
                chains_pct,
                chain_len,
            } => {
                let chains = (nodes * chains_pct as usize / 100 / chain_len.max(1)).max(1);
                let core_nodes = nodes.saturating_sub(chains * chain_len).max(16);
                let scale = (core_nodes as f64).log2().ceil() as u32;
                let edges = core_nodes * edges_per_node_x100 as usize / 100;
                let web = generators::rmat(scale, edges, (0.57, 0.19, 0.19), seed);
                // rmat produces 2^scale nodes; keep the overshoot as-is
                // (isolated nodes model unlinked pages). The dense core is
                // diffuse (ER among hubs), which both pins k_max near the
                // paper's 201 and reproduces Table 2's slow-settling
                // mid-core stragglers.
                let with_core = with_dense_core(
                    &web,
                    core.min(core_nodes),
                    core_density_pct as f64 / 100.0,
                    seed ^ 0xBEEF,
                );
                generators::with_pendant_chains(&with_core, chains, chain_len, seed ^ 0xCAFE)
            }
            Family::Road {
                keep_pct,
                chains_per_thousand,
                chain_len,
            } => {
                let chains = nodes * chains_per_thousand as usize / 1000 / chain_len.max(1);
                let grid_nodes = nodes.saturating_sub(chains * chain_len).max(4);
                let side = (grid_nodes as f64).sqrt().round() as usize;
                let base = sparse_grid(side.max(1), side.max(1), keep_pct as f64 / 100.0, seed);
                // Dead-end roads: long degree-2 filaments hanging off the
                // mesh, the structures behind roadNet-TX's ~100-round
                // 1-core convergence in the paper.
                generators::with_pendant_chains(&base, chains.max(1), chain_len, seed ^ 0x70AD)
            }
        }
    }
}

/// The nine dataset analogs, in the paper's Table 1 order.
pub fn catalog() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "astroph-like",
            snap_name: "CA-AstroPh",
            paper: PaperStats {
                nodes: 18_772,
                edges: 198_110,
                diameter: 14,
                max_degree: 504,
                max_coreness: 56,
                avg_coreness: 12.62,
                t_avg: 19.55,
                t_min: 18,
                t_max: 21,
                m_avg: 47.21,
                m_max: 807.05,
            },
            default_nodes: 18_772,
            family: Family::Collaboration {
                paper_factor_pct: 40,
                team_lo: 2,
                team_hi: 12,
                clique: 57,
            },
        },
        DatasetSpec {
            name: "condmat-like",
            snap_name: "CA-CondMat",
            paper: PaperStats {
                nodes: 23_133,
                edges: 93_497,
                diameter: 15,
                max_degree: 280,
                max_coreness: 25,
                avg_coreness: 4.90,
                t_avg: 15.65,
                t_min: 14,
                t_max: 17,
                m_avg: 13.97,
                m_max: 410.25,
            },
            default_nodes: 23_133,
            family: Family::Collaboration {
                paper_factor_pct: 45,
                team_lo: 2,
                team_hi: 7,
                clique: 26,
            },
        },
        DatasetSpec {
            name: "gnutella-like",
            snap_name: "p2p-Gnutella31",
            paper: PaperStats {
                nodes: 62_590,
                edges: 147_895,
                diameter: 11,
                max_degree: 95,
                max_coreness: 6,
                avg_coreness: 2.52,
                t_avg: 27.45,
                t_min: 25,
                t_max: 30,
                m_avg: 9.30,
                m_max: 131.25,
            },
            default_nodes: 62_590,
            family: Family::SparseRandom {
                avg_degree_x100: 473,
            },
        },
        DatasetSpec {
            name: "slashdot-sign-like",
            snap_name: "soc-sign-Slashdot090221",
            paper: PaperStats {
                nodes: 82_145,
                edges: 500_485,
                diameter: 11,
                max_degree: 2_553,
                max_coreness: 54,
                avg_coreness: 6.22,
                t_avg: 25.10,
                t_min: 24,
                t_max: 26,
                m_avg: 29.32,
                m_max: 3_192.40,
            },
            default_nodes: 40_000,
            family: Family::SocialHubs { m: 6, clique: 55 },
        },
        DatasetSpec {
            name: "slashdot-like",
            snap_name: "soc-Slashdot0902",
            paper: PaperStats {
                nodes: 82_173,
                edges: 582_537,
                diameter: 12,
                max_degree: 2_548,
                max_coreness: 56,
                avg_coreness: 7.22,
                t_avg: 21.15,
                t_min: 20,
                t_max: 22,
                m_avg: 31.35,
                m_max: 3_319.95,
            },
            default_nodes: 40_000,
            family: Family::SocialHubs { m: 7, clique: 57 },
        },
        DatasetSpec {
            name: "amazon-like",
            snap_name: "Amazon0601",
            paper: PaperStats {
                nodes: 403_399,
                edges: 2_443_412,
                diameter: 21,
                max_degree: 2_752,
                max_coreness: 10,
                avg_coreness: 7.22,
                t_avg: 55.65,
                t_min: 53,
                t_max: 59,
                m_avg: 24.91,
                m_max: 2_900.30,
            },
            default_nodes: 50_000,
            family: Family::Communities {
                community: 13,
                p_in_x1000: 780,
                p_out_x100000: 2,
            },
        },
        DatasetSpec {
            name: "berkstan-like",
            snap_name: "web-BerkStan",
            paper: PaperStats {
                nodes: 685_235,
                edges: 6_649_474,
                diameter: 669,
                max_degree: 84_230,
                max_coreness: 201,
                avg_coreness: 11.11,
                t_avg: 306.15,
                t_min: 294,
                t_max: 322,
                m_avg: 29.04,
                m_max: 86_293.20,
            },
            default_nodes: 60_000,
            family: Family::Web {
                edges_per_node_x100: 970,
                core: 280,
                core_density_pct: 78,
                chains_pct: 20,
                chain_len: 250,
            },
        },
        DatasetSpec {
            name: "roadnet-like",
            snap_name: "roadNet-TX",
            paper: PaperStats {
                nodes: 1_379_922,
                edges: 1_921_664,
                diameter: 1_049,
                max_degree: 12,
                max_coreness: 3,
                avg_coreness: 1.79,
                t_avg: 98.60,
                t_min: 94,
                t_max: 103,
                m_avg: 4.45,
                m_max: 19.30,
            },
            default_nodes: 65_536,
            family: Family::Road {
                keep_pct: 65,
                chains_per_thousand: 150,
                chain_len: 150,
            },
        },
        DatasetSpec {
            name: "wikitalk-like",
            snap_name: "wiki-Talk",
            paper: PaperStats {
                nodes: 2_394_390,
                edges: 4_659_569,
                diameter: 9,
                max_degree: 100_029,
                max_coreness: 131,
                avg_coreness: 1.96,
                t_avg: 31.60,
                t_min: 30,
                t_max: 33,
                m_avg: 5.89,
                m_max: 103_895.35,
            },
            default_nodes: 80_000,
            family: Family::SocialHubs { m: 2, clique: 132 },
        },
    ]
}

/// Looks a dataset analog up by its `name` or by the original `snap_name`
/// (case-insensitive).
pub fn by_name(name: &str) -> Option<DatasetSpec> {
    catalog()
        .into_iter()
        .find(|s| s.name.eq_ignore_ascii_case(name) || s.snap_name.eq_ignore_ascii_case(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_nine_table1_rows() {
        let c = catalog();
        assert_eq!(c.len(), 9);
        let names: Vec<&str> = c.iter().map(|s| s.snap_name).collect();
        assert_eq!(
            names,
            vec![
                "CA-AstroPh",
                "CA-CondMat",
                "p2p-Gnutella31",
                "soc-sign-Slashdot090221",
                "soc-Slashdot0902",
                "Amazon0601",
                "web-BerkStan",
                "roadNet-TX",
                "wiki-Talk",
            ]
        );
    }

    #[test]
    fn lookup_by_either_name() {
        assert!(by_name("astroph-like").is_some());
        assert!(by_name("CA-AstroPh").is_some());
        assert!(by_name("ca-astroph").is_some());
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn all_analogs_build_at_small_scale() {
        for spec in catalog() {
            let g = spec.build_scaled(2_000, 42);
            assert!(g.node_count() >= 1_000, "{}: {}", spec.name, g.node_count());
            assert!(g.edge_count() > 500, "{}: too few edges", spec.name);
        }
    }

    #[test]
    fn analogs_are_deterministic() {
        for spec in catalog() {
            assert_eq!(
                spec.build_scaled(1_500, 7),
                spec.build_scaled(1_500, 7),
                "{} not deterministic",
                spec.name
            );
        }
    }

    #[test]
    fn coreness_profiles_match_paper_classes() {
        // Spot checks at reduced scale: the *class* of each analog's
        // coreness profile must match the paper's (deep cores for
        // collaboration/social, shallow for road/p2p).
        let check = |name: &str, nodes: usize, min_kmax: u32, max_kmax: u32| {
            let spec = by_name(name).unwrap();
            let g = spec.build_scaled(nodes, 3);
            let kmax = *dkcore::seq::batagelj_zaversnik(&g).iter().max().unwrap();
            assert!(
                (min_kmax..=max_kmax).contains(&kmax),
                "{name}: kmax {kmax} outside [{min_kmax}, {max_kmax}]"
            );
        };
        check("astroph-like", 6_000, 10, 120);
        check("gnutella-like", 6_000, 2, 8);
        check("slashdot-sign-like", 6_000, 50, 70);
        check("wikitalk-like", 6_000, 125, 140);
        check("roadnet-like", 6_400, 1, 3);
        check("amazon-like", 6_500, 5, 14);
    }

    #[test]
    fn road_analog_has_large_diameter() {
        let g = by_name("roadnet-like").unwrap().build_scaled(4_900, 5);
        let d = dkcore_graph::metrics::approx_diameter(&g, 3);
        assert!(d > 40, "road diameter should be large, got {d}");
    }

    #[test]
    fn web_analog_has_pendant_depth() {
        let g = by_name("berkstan-like").unwrap().build_scaled(8_000, 5);
        let d = dkcore_graph::metrics::approx_diameter(&g, 3);
        assert!(d > 100, "web analog needs deep chains, got {d}");
    }

    #[test]
    fn paper_stats_are_recorded_faithfully() {
        // A couple of Table 1 entries transcribed correctly.
        let astro = by_name("CA-AstroPh").unwrap();
        assert_eq!(astro.paper.nodes, 18_772);
        assert_eq!(astro.paper.max_coreness, 56);
        assert_eq!(astro.paper.t_min, 18);
        let road = by_name("roadNet-TX").unwrap();
        assert_eq!(road.paper.diameter, 1_049);
        assert!((road.paper.m_avg - 4.45).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_scale_panics() {
        let _ = by_name("astroph-like").unwrap().build_scaled(0, 1);
    }
}
