//! Composite graph builders used by the dataset analogs.

use dkcore_graph::{Graph, GraphBuilder, NodeId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Collaboration-network model: `papers` cliques over `authors` nodes.
///
/// Each paper draws its author count uniformly from `authors_per_paper`
/// and selects authors preferentially (a Pólya-urn scheme: productive
/// authors keep publishing), then all co-authors are pairwise connected.
/// This is how co-authorship graphs like the paper's CA-AstroPh and
/// CA-CondMat arise, and it reproduces their signature combination of
/// power-law degrees **and** large maximum coreness (a k-clique pushes all
/// its members to coreness ≥ k−1, so prolific author clusters form deep
/// cores — BA-style models cap coreness at the attachment parameter
/// instead).
///
/// # Panics
///
/// Panics if `authors == 0` or the size range is empty or starts below 2.
pub fn collaboration(
    authors: usize,
    papers: usize,
    authors_per_paper: std::ops::RangeInclusive<usize>,
    seed: u64,
) -> Graph {
    assert!(authors > 0, "need at least one author");
    assert!(
        *authors_per_paper.start() >= 2,
        "papers need at least two authors"
    );
    assert!(
        authors_per_paper.start() <= authors_per_paper.end(),
        "empty author-count range"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(authors).expect("author count fits u32");
    // Urn of author ids; each appearance adds another copy (preferential).
    let mut urn: Vec<u32> = (0..authors as u32).collect();
    let (lo, hi) = (*authors_per_paper.start(), *authors_per_paper.end());
    for _ in 0..papers {
        let size = rng.random_range(lo..=hi).min(authors);
        let mut team: Vec<u32> = Vec::with_capacity(size);
        let mut guard = 0;
        while team.len() < size && guard < 50 * size {
            let a = urn[rng.random_range(0..urn.len())];
            if !team.contains(&a) {
                team.push(a);
            }
            guard += 1;
        }
        for i in 0..team.len() {
            for j in (i + 1)..team.len() {
                b.add_edge(NodeId(team[i]), NodeId(team[j]));
            }
            urn.push(team[i]);
        }
    }
    b.build()
}

/// Adds a clique among the `k` highest-degree nodes of `base`.
///
/// Social and communication graphs (the paper's soc-Slashdot and wiki-Talk
/// datasets) pair power-law degrees with a surprisingly dense inner core
/// (`k_max` 54–131). Preferential-attachment models alone cannot produce
/// that — their degeneracy equals the attachment parameter — so the
/// analogs wire the hubs into a clique, which is also what the real "core
/// of elites" in such networks looks like.
pub fn with_hub_clique(base: &Graph, k: usize, seed: u64) -> Graph {
    let mut hubs: Vec<NodeId> = base.nodes().collect();
    hubs.sort_by_key(|&u| std::cmp::Reverse(base.degree(u)));
    hubs.truncate(k);
    // Shuffle so ties don't systematically pick low ids.
    let mut rng = StdRng::seed_from_u64(seed);
    hubs.shuffle(&mut rng);
    let mut b = GraphBuilder::new(base.node_count()).expect("same node count");
    for (u, v) in base.edges() {
        b.add_edge(u, v);
    }
    for i in 0..hubs.len() {
        for j in (i + 1)..hubs.len() {
            b.add_edge(hubs[i], hubs[j]);
        }
    }
    b.build()
}

/// Adds a *diffuse* dense core among the `size` highest-degree nodes of
/// `base`: each pair is connected with probability `p` rather than
/// deterministically.
///
/// Unlike [`with_hub_clique`], whose members agree on their coreness
/// almost immediately (every member sees `size − 1` equals), an ER-style
/// core has to grind its estimates down through many `computeIndex`
/// iterations — reproducing the paper's Table 2, where web-BerkStan's
/// dense 55-core was still >50 % wrong at round 25 and took until round
/// ~225 to settle.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn with_dense_core(base: &Graph, size: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "core density must be in [0, 1]");
    let mut hubs: Vec<NodeId> = base.nodes().collect();
    hubs.sort_by_key(|&u| std::cmp::Reverse(base.degree(u)));
    hubs.truncate(size);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(base.node_count()).expect("same node count");
    for (u, v) in base.edges() {
        b.add_edge(u, v);
    }
    for i in 0..hubs.len() {
        for j in (i + 1)..hubs.len() {
            if rng.random_bool(p) {
                b.add_edge(hubs[i], hubs[j]);
            }
        }
    }
    b.build()
}

/// A heterogeneous-density overlay: `blocks` ER communities of
/// `block_size` nodes whose average degree climbs from ~3 up through
/// ~35 in a repeating five-tier cycle, with `bridges` random edges
/// between consecutive blocks.
///
/// Because neighboring blocks sit at *different* coreness levels, the
/// equal-coreness regions that streaming repairs traverse stay confined
/// to a block instead of percolating across the graph — the structure
/// that makes warm-started re-convergence after scattered churn cheap
/// (`dkcore::stream`), and the shape of real overlays whose communities
/// differ in density. Contrast with a homogeneous G(n,p), where one
/// dominant coreness value spans the giant component.
///
/// # Panics
///
/// Panics if `blocks == 0` or `block_size < 2`.
pub fn tiered_blocks(blocks: usize, block_size: usize, bridges: usize, seed: u64) -> Graph {
    assert!(blocks > 0, "need at least one block");
    assert!(block_size >= 2, "blocks need at least two nodes");
    let n = blocks * block_size;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n).expect("node count fits u32");
    for blk in 0..blocks {
        let base = (blk * block_size) as u32;
        // Average degree 3, 11, ..., 35 cycling over tiers of 5: the wide
        // spacing puts neighboring blocks several coreness levels apart,
        // so small-window candidate regions cannot leak across bridges.
        let avg_degree = 3.0 + 8.0 * (blk % 5) as f64;
        let p = (avg_degree / (block_size - 1) as f64).min(1.0);
        for i in 0..block_size as u32 {
            for j in (i + 1)..block_size as u32 {
                if rng.random_bool(p) {
                    b.add_edge(NodeId(base + i), NodeId(base + j));
                }
            }
        }
        if blk + 1 < blocks {
            let next = ((blk + 1) * block_size) as u32;
            for _ in 0..bridges {
                let u = base + rng.random_range(0..block_size as u32);
                let v = next + rng.random_range(0..block_size as u32);
                b.add_edge(NodeId(u), NodeId(v));
            }
        }
    }
    b.build()
}

/// A road-network model: a 2-D grid with a fraction of its edges removed.
///
/// Pure grids have average degree → 4; real road networks (the paper's
/// roadNet-TX has average degree 2.79 and `k_max = 3`) are much sparser,
/// so `keep_fraction` of the grid edges are retained uniformly at random.
///
/// # Panics
///
/// Panics if `keep_fraction` is outside `[0, 1]`.
pub fn sparse_grid(rows: usize, cols: usize, keep_fraction: f64, seed: u64) -> Graph {
    assert!(
        (0.0..=1.0).contains(&keep_fraction),
        "keep fraction must be in [0, 1]"
    );
    let full = dkcore_graph::generators::grid(rows, cols);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(rows * cols).expect("grid fits u32");
    for (u, v) in full.edges() {
        if rng.random_bool(keep_fraction) {
            b.add_edge(u, v);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore_graph::generators::barabasi_albert;

    #[test]
    fn collaboration_produces_dense_cores() {
        let g = collaboration(500, 800, 3..=7, 1);
        assert_eq!(g.node_count(), 500);
        // A paper with s authors yields a clique: coreness >= s - 1 for
        // members of bigger or overlapping papers.
        let core = dkcore::seq::batagelj_zaversnik(&g);
        let kmax = core.iter().copied().max().unwrap();
        assert!(
            kmax >= 6,
            "collaboration cliques should stack, kmax = {kmax}"
        );
    }

    #[test]
    fn collaboration_is_deterministic() {
        assert_eq!(
            collaboration(100, 50, 2..=5, 9),
            collaboration(100, 50, 2..=5, 9)
        );
    }

    #[test]
    fn collaboration_degrees_are_skewed() {
        let g = collaboration(1000, 1500, 2..=6, 3);
        let degs = g.degrees();
        let avg = g.avg_degree();
        let max = *degs.iter().max().unwrap() as f64;
        assert!(
            max > 4.0 * avg,
            "preferential urn should create hubs: max {max}, avg {avg}"
        );
    }

    #[test]
    fn hub_clique_raises_max_coreness() {
        let base = barabasi_albert(800, 3, 5);
        let base_kmax = *dkcore::seq::batagelj_zaversnik(&base).iter().max().unwrap();
        let g = with_hub_clique(&base, 20, 7);
        let kmax = *dkcore::seq::batagelj_zaversnik(&g).iter().max().unwrap();
        assert!(kmax >= 19, "clique of 20 forces kmax >= 19, got {kmax}");
        assert!(kmax > base_kmax);
        assert_eq!(g.node_count(), base.node_count());
    }

    #[test]
    fn tiered_blocks_spreads_coreness_across_tiers() {
        let g = tiered_blocks(16, 150, 4, 7);
        assert_eq!(g.node_count(), 16 * 150);
        let core = dkcore::seq::batagelj_zaversnik(&g);
        // The densest tier (avg degree ~17) must reach a much higher
        // coreness than the sparsest (~3): heterogeneity is the point.
        let block_max = |blk: usize| (blk * 150..(blk + 1) * 150).map(|u| core[u]).max().unwrap();
        assert!(
            block_max(4) >= block_max(0) + 5,
            "tier 4 ({}) should out-core tier 0 ({})",
            block_max(4),
            block_max(0)
        );
        assert_eq!(tiered_blocks(16, 150, 4, 7), tiered_blocks(16, 150, 4, 7));
    }

    #[test]
    fn sparse_grid_keeps_roughly_the_requested_fraction() {
        let full_edges = dkcore_graph::generators::grid(50, 50).edge_count() as f64;
        let g = sparse_grid(50, 50, 0.7, 11);
        let kept = g.edge_count() as f64;
        assert!((kept / full_edges - 0.7).abs() < 0.05);
    }

    #[test]
    fn sparse_grid_extremes() {
        assert_eq!(sparse_grid(10, 10, 0.0, 1).edge_count(), 0);
        assert_eq!(
            sparse_grid(10, 10, 1.0, 1).edge_count(),
            dkcore_graph::generators::grid(10, 10).edge_count()
        );
    }
}
