//! Dataset catalog: synthetic analogs of the nine SNAP graphs evaluated in
//! the paper's Table 1, plus the worked-example fixtures from the text.
//!
//! The original experiments ran on graphs from the Stanford Large Network
//! Dataset collection (SNAP). Those files are not bundled here, so the
//! catalog pairs every paper dataset with a *generator analog* that
//! matches its structural class (degree skew, community structure,
//! diameter regime, coreness profile); `DESIGN.md` §3 documents each
//! substitution. The SNAP originals can still be used directly via
//! [`dkcore_graph::io::read_edge_list_file`] — the harness accepts any
//! graph.
//!
//! The [`churn`] module adds *edge-churn stream* workloads on top of any
//! graph: sliding-window, insert-heavy and adversarial batch sequences
//! for the streaming maintenance engine (`dkcore::stream`).
//!
//! # Example
//!
//! ```
//! use dkcore_data::{catalog, by_name};
//!
//! assert_eq!(catalog().len(), 9);
//! let spec = by_name("gnutella-like").expect("in catalog");
//! let g = spec.build_scaled(2_000, 7);
//! assert_eq!(g.node_count(), 2_000);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builders;
mod catalog;
pub mod churn;
pub mod fixtures;

pub use builders::{collaboration, sparse_grid, tiered_blocks, with_dense_core, with_hub_clique};
pub use catalog::{by_name, catalog, DatasetSpec, PaperStats};
pub use churn::{churn_stream, ChurnWorkload};
