//! Property-based tests for the Pregel engine and its vertex programs.

use dkcore::seq::batagelj_zaversnik;
use dkcore_graph::{metrics, Graph, NodeId};
use dkcore_pregel::{
    ConnectedComponentsProgram, HopDistanceProgram, KCoreProgram, MinCombiner, Pregel,
};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = Graph> {
    (1usize..50).prop_flat_map(|n| {
        let edges = proptest::collection::vec((0..n as u32, 0..n as u32), 0..150);
        edges.prop_map(move |es| Graph::from_edges(n, es).expect("endpoints in range"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The k-core vertex program equals the sequential baseline on
    /// arbitrary graphs and worker counts.
    #[test]
    fn kcore_program_equals_bz(g in arb_graph(), workers in 1usize..6) {
        let result = Pregel::new(workers).run(&g, &KCoreProgram::default());
        prop_assert!(result.converged);
        let coreness: Vec<u32> = result.states.iter().map(|s| s.core).collect();
        prop_assert_eq!(coreness, batagelj_zaversnik(&g));
    }

    /// Connected-components labels partition exactly like BFS components.
    #[test]
    fn components_program_partitions(g in arb_graph()) {
        let result =
            Pregel::new(3).run_with_combiner(&g, &ConnectedComponentsProgram, &MinCombiner);
        prop_assert!(result.converged);
        let (_, labels) = metrics::connected_components(&g);
        for u in g.nodes() {
            for v in g.nodes() {
                prop_assert_eq!(
                    labels[u.index()] == labels[v.index()],
                    result.states[u.index()] == result.states[v.index()]
                );
            }
        }
        // Each label is the minimum node id of its component.
        for u in g.nodes() {
            prop_assert!(result.states[u.index()] <= u.0);
        }
    }

    /// Hop distances equal BFS distances from any source.
    #[test]
    fn hop_distance_equals_bfs(g in arb_graph(), src_raw in any::<u32>()) {
        let src = NodeId(src_raw % g.node_count() as u32);
        let result =
            Pregel::new(2).run_with_combiner(&g, &HopDistanceProgram::from(src), &MinCombiner);
        let expected: Vec<u32> = metrics::bfs_distances(&g, src)
            .into_iter()
            .map(|d| if d == metrics::UNREACHABLE { u32::MAX } else { d })
            .collect();
        prop_assert_eq!(result.states, expected);
    }

    /// The engine's message accounting: combining never increases the
    /// message count, and results are unchanged.
    #[test]
    fn combiner_only_reduces_traffic(g in arb_graph()) {
        let src = NodeId(0);
        let plain = Pregel::new(2).run(&g, &HopDistanceProgram::from(src));
        let combined =
            Pregel::new(2).run_with_combiner(&g, &HopDistanceProgram::from(src), &MinCombiner);
        prop_assert_eq!(plain.states, combined.states);
        // Messages are counted at send time (combining happens at the
        // inbox), so totals match; supersteps must match exactly.
        prop_assert_eq!(plain.supersteps, combined.supersteps);
    }
}
