//! Vertex programs: the paper's k-core algorithm plus two classic
//! programs that exercise the engine independently.

use dkcore::{compute_index, INFINITY_EST};
use dkcore_graph::{Graph, NodeId};

use crate::{ComputeContext, VertexProgram};

/// Per-vertex state of [`KCoreProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KCoreState {
    /// Current coreness estimate (the `core` variable of Algorithm 1).
    pub core: u32,
    /// Neighbor estimates, parallel to the vertex's (sorted) neighbor
    /// list; `INFINITY_EST` = not heard from yet.
    est: Vec<u32>,
}

impl KCoreState {
    /// The freshest estimate held for the `i`-th neighbor.
    pub fn neighbor_estimate(&self, i: usize) -> u32 {
        self.est[i]
    }
}

/// The paper's Algorithm 1 as a Pregel vertex program: one superstep = one
/// round of the one-to-one protocol.
///
/// Superstep 0 broadcasts the degree; afterwards a vertex recomputes its
/// estimate from incoming `⟨u, core⟩` messages via `computeIndex` and
/// broadcasts only on change, then votes to halt — reactivation on
/// message arrival gives exactly the paper's event-driven behavior, and
/// Pregel's termination condition *is* the §3.3 quiescence criterion.
///
/// # Example
///
/// ```
/// use dkcore_pregel::{KCoreProgram, Pregel};
/// use dkcore_graph::generators::complete;
///
/// let g = complete(5);
/// let result = Pregel::new(2).run(&g, &KCoreProgram::default());
/// assert!(result.states.iter().all(|s| s.core == 4));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct KCoreProgram {
    /// The §3.1.2 send optimization: message a neighbor only if the new
    /// estimate could still lower that neighbor's own estimate.
    pub send_optimization: bool,
}

impl Default for KCoreProgram {
    fn default() -> Self {
        KCoreProgram {
            send_optimization: true,
        }
    }
}

impl VertexProgram for KCoreProgram {
    type State = KCoreState;
    /// `⟨u, core⟩` of Algorithm 1.
    type Message = (NodeId, u32);

    fn init(&self, g: &Graph, v: NodeId) -> KCoreState {
        KCoreState {
            core: g.degree(v),
            est: vec![INFINITY_EST; g.degree(v) as usize],
        }
    }

    fn compute(&self, state: &mut KCoreState, ctx: &mut ComputeContext<'_, (NodeId, u32)>) {
        if ctx.superstep() == 0 {
            let announce = (ctx.vertex(), state.core);
            ctx.send_to_neighbors(announce);
            ctx.vote_to_halt();
            return;
        }
        let mut changed = false;
        for i in 0..ctx.messages().len() {
            let (from, k) = ctx.messages()[i];
            let Ok(slot) = ctx.neighbors().binary_search(&from) else {
                continue;
            };
            if k < state.est[slot] {
                state.est[slot] = k;
                changed = true;
            }
        }
        if changed {
            let t = compute_index(state.est.iter().copied(), state.core);
            if t < state.core {
                state.core = t;
                let announce = (ctx.vertex(), state.core);
                if self.send_optimization {
                    for i in 0..ctx.neighbors().len() {
                        let v = ctx.neighbors()[i];
                        if state.core < state.est[i] {
                            ctx.send(v, announce);
                        }
                    }
                } else {
                    ctx.send_to_neighbors(announce);
                }
            }
        }
        ctx.vote_to_halt();
    }
}

/// Connected components by min-label propagation: every vertex adopts the
/// smallest vertex id it has ever heard of; converged labels identify the
/// components. Works with [`MinCombiner`](crate::MinCombiner).
#[derive(Debug, Clone, Copy, Default)]
pub struct ConnectedComponentsProgram;

/// Per-vertex state of [`ConnectedComponentsProgram`]: the current
/// component label.
pub type ComponentState = u32;

impl VertexProgram for ConnectedComponentsProgram {
    type State = ComponentState;
    type Message = u32;

    fn init(&self, _g: &Graph, v: NodeId) -> u32 {
        v.0
    }

    fn compute(&self, state: &mut u32, ctx: &mut ComputeContext<'_, u32>) {
        let incoming_min = ctx.messages().iter().copied().min();
        let best = incoming_min.map_or(*state, |m| m.min(*state));
        if ctx.superstep() == 0 || best < *state {
            *state = best;
            ctx.send_to_neighbors(best);
        }
        ctx.vote_to_halt();
    }
}

/// Unweighted shortest hop distances from a source vertex (BFS in BSP
/// form). Unreached vertices end at `u32::MAX`.
#[derive(Debug, Clone, Copy)]
pub struct HopDistanceProgram {
    source: NodeId,
}

impl From<NodeId> for HopDistanceProgram {
    fn from(source: NodeId) -> Self {
        HopDistanceProgram { source }
    }
}

impl VertexProgram for HopDistanceProgram {
    type State = u32;
    type Message = u32;

    fn init(&self, _g: &Graph, v: NodeId) -> u32 {
        if v == self.source {
            0
        } else {
            u32::MAX
        }
    }

    fn compute(&self, state: &mut u32, ctx: &mut ComputeContext<'_, u32>) {
        let incoming = ctx.messages().iter().copied().min().unwrap_or(u32::MAX);
        let best = (*state).min(incoming);
        let should_announce =
            (ctx.superstep() == 0 && ctx.vertex() == self.source) || best < *state;
        if should_announce {
            *state = best;
            ctx.send_to_neighbors(best.saturating_add(1));
        }
        ctx.vote_to_halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MinCombiner, Pregel};
    use dkcore::seq::batagelj_zaversnik;
    use dkcore_graph::generators::{complete, gnp, path, star, worst_case};
    use dkcore_graph::metrics::{bfs_distances, connected_components};

    #[test]
    fn kcore_program_matches_bz_on_random_graphs() {
        for seed in 0..6 {
            let g = gnp(150, 0.05, seed);
            let result = Pregel::new(4).run(&g, &KCoreProgram::default());
            assert!(result.converged);
            let coreness: Vec<u32> = result.states.iter().map(|s| s.core).collect();
            assert_eq!(coreness, batagelj_zaversnik(&g), "seed {seed}");
        }
    }

    #[test]
    fn kcore_program_without_optimization_matches_too() {
        let g = gnp(120, 0.06, 9);
        let program = KCoreProgram {
            send_optimization: false,
        };
        let result = Pregel::new(3).run(&g, &program);
        let coreness: Vec<u32> = result.states.iter().map(|s| s.core).collect();
        assert_eq!(coreness, batagelj_zaversnik(&g));
    }

    #[test]
    fn kcore_optimization_saves_messages() {
        let g = gnp(150, 0.06, 4);
        let plain = Pregel::new(2).run(
            &g,
            &KCoreProgram {
                send_optimization: false,
            },
        );
        let optimized = Pregel::new(2).run(
            &g,
            &KCoreProgram {
                send_optimization: true,
            },
        );
        assert!(
            optimized.messages < plain.messages,
            "{} !< {}",
            optimized.messages,
            plain.messages
        );
        let a: Vec<u32> = plain.states.iter().map(|s| s.core).collect();
        let b: Vec<u32> = optimized.states.iter().map(|s| s.core).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn kcore_supersteps_track_protocol_rounds() {
        // The worst-case family needs ~N supersteps; a clique needs ~2.
        let fast = Pregel::new(2).run(&complete(10), &KCoreProgram::default());
        assert!(fast.supersteps <= 3, "clique: {}", fast.supersteps);
        let slow = Pregel::new(2).run(&worst_case(20), &KCoreProgram::default());
        assert!(slow.supersteps >= 18, "worst case: {}", slow.supersteps);
    }

    #[test]
    fn kcore_state_exposes_neighbor_estimates() {
        let g = star(4);
        let result = Pregel::new(1).run(&g, &KCoreProgram::default());
        let hub = &result.states[0];
        assert_eq!(hub.core, 1);
        for i in 0..3 {
            assert_eq!(hub.neighbor_estimate(i), 1);
        }
    }

    #[test]
    fn connected_components_program() {
        let g = dkcore_graph::Graph::from_edges(7, [(0, 1), (1, 2), (3, 4), (5, 6)]).unwrap();
        let result =
            Pregel::new(3).run_with_combiner(&g, &ConnectedComponentsProgram, &MinCombiner);
        assert!(result.converged);
        assert_eq!(result.states, vec![0, 0, 0, 3, 3, 5, 5]);
        // Agreement with the graph-metrics implementation.
        let (count, labels) = connected_components(&g);
        assert_eq!(count, 3);
        for u in 0..7 {
            for v in 0..7 {
                assert_eq!(labels[u] == labels[v], result.states[u] == result.states[v]);
            }
        }
    }

    #[test]
    fn hop_distance_program_equals_bfs() {
        for seed in 0..4 {
            let g = gnp(100, 0.04, 40 + seed);
            let src = NodeId(0);
            let result =
                Pregel::new(4).run_with_combiner(&g, &HopDistanceProgram::from(src), &MinCombiner);
            let expected: Vec<u32> = bfs_distances(&g, src)
                .into_iter()
                .map(|d| {
                    if d == dkcore_graph::metrics::UNREACHABLE {
                        u32::MAX
                    } else {
                        d
                    }
                })
                .collect();
            assert_eq!(result.states, expected, "seed {seed}");
        }
    }

    #[test]
    fn hop_distance_on_path_counts_supersteps() {
        let g = path(10);
        let result = Pregel::new(1).run(&g, &HopDistanceProgram::from(NodeId(0)));
        assert_eq!(result.states, (0..10).collect::<Vec<u32>>());
        // The wave needs one superstep per hop plus the final quiet one.
        assert!(result.supersteps >= 10);
    }

    #[test]
    fn deterministic_across_worker_counts() {
        let g = gnp(120, 0.05, 77);
        let one = Pregel::new(1).run(&g, &KCoreProgram::default());
        let many = Pregel::new(8).run(&g, &KCoreProgram::default());
        let a: Vec<u32> = one.states.iter().map(|s| s.core).collect();
        let b: Vec<u32> = many.states.iter().map(|s| s.core).collect();
        assert_eq!(a, b);
        assert_eq!(one.supersteps, many.supersteps);
    }
}
