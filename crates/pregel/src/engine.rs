//! The BSP superstep engine.

use std::thread;

use dkcore_graph::{Graph, NodeId};

/// A vertex-centric program in the Pregel model.
///
/// The engine calls [`compute`](VertexProgram::compute) on every *active*
/// vertex once per superstep. A vertex deactivates by voting to halt and
/// is reactivated whenever a message arrives for it. Superstep 0 runs on
/// every vertex with an empty message list.
pub trait VertexProgram: Sync {
    /// Per-vertex state, owned by the engine between supersteps.
    type State: Send;
    /// Message type exchanged along edges.
    type Message: Send + Clone;

    /// Produces the initial state of vertex `v`.
    fn init(&self, g: &Graph, v: NodeId) -> Self::State;

    /// One superstep of work for one vertex.
    fn compute(&self, state: &mut Self::State, ctx: &mut ComputeContext<'_, Self::Message>);
}

/// Commutative, associative message reduction applied per destination
/// vertex — Pregel's bandwidth optimization for programs that only need
/// an aggregate of their incoming messages.
pub trait Combiner<M>: Sync {
    /// Combines two messages addressed to the same vertex.
    fn combine(&self, a: M, b: M) -> M;
}

/// Combiner keeping the minimum message (for [`Ord`] messages) — what
/// shortest-path and label-propagation programs want.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinCombiner;

impl<M: Ord> Combiner<M> for MinCombiner {
    fn combine(&self, a: M, b: M) -> M {
        a.min(b)
    }
}

/// Everything a vertex sees during one `compute` call.
#[derive(Debug)]
pub struct ComputeContext<'a, M> {
    vertex: NodeId,
    superstep: u32,
    neighbors: &'a [NodeId],
    messages: &'a [M],
    outbox: &'a mut Vec<(NodeId, M)>,
    halted: &'a mut bool,
    sent: &'a mut u64,
}

impl<M: Clone> ComputeContext<'_, M> {
    /// The vertex being computed.
    pub fn vertex(&self) -> NodeId {
        self.vertex
    }

    /// Current superstep index (0-based).
    pub fn superstep(&self) -> u32 {
        self.superstep
    }

    /// The vertex's neighbors (Pregel's out-edges; our graphs are
    /// undirected, so these are all incident edges).
    pub fn neighbors(&self) -> &[NodeId] {
        self.neighbors
    }

    /// The vertex's degree.
    pub fn degree(&self) -> u32 {
        self.neighbors.len() as u32
    }

    /// Messages delivered to this vertex for this superstep.
    pub fn messages(&self) -> &[M] {
        self.messages
    }

    /// Sends `msg` to vertex `to`, to be delivered next superstep.
    pub fn send(&mut self, to: NodeId, msg: M) {
        *self.sent += 1;
        self.outbox.push((to, msg));
    }

    /// Sends `msg` to every neighbor.
    pub fn send_to_neighbors(&mut self, msg: M) {
        for i in 0..self.neighbors.len() {
            let to = self.neighbors[i];
            self.send(to, msg.clone());
        }
    }

    /// Votes to halt: the vertex will not be computed again until a
    /// message arrives for it.
    pub fn vote_to_halt(&mut self) {
        *self.halted = true;
    }
}

/// Result of a Pregel run.
#[derive(Debug, Clone)]
pub struct PregelResult<S> {
    /// Final state of every vertex, indexed by [`NodeId::index`].
    pub states: Vec<S>,
    /// Supersteps executed (including superstep 0).
    pub supersteps: u32,
    /// Total messages sent (after combining).
    pub messages: u64,
    /// Whether the computation halted on its own (vs the superstep cap).
    pub converged: bool,
}

/// The BSP engine: vertex partitions are processed by a pool of worker
/// threads with a barrier between supersteps, messages are routed between
/// supersteps, and the run ends when every vertex has halted and no
/// messages are in flight — Pregel's termination condition.
///
/// # Example
///
/// ```
/// use dkcore_pregel::{HopDistanceProgram, Pregel};
/// use dkcore_graph::{generators::path, NodeId};
///
/// let g = path(5);
/// let result = Pregel::new(2).run(&g, &HopDistanceProgram::from(NodeId(0)));
/// let dist: Vec<u32> = result.states.clone();
/// assert_eq!(dist, vec![0, 1, 2, 3, 4]);
/// ```
#[derive(Debug, Clone)]
pub struct Pregel {
    workers: usize,
    max_supersteps: u32,
}

impl Pregel {
    /// Creates an engine with the given worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "need at least one worker");
        Pregel {
            workers,
            max_supersteps: u32::MAX,
        }
    }

    /// Caps the number of supersteps (for approximate runs or tests).
    pub fn with_max_supersteps(mut self, cap: u32) -> Self {
        self.max_supersteps = cap.max(1);
        self
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs `program` over `g` without a combiner.
    pub fn run<P: VertexProgram>(&self, g: &Graph, program: &P) -> PregelResult<P::State> {
        self.run_inner(g, program, None::<&NoCombiner>)
    }

    /// Runs `program` over `g`, combining messages per destination with
    /// `combiner`.
    pub fn run_with_combiner<P, C>(
        &self,
        g: &Graph,
        program: &P,
        combiner: &C,
    ) -> PregelResult<P::State>
    where
        P: VertexProgram,
        C: Combiner<P::Message>,
    {
        self.run_inner(g, program, Some(combiner))
    }

    fn run_inner<P, C>(
        &self,
        g: &Graph,
        program: &P,
        combiner: Option<&C>,
    ) -> PregelResult<P::State>
    where
        P: VertexProgram,
        C: Combiner<P::Message>,
    {
        let n = g.node_count();
        let mut states: Vec<P::State> = g.nodes().map(|v| program.init(g, v)).collect();
        let mut halted: Vec<bool> = vec![false; n];
        let mut inboxes: Vec<Vec<P::Message>> = (0..n).map(|_| Vec::new()).collect();
        let mut superstep = 0u32;
        let mut total_messages = 0u64;

        loop {
            // Who computes this superstep? Active vertices: not halted, or
            // with pending messages (which reactivate).
            let chunk = n.div_ceil(self.workers).max(1);
            let mut worker_outboxes: Vec<Vec<(NodeId, P::Message)>> = Vec::new();
            let mut sent_this_step = 0u64;

            thread::scope(|scope| {
                let mut handles = Vec::new();
                let state_chunks = states.chunks_mut(chunk);
                let halted_chunks = halted.chunks_mut(chunk);
                let inbox_chunks = inboxes.chunks_mut(chunk);
                for (w, ((states, halted), inboxes)) in state_chunks
                    .zip(halted_chunks)
                    .zip(inbox_chunks)
                    .enumerate()
                {
                    let base = w * chunk;
                    handles.push(scope.spawn(move || {
                        let mut outbox: Vec<(NodeId, P::Message)> = Vec::new();
                        let mut sent = 0u64;
                        for (i, state) in states.iter_mut().enumerate() {
                            let v = NodeId::from_index(base + i);
                            let messages = std::mem::take(&mut inboxes[i]);
                            if halted[i] && messages.is_empty() {
                                continue;
                            }
                            halted[i] = false;
                            let mut ctx = ComputeContext {
                                vertex: v,
                                superstep,
                                neighbors: g.neighbors(v),
                                messages: &messages,
                                outbox: &mut outbox,
                                halted: &mut halted[i],
                                sent: &mut sent,
                            };
                            program.compute(state, &mut ctx);
                        }
                        (outbox, sent)
                    }));
                }
                for h in handles {
                    let (outbox, sent) = h.join().expect("worker panicked");
                    worker_outboxes.push(outbox);
                    sent_this_step += sent;
                }
            });

            // Route messages (applying the combiner per destination).
            let mut any_message = false;
            for outbox in worker_outboxes {
                for (to, msg) in outbox {
                    any_message = true;
                    let inbox = &mut inboxes[to.index()];
                    match (combiner, inbox.len()) {
                        (Some(c), 1..) => {
                            let prev = inbox.pop().expect("non-empty");
                            inbox.push(c.combine(prev, msg));
                        }
                        _ => inbox.push(msg),
                    }
                }
            }
            total_messages += sent_this_step;
            superstep += 1;

            let all_halted = halted.iter().all(|&h| h);
            if (!any_message && all_halted) || superstep >= self.max_supersteps {
                let converged = !any_message && all_halted;
                return PregelResult {
                    states,
                    supersteps: superstep,
                    messages: total_messages,
                    converged,
                };
            }
        }
    }
}

/// Private placeholder for "no combiner" (never instantiated).
struct NoCombiner;

impl<M> Combiner<M> for NoCombiner {
    fn combine(&self, _a: M, _b: M) -> M {
        unreachable!("NoCombiner is never invoked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dkcore_graph::generators::{complete, path};

    /// Program that floods a token once and counts supersteps in state.
    struct CountSteps;

    impl VertexProgram for CountSteps {
        type State = u32;
        type Message = ();

        fn init(&self, _g: &Graph, _v: NodeId) -> u32 {
            0
        }

        fn compute(&self, state: &mut u32, ctx: &mut ComputeContext<'_, ()>) {
            *state = ctx.superstep() + 1;
            if ctx.superstep() == 0 {
                ctx.send_to_neighbors(());
            }
            ctx.vote_to_halt();
        }
    }

    #[test]
    fn two_supersteps_for_one_flood() {
        let g = complete(4);
        let result = Pregel::new(2).run(&g, &CountSteps);
        assert!(result.converged);
        // Superstep 0: everyone sends; superstep 1: everyone receives.
        assert_eq!(result.supersteps, 2);
        assert_eq!(result.states, vec![2; 4]);
        assert_eq!(result.messages, 4 * 3);
    }

    #[test]
    fn halted_vertices_are_not_computed() {
        struct HaltImmediately;
        impl VertexProgram for HaltImmediately {
            type State = u32;
            type Message = ();
            fn init(&self, _g: &Graph, _v: NodeId) -> u32 {
                0
            }
            fn compute(&self, state: &mut u32, ctx: &mut ComputeContext<'_, ()>) {
                *state += 1;
                ctx.vote_to_halt();
            }
        }
        let g = path(6);
        let result = Pregel::new(3).run(&g, &HaltImmediately);
        assert_eq!(result.supersteps, 1);
        assert_eq!(
            result.states,
            vec![1; 6],
            "each vertex computed exactly once"
        );
        assert_eq!(result.messages, 0);
    }

    #[test]
    fn superstep_cap_reports_non_convergence() {
        struct Chatter;
        impl VertexProgram for Chatter {
            type State = ();
            type Message = ();
            fn init(&self, _g: &Graph, _v: NodeId) {}
            fn compute(&self, _state: &mut (), ctx: &mut ComputeContext<'_, ()>) {
                ctx.send_to_neighbors(());
                ctx.vote_to_halt();
            }
        }
        let g = path(4);
        let result = Pregel::new(1).with_max_supersteps(5).run(&g, &Chatter);
        assert_eq!(result.supersteps, 5);
        assert!(!result.converged);
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let g = path(40);
        let a = Pregel::new(1).run(&g, &CountSteps);
        let b = Pregel::new(7).run(&g, &CountSteps);
        assert_eq!(a.states, b.states);
        assert_eq!(a.supersteps, b.supersteps);
        assert_eq!(a.messages, b.messages);
    }

    #[test]
    fn combiner_reduces_inbox_to_single_message() {
        /// Each vertex records how many messages it received in superstep 1.
        struct CountIncoming;
        impl VertexProgram for CountIncoming {
            type State = usize;
            type Message = u32;
            fn init(&self, _g: &Graph, _v: NodeId) -> usize {
                0
            }
            fn compute(&self, state: &mut usize, ctx: &mut ComputeContext<'_, u32>) {
                if ctx.superstep() == 0 {
                    let v = ctx.vertex().0;
                    ctx.send_to_neighbors(v);
                } else {
                    *state = ctx.messages().len();
                }
                ctx.vote_to_halt();
            }
        }
        let g = complete(5);
        let plain = Pregel::new(2).run(&g, &CountIncoming);
        assert!(plain.states.iter().all(|&c| c == 4));
        let combined = Pregel::new(2).run_with_combiner(&g, &CountIncoming, &MinCombiner);
        assert!(
            combined.states.iter().all(|&c| c == 1),
            "combined to one message"
        );
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        let _ = Pregel::new(0);
    }

    #[test]
    fn empty_graph_halts_immediately() {
        let g = Graph::from_edges(0, []).unwrap();
        let result = Pregel::new(2).run(&g, &CountSteps);
        assert!(result.converged);
        assert!(result.states.is_empty());
    }
}
