//! A miniature Pregel — the "next logical step" of the paper's §6.
//!
//! The paper closes by proposing to implement the k-core algorithms on
//! bulk-synchronous vertex-centric frameworks: *"we are considering
//! distributed frameworks like Hadoop and Pregel \[9\], in which the
//! computation is divided in logical units … divided among a collection of
//! computational processes, termed workers"*. This crate builds that
//! substrate and carries the proposal out:
//!
//! * [`Pregel`] — a BSP engine in the mold of Malewicz et al. (SIGMOD
//!   2010): supersteps, per-vertex `compute()` with incoming messages,
//!   `vote_to_halt` semantics with message-driven reactivation, optional
//!   message [`Combiner`]s, and a pool of worker threads processing
//!   vertex partitions in parallel;
//! * [`KCoreProgram`] — the paper's Algorithm 1 expressed as a vertex
//!   program (one superstep = one round, estimates as messages);
//! * [`ConnectedComponentsProgram`] and [`HopDistanceProgram`] — classic
//!   vertex programs that double as independent engine tests and show the
//!   substrate is not k-core-specific.
//!
//! # Example
//!
//! ```
//! use dkcore_pregel::{KCoreProgram, Pregel};
//! use dkcore::seq::batagelj_zaversnik;
//! use dkcore_graph::generators::gnp;
//!
//! let g = gnp(200, 0.05, 7);
//! let result = Pregel::new(4).run(&g, &KCoreProgram::default());
//! let coreness: Vec<u32> = result.states.iter().map(|s| s.core).collect();
//! assert_eq!(coreness, batagelj_zaversnik(&g));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod programs;

pub use engine::{Combiner, ComputeContext, MinCombiner, Pregel, PregelResult, VertexProgram};
pub use programs::{
    ComponentState, ConnectedComponentsProgram, HopDistanceProgram, KCoreProgram, KCoreState,
};
