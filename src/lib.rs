//! Facade crate for the distributed k-core decomposition reproduction.
//!
//! Re-exports all workspace crates under one roof so examples and
//! integration tests have a single dependency.

#![forbid(unsafe_code)]

pub use dkcore;
pub use dkcore_data as data;
pub use dkcore_gossip as gossip;
pub use dkcore_graph as graph;
pub use dkcore_metrics as metrics;
pub use dkcore_pregel as pregel;
pub use dkcore_runtime as runtime;
pub use dkcore_serve as serve;
pub use dkcore_sim as sim;
